//! Open-loop serving: queries arrive over time (Poisson), latency includes
//! queueing — the SLA-(a) regime the paper's §7.6 discusses ("99% of all
//! queries completed within a given timeframe").
//!
//! Sweeps the arrival rate toward the schedule's capacity and reports the
//! 99th-percentile sojourn time at each load level, showing where the SLA
//! knee sits.
//!
//! Run with: `cargo run --release --example open_loop_serving`

use exegpt::Engine;
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_runner::{RunOptions, Runner};
use exegpt_units::Secs;
use exegpt_workload::Task;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4)?)
        .workload(Task::ConversationalQa1.workload()?)
        .build()?;

    // Schedule for a generation-latency bound (SLA-(b) style)...
    let schedule = engine.schedule(Secs::new(15.0))?;
    let capacity = schedule.estimate.throughput;
    println!("schedule {} — estimated capacity {capacity:.1} q/s\n", schedule.config.describe());
    println!("{:>8}  {:>10}  {:>12}  {:>14}", "load", "rate q/s", "tput q/s", "p99 sojourn(s)");

    // ...then study what SLA-(a) timeframe each load level supports.
    let runner = Runner::from_simulator(engine.simulator().clone());
    for load in [0.3, 0.5, 0.7, 0.85, 0.95] {
        let rate = capacity * load;
        let rep = runner.run(
            &schedule.config,
            &RunOptions { num_queries: 600, arrival_rate: Some(rate), ..Default::default() },
        )?;
        println!(
            "{:>7.0}%  {rate:>10.2}  {:>12.2}  {:>14.2}",
            load * 100.0,
            rep.throughput,
            rep.p99_sojourn()
        );
    }
    println!("\nthe p99 sojourn rises sharply as load approaches capacity:");
    println!("an SLA-(a) operator provisions at the knee, not at capacity.");
    Ok(())
}
