//! Serving-system shoot-out: ExeGPT versus FasterTransformer, ORCA and
//! vLLM on the same deployment and workload — the paper's §7.2/§7.3
//! comparison as a runnable program.
//!
//! Every system plans itself for the same latency bound (derived from FT's
//! batch sweep, the paper's protocol) and then serves the same sampled
//! query stream; measured throughput and latency are reported.
//!
//! Run with: `cargo run --release --example serving_comparison`

use exegpt::Engine;
use exegpt_baselines::{FasterTransformer, IterationLevel, Orca, Vllm};
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_runner::{RunOptions, Runner};
use exegpt_workload::{latency_bounds, Task};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = Task::ConversationalQa1;
    let model = ModelConfig::opt_13b();
    let cluster = ClusterSpec::a40_cluster().subcluster(4)?;
    println!("{} on 4xA40, task {task} (conversational Q/A)\n", model.name());

    let engine =
        Engine::builder().model(model).cluster(cluster).workload(task.workload()?).build()?;
    let sim = engine.simulator().clone();

    // The paper's bound protocol: percentiles of FT's batch-latency sweep.
    let ft = FasterTransformer::paper_default(sim.clone())?;
    let bounds = latency_bounds(&ft.latency_sweep()).ok_or("empty sweep")?;
    let bound = bounds[1]; // the bottom-30% bound
    println!("latency bound: {bound:.1} s (FT bottom-30%)\n");
    println!("{:<18} {:>10} {:>12} {:>10}", "system", "tput q/s", "p99 lat(s)", "max lat(s)");

    let opts = RunOptions { num_queries: 800, ..Default::default() };

    // ExeGPT: constraint-aware schedule, then replay.
    let schedule = engine.schedule(bound)?;
    let rep = Runner::from_simulator(sim.clone()).run(&schedule.config, &opts)?;
    println!(
        "{:<18} {:>10.2} {:>12.2} {:>10.2}   <- {}",
        "ExeGPT",
        rep.throughput,
        rep.p99_latency(),
        rep.max_latency(),
        schedule.config.describe()
    );

    // FasterTransformer: best static batch under the bound.
    if let Some((batch, _)) = ft.plan(bound) {
        let rep = ft.run(batch, &opts)?;
        println!(
            "{:<18} {:>10.2} {:>12.2} {:>10.2}   <- batch {batch}",
            "FasterTransformer",
            rep.throughput,
            rep.p99_latency(),
            rep.max_latency()
        );
    }

    // ORCA and vLLM: iteration-level scheduling.
    for (name, sys) in [
        ("ORCA", Orca::new(sim.clone(), IterationLevel::orca())?),
        ("vLLM", Orca::new(sim.clone(), IterationLevel::vllm())?),
    ] {
        match sys.plan(bound) {
            Some((slots, _)) => {
                let rep = sys.run(slots, &opts)?;
                println!(
                    "{:<18} {:>10.2} {:>12.2} {:>10.2}   <- {slots} slots",
                    name,
                    rep.throughput,
                    rep.p99_latency(),
                    rep.max_latency()
                );
            }
            None => println!("{name:<18} {:>10} (cannot satisfy the bound)", "NS"),
        }
    }
    let _ = Vllm::new(sim)?; // the dedicated wrapper offers the same API
    Ok(())
}
