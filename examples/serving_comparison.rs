//! Serving-system shoot-out: ExeGPT versus FasterTransformer, ORCA and
//! vLLM on the same deployment and workload — the paper's §7.2/§7.3
//! comparison as a runnable program.
//!
//! The deployment, workload, and query count come from a declarative
//! scenario file (default `scenarios/replay-comparison.toml`; pass another
//! replay scenario as the first argument). When the scenario pins a finite
//! latency bound, every system plans for it; with an `inf` bound the
//! example falls back to the paper's protocol and derives the bound from
//! FasterTransformer's batch-latency sweep.
//!
//! Run with: `cargo run --release --example serving_comparison`

use exegpt_baselines::{FasterTransformer, IterationLevel, Orca, Vllm};
use exegpt_runner::Runner;
use exegpt_scenario::{lower, Lowered, Scenario};
use exegpt_units::Secs;
use exegpt_workload::latency_bounds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path =
        std::env::args().nth(1).unwrap_or_else(|| "scenarios/replay-comparison.toml".to_string());
    let scenario = Scenario::load(std::path::Path::new(&path))?;
    let Lowered::Replay(replay) = lower(&scenario)? else {
        return Err(format!("{path}: serving_comparison needs a [replay] scenario").into());
    };
    println!("scenario `{}` from {path}\n", scenario.name);

    let engine = replay.engine;
    let sim = engine.simulator().clone();
    let opts = replay.options;

    let ft = FasterTransformer::paper_default(sim.clone())?;
    let bound = if scenario.scheduler.latency_bound_secs.is_finite() {
        let b = Secs::new(scenario.scheduler.latency_bound_secs);
        println!("latency bound: {b:.1} (from the scenario)\n");
        b
    } else {
        // The paper's protocol: percentiles of FT's batch-latency sweep.
        let bounds = latency_bounds(&ft.latency_sweep()).ok_or("empty sweep")?;
        println!("latency bound: {:.1} (FT bottom-30%)\n", bounds[1]);
        bounds[1]
    };
    println!("{:<18} {:>10} {:>12} {:>10}", "system", "tput q/s", "p99 lat(s)", "max lat(s)");

    // ExeGPT: the scenario's own plan, replayed.
    let schedule = engine.schedule(bound)?;
    let rep = Runner::from_simulator(sim.clone()).run(&schedule.config, &opts)?;
    println!(
        "{:<18} {:>10.2} {:>12.2} {:>10.2}   <- {}",
        "ExeGPT",
        rep.throughput,
        rep.p99_latency(),
        rep.max_latency(),
        schedule.config.describe()
    );

    // FasterTransformer: best static batch under the bound.
    if let Some((batch, _)) = ft.plan(bound) {
        let rep = ft.run(batch, &opts)?;
        println!(
            "{:<18} {:>10.2} {:>12.2} {:>10.2}   <- batch {batch}",
            "FasterTransformer",
            rep.throughput,
            rep.p99_latency(),
            rep.max_latency()
        );
    }

    // ORCA and vLLM: iteration-level scheduling.
    for (name, sys) in [
        ("ORCA", Orca::new(sim.clone(), IterationLevel::orca())?),
        ("vLLM", Orca::new(sim.clone(), IterationLevel::vllm())?),
    ] {
        match sys.plan(bound) {
            Some((slots, _)) => {
                let rep = sys.run(slots, &opts)?;
                println!(
                    "{:<18} {:>10.2} {:>12.2} {:>10.2}   <- {slots} slots",
                    name,
                    rep.throughput,
                    rep.p99_latency(),
                    rep.max_latency()
                );
            }
            None => println!("{name:<18} {:>10} (cannot satisfy the bound)", "NS"),
        }
    }
    let _ = Vllm::new(sim)?; // the dedicated wrapper offers the same API
    Ok(())
}
