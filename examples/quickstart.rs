//! Quickstart: schedule and execute constraint-aware LLM inference.
//!
//! Builds an ExeGPT engine for OPT-13B on four (simulated) A40 GPUs serving
//! a translation workload, finds the highest-throughput schedule that
//! generates a 99th-percentile-length sequence within 20 seconds, and then
//! replays the schedule on sampled queries to verify the bound held.
//!
//! Run with: `cargo run --release --example quickstart`

use exegpt::Engine;
use exegpt_cluster::ClusterSpec;
use exegpt_dist::LengthDist;
use exegpt_model::ModelConfig;
use exegpt_runner::{RunOptions, Runner};
use exegpt_sim::Workload;
use exegpt_units::Secs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the deployment: model, cluster, and the sequence-length
    //    workload your service observes.
    let engine = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4)?)
        .workload(Workload::new(
            LengthDist::truncated_normal(128.0, 81.0, 256)?, // input lengths
            LengthDist::truncated_normal(128.0, 68.0, 320)?, // output lengths
        ))
        .build()?; // profiles the (model, cluster) pair once

    // 2. Ask for the best schedule under a latency bound.
    let bound = Secs::new(20.0);
    let schedule = engine.schedule(bound)?;
    println!("latency bound    : {:.1} s (99th-percentile-length sequence)", bound.as_secs());
    println!("selected schedule: {}", schedule.config.describe());
    println!(
        "estimated        : {:.2} queries/s at {:.2} s latency ({} configurations examined)",
        schedule.estimate.throughput,
        schedule.estimate.latency.as_secs(),
        schedule.evals
    );

    // 3. Execute the schedule on 1000 sampled queries and check the bound.
    let runner = Runner::from_simulator(engine.simulator().clone());
    let report =
        runner.run(&schedule.config, &RunOptions { num_queries: 1000, ..Default::default() })?;
    println!(
        "measured         : {:.2} queries/s, p99 latency {:.2} s, max {:.2} s",
        report.throughput,
        report.p99_latency(),
        report.max_latency()
    );
    // The bound applies to the 99th-percentile-length sequence (paper
    // §7.1); the replay uses sampled lengths and dynamic batch adjustment,
    // so the measured p99 tracks the estimate within a modest tolerance
    // (queries longer than the 99th percentile may legitimately exceed it).
    assert!(
        Secs::new(report.p99_latency()) <= bound * 1.25,
        "measured p99 should track the scheduled bound"
    );
    println!("measured p99 latency tracked the scheduled bound");
    Ok(())
}
