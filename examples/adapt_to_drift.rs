//! Adapting to workload drift (paper §7.6–§7.7): a service's output
//! lengths grow over time; keep serving with the stale schedule, or pay a
//! re-deployment to re-optimize?
//!
//! The deployment, latency bound, and drift all come from a declarative
//! scenario file (default `scenarios/replay-drift.toml`; pass another
//! replay scenario as the first argument). The example quantifies both
//! sides: throughput/latency of the non-adjusted schedule on the drifted
//! traffic, the re-optimized schedule's numbers, and the re-deployment
//! cost of switching (reloading weights from host DRAM, Table 4).
//!
//! Run with: `cargo run --release --example adapt_to_drift`

use exegpt_cluster::LoadSource;
use exegpt_runner::{RunOptions, Runner};
use exegpt_scenario::{lower, Lowered, Scenario};
use exegpt_units::Secs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args().nth(1).unwrap_or_else(|| "scenarios/replay-drift.toml".to_string());
    let scenario = Scenario::load(std::path::Path::new(&path))?;
    let Lowered::Replay(replay) = lower(&scenario)? else {
        return Err(format!("{path}: adapt_to_drift needs a [replay] scenario").into());
    };
    println!("scenario `{}` from {path}", scenario.name);

    let engine = replay.engine;
    let schedule = replay.schedule;
    let base = engine.simulator().workload().clone();
    let bound = Secs::new(scenario.scheduler.latency_bound_secs);
    println!(
        "scheduled for mean output {:.0} tokens: {}",
        base.output().mean(),
        schedule.config.describe()
    );

    // The service drifts: the scenario's replay scales reshape the traffic
    // while the plan stays sized for the old distribution.
    let drifted = replay
        .options
        .request_workload
        .clone()
        .ok_or("the scenario declares no drift (replay.scale_mean/scale_std)")?;
    println!("\ntraffic drifted to mean output {:.0} tokens", drifted.output().mean());

    // Option A: keep the stale schedule (exactly what the scenario runs).
    let runner = Runner::from_simulator(engine.simulator().clone());
    let stale = runner.run(&schedule.config, &replay.options)?;
    println!(
        "  stale schedule : {:.2} q/s, p99 latency {:.2} s{}",
        stale.throughput,
        stale.p99_latency(),
        if Secs::new(stale.p99_latency()) > bound { "  (BOUND VIOLATED)" } else { "" }
    );

    // Option B: re-optimize for the drifted distribution and re-deploy.
    let adapted_engine = engine.with_workload(drifted);
    match adapted_engine.schedule(bound) {
        Ok(adapted) => {
            let rep = Runner::from_simulator(adapted_engine.simulator().clone()).run(
                &adapted.config,
                &RunOptions {
                    num_queries: replay.options.num_queries,
                    seed: replay.options.seed,
                    ..Default::default()
                },
            )?;
            println!(
                "  re-optimized   : {:.2} q/s, p99 latency {:.2} s  <- {}",
                rep.throughput,
                rep.p99_latency(),
                adapted.config.describe()
            );
        }
        Err(_) => {
            println!("  re-optimized   : the bound is no longer satisfiable; renegotiate the SLA")
        }
    }
    println!(
        "  re-deploy cost : {:.1} s reloading weights from host DRAM ({:.1} s from SSD)",
        engine.deploy_time(LoadSource::Dram).as_secs(),
        engine.deploy_time(LoadSource::Ssd).as_secs()
    );
    Ok(())
}
