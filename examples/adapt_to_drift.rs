//! Adapting to workload drift (paper §7.6–§7.7): a service's output
//! lengths grow 30% over time; keep serving with the stale schedule, or
//! pay a re-deployment to re-optimize?
//!
//! The example quantifies both sides: throughput/latency of the
//! non-adjusted schedule on the drifted traffic, the re-optimized
//! schedule's numbers, and the re-deployment cost of switching (reloading
//! weights from host DRAM, Table 4).
//!
//! Run with: `cargo run --release --example adapt_to_drift`

use exegpt::Engine;
use exegpt_cluster::{ClusterSpec, LoadSource};
use exegpt_model::ModelConfig;
use exegpt_runner::{RunOptions, Runner};
use exegpt_sim::Workload;
use exegpt_units::Secs;
use exegpt_workload::Task;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = Task::Translation.workload()?;
    let engine = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4)?)
        .workload(base.clone())
        .build()?;

    // Schedule for the observed distribution with a 25 s bound.
    let bound = Secs::new(25.0);
    let schedule = engine.schedule(bound)?;
    println!(
        "scheduled for mean output {:.0} tokens: {}",
        base.output().mean(),
        schedule.config.describe()
    );

    // The service drifts: outputs grow 30%.
    let drifted = Workload::new(base.input().clone(), base.output().with_scaled_mean(1.3)?);
    println!("\ntraffic drifted to mean output {:.0} tokens", drifted.output().mean());

    // Option A: keep the stale schedule (plans stay sized for the old
    // distribution; only the traffic changes).
    let runner = Runner::from_simulator(engine.simulator().clone());
    let stale = runner.run(
        &schedule.config,
        &RunOptions {
            num_queries: 800,
            request_workload: Some(drifted.clone()),
            ..Default::default()
        },
    )?;
    println!(
        "  stale schedule : {:.2} q/s, p99 latency {:.2} s{}",
        stale.throughput,
        stale.p99_latency(),
        if Secs::new(stale.p99_latency()) > bound { "  (BOUND VIOLATED)" } else { "" }
    );

    // Option B: re-optimize for the drifted distribution and re-deploy.
    let adapted_engine = engine.with_workload(drifted);
    match adapted_engine.schedule(bound) {
        Ok(adapted) => {
            let rep = Runner::from_simulator(adapted_engine.simulator().clone())
                .run(&adapted.config, &RunOptions { num_queries: 800, ..Default::default() })?;
            println!(
                "  re-optimized   : {:.2} q/s, p99 latency {:.2} s  <- {}",
                rep.throughput,
                rep.p99_latency(),
                adapted.config.describe()
            );
        }
        Err(_) => {
            println!("  re-optimized   : the bound is no longer satisfiable; renegotiate the SLA")
        }
    }
    println!(
        "  re-deploy cost : {:.1} s reloading weights from host DRAM ({:.1} s from SSD)",
        engine.deploy_time(LoadSource::Dram).as_secs(),
        engine.deploy_time(LoadSource::Ssd).as_secs()
    );
    Ok(())
}
