//! SLA explorer: map the latency/throughput frontier of a deployment.
//!
//! For a chosen model, GPU count and NLP task, sweeps latency bounds from
//! tight to unconstrained and prints the schedule the optimizer selects at
//! each point — the tool an operator would use to pick an SLA (cf. paper
//! Table 6).
//!
//! Run with: `cargo run --release --example sla_explorer -- [task] [gpus]`
//! where `task` is one of `S T G C1 C2` (default `S`) and `gpus` divides
//! the A40 cluster (default 4).

use exegpt::Engine;
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_units::Secs;
use exegpt_workload::Task;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let task = match args.next().as_deref() {
        None | Some("S") => Task::Summarization,
        Some("T") => Task::Translation,
        Some("G") => Task::CodeGeneration,
        Some("C1") => Task::ConversationalQa1,
        Some("C2") => Task::ConversationalQa2,
        Some(other) => return Err(format!("unknown task {other}; use S T G C1 C2").into()),
    };
    let gpus: usize = args.next().map(|g| g.parse()).transpose()?.unwrap_or(4);

    let engine = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(gpus)?)
        .workload(task.workload()?)
        .build()?;

    // Find the achievable range: the unconstrained optimum anchors the top.
    let best = engine.schedule(Secs::INFINITY)?;
    println!(
        "OPT-13B on {gpus}xA40, task {task}: unconstrained optimum {:.2} q/s at {:.2} s",
        best.estimate.throughput,
        best.estimate.latency.as_secs()
    );
    println!();
    println!("{:>10}  {:>9}  {:>10}  schedule", "bound (s)", "tput q/s", "latency(s)");

    // Sweep bounds geometrically from very tight to the unconstrained point.
    let mut bound = best.estimate.latency / 16.0;
    while bound < best.estimate.latency * 2.0 {
        match engine.schedule(bound) {
            Ok(s) => println!(
                "{:>10.2}  {:>9.2}  {:>10.2}  {}",
                bound.as_secs(),
                s.estimate.throughput,
                s.estimate.latency.as_secs(),
                s.config.describe()
            ),
            Err(_) => {
                println!("{:>10.2}  {:>9}  {:>10}  (not satisfiable)", bound.as_secs(), "NS", "-")
            }
        }
        bound = bound * 1.6;
    }
    println!(
        "{:>10}  {:>9.2}  {:>10.2}  {}",
        "inf",
        best.estimate.throughput,
        best.estimate.latency.as_secs(),
        best.config.describe()
    );
    Ok(())
}
