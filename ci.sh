#!/usr/bin/env bash
# Repository CI gate: formatting, lints, release build, and the full test
# suite. Run from the repository root. All cargo invocations are --offline:
# every dependency is vendored in third_party/.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release

echo "==> xlint (workspace determinism lint)"
cargo run --offline -q -p exegpt-xlint -- --workspace

echo "==> cargo test -q"
cargo test --offline --workspace -q

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

echo "==> serve smoke (SLO-accounting invariants over ~2k events)"
cargo run --offline --release -p exegpt-serve --bin serve-smoke

echo "CI OK"
