#!/usr/bin/env bash
# Repository CI gate: formatting, lints, release build, and the full test
# suite. Run from the repository root. All cargo invocations are --offline:
# every dependency is vendored in third_party/.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release

echo "==> xlint (workspace determinism + unit-safety lint)"
# Archive the machine-readable report as a build artifact; the human run
# below is the gate proper (non-zero on any finding).
mkdir -p target/ci-artifacts
cargo run --offline -q -p exegpt-xlint -- --workspace --json \
  > target/ci-artifacts/xlint.json || true
cargo run --offline -q -p exegpt-xlint -- --workspace --sarif \
  > target/ci-artifacts/xlint.sarif || true
# Pragma hygiene is not a soft failure: any X0 (malformed/stale/unknown
# pragma) in the archived report fails the gate even if a future rule
# change made the text run pass.
if grep -q '"rule": "X0"' target/ci-artifacts/xlint.json; then
  echo "xlint: X0 pragma-hygiene findings present (see target/ci-artifacts/xlint.json)" >&2
  exit 1
fi
# The gate proper: all rules (incl. the L1/P2/D3 syntax-aware families
# and the D4/U3/P3 dataflow rules) plus the suppression-budget ratchet —
# new pragmas beyond the committed per-crate counts in xlint-baseline.toml
# fail as X1.
cargo run --offline -q -p exegpt-xlint -- --workspace --baseline xlint-baseline.toml
# Fix hygiene: `--fix` exits non-zero while any mechanical fix (stale
# pragma deletion, `let _ =` -> `?` rewrite) is pending, so a tree that
# `--fix --apply` would change fails the gate with the diffs on stdout.
cargo run --offline -q -p exegpt-xlint -- --workspace --fix

echo "==> cargo test -q"
cargo test --offline --workspace -q

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

echo "==> xlint cache smoke (cold vs warm: coverage, byte-identity, >=5x)"
# Wipes target/xlint-cache/, lints the workspace cold, then warm, and
# exits non-zero unless the warm pass hits 100% of files, replays the
# cold findings byte-identically, and is at least 5x faster. The
# hit/miss/timing numbers are archived for trending.
XLINT_SMOKE_JSON=target/ci-artifacts/xlint-cache-stats.json \
  cargo run --offline --release -p exegpt-bench --bin xlint-smoke

echo "==> serve smoke (SLO-accounting invariants over ~2k events)"
cargo run --offline --release -p exegpt-serve --bin serve-smoke

echo "==> replan smoke (incremental replans: byte-identity, no fallback, >=10x)"
# Replays the golden drift/fault/recovery replans and exits non-zero if any
# falls back to the full search, picks a different plan than the full
# search, or the warm replan is less than 10x faster than the warm full
# search. Measurements are archived for trending.
REPLAN_SMOKE_JSON=target/ci-artifacts/replan-smoke.json \
  cargo run --offline --release -p exegpt-bench --bin replan-smoke

echo "==> faults smoke (seeded failure scenario, deterministic digest)"
# The bin replays a seeded GPU failure + straggler + recovery scenario
# twice and exits non-zero unless the runs are byte-identical, nothing is
# lost, and recovery restores the original plan. The event log is archived
# for diffing a failed gate.
FAULTS_SMOKE_LOG=target/ci-artifacts/faults-smoke.jsonl \
  cargo run --offline --release -p exegpt-serve --bin faults-smoke

echo "==> fleet smoke (100k requests, 3+1 heterogeneous replicas, replica loss)"
# Plays a 100k-request multi-tenant trace through a heterogeneous fleet
# (two A40 replicas, one A100, an A40 standby) with a mid-run replica loss
# and a scripted scale-up, once per routing arm. Exits non-zero unless
# nothing is lost, the SLO-aware arm strictly beats round-robin on
# interactive violations, and an identical replay is byte-identical
# (FNV-1a digest over the fleet log plus every replica session log). The
# per-arm summary is archived for trending.
FLEET_SMOKE_JSON=target/ci-artifacts/fleet-smoke.json \
  cargo run --offline --release -p exegpt-fleet --bin fleet-smoke

echo "==> scenario smoke (every shipped config vs its committed golden digest)"
# Runs every scenarios/*.toml through the declarative scenario layer and
# exits non-zero if any run's FNV-1a event-log digest drifts from
# scenarios/GOLDENS.toml, a config has no golden, or a golden has no
# config. Intentional behavior changes regenerate the goldens with
# `cargo run --release --bin scenario-smoke -- scenarios --write-goldens`.
cargo run --offline --release -p exegpt-scenario --bin scenario-smoke -- scenarios

echo "CI OK"
