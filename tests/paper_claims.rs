//! Qualitative claims of the paper's evaluation, checked end to end on the
//! simulated substrate (the quantitative shapes live in `EXPERIMENTS.md`).

use exegpt::{Engine, Policy, SchedulerOptions};
use exegpt_baselines::{FasterTransformer, IterationLevel, Orca, Vllm};
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_runner::RunOptions;
use exegpt_sim::Simulator;
use exegpt_units::Secs;
use exegpt_workload::{Dataset, Task};

fn sim(task: Task) -> Simulator {
    let model = ModelConfig::opt_13b();
    let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
    let profile = exegpt_profiler::Profiler::new(model.clone(), cluster.clone())
        .run(&exegpt_profiler::ProfileOptions::default())
        .expect("profiles");
    Simulator::new(model, cluster, profile.into(), task.workload().expect("valid"))
}

/// §7.2 / Figure 7: FT outperforms DSI, ORCA and vLLM on OPT-13B / 4xA40
/// at the unconstrained bound.
#[test]
fn ft_tops_the_existing_systems() {
    let s = sim(Task::Summarization);
    let ft = FasterTransformer::paper_default(s.clone()).expect("grid");
    let ft_best = ft.plan(Secs::INFINITY).expect("feasible").1.throughput;
    let orca = Orca::new(s.clone(), IterationLevel::orca()).expect("grid");
    let vllm = Vllm::new(s).expect("grid");
    assert!(ft_best > orca.plan(Secs::INFINITY).expect("feasible").1.throughput);
    assert!(ft_best > vllm.plan(Secs::INFINITY).expect("feasible").1.throughput);
}

/// §2: iteration-level scheduling struggles to meet tight latency bounds
/// that FT (and ExeGPT) can satisfy.
#[test]
fn iteration_level_misses_tight_bounds() {
    let s = sim(Task::Translation);
    let ft = FasterTransformer::paper_default(s.clone()).expect("grid");
    let tight = exegpt_workload::latency_bounds(&ft.latency_sweep()).expect("non-empty")[0];
    assert!(ft.plan(tight).is_some(), "FT satisfies its own tight bound");
    let vllm = Vllm::new(s).expect("grid");
    assert!(vllm.plan(tight).is_none(), "vLLM cannot satisfy the tight bound");
}

/// §4.1: WAA is competitive for short-output tasks, while RRA leads on the
/// long-output translation task (unconstrained bound, estimates).
#[test]
fn policy_strengths_follow_output_length() {
    let tput = |task: Task, policies: Vec<Policy>| {
        let engine = Engine::builder()
            .model(ModelConfig::opt_13b())
            .cluster(ClusterSpec::a40_cluster().subcluster(4).expect("fits"))
            .workload(task.workload().expect("valid"))
            .build()
            .expect("builds");
        engine
            .schedule_with(&SchedulerOptions {
                policies,
                ..SchedulerOptions::bounded(Secs::INFINITY)
            })
            .map(|s| s.estimate.throughput)
            .unwrap_or(0.0)
    };
    let waa = vec![Policy::WaaCompute, Policy::WaaMemory];
    // Short outputs (task S): WAA within striking distance of RRA.
    let s_rra = tput(Task::Summarization, vec![Policy::Rra]);
    let s_waa = tput(Task::Summarization, waa.clone());
    assert!(s_waa > 0.55 * s_rra, "task S: WAA {s_waa:.1} vs RRA {s_rra:.1}");
    // Long outputs (task T): RRA ahead of WAA.
    let t_rra = tput(Task::Translation, vec![Policy::Rra]);
    let t_waa = tput(Task::Translation, waa);
    assert!(t_rra > t_waa, "task T: RRA {t_rra:.1} vs WAA {t_waa:.1}");
}

/// §7.5: the long-tailed real-world surrogate (Alpaca) widens ExeGPT's
/// margin over FT relative to the matching synthetic task.
#[test]
fn real_world_tails_widen_the_gap() {
    let (est_split, _) = Dataset::alpaca(3000, 5).split(0.1);
    let workload = est_split.estimate_workload().expect("non-empty");
    let engine = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4).expect("fits"))
        .workload(workload)
        .build()
        .expect("builds");
    let ft = FasterTransformer::paper_default(engine.simulator().clone()).expect("grid");
    let ft_best = ft.plan(Secs::INFINITY).expect("feasible").1.throughput;
    let ex = engine.schedule(Secs::INFINITY).expect("feasible").estimate.throughput;
    assert!(ex > 2.0 * ft_best, "long-tail dataset: ExeGPT {ex:.1} should be >2x FT {ft_best:.1}");
}

/// §7.1's bound protocol produces bounds every system can be planned
/// against without panicking, across all five tasks.
#[test]
fn bound_protocol_is_total() {
    for task in Task::all() {
        let s = sim(task);
        let ft = FasterTransformer::paper_default(s.clone()).expect("grid");
        let bounds = exegpt_workload::latency_bounds(&ft.latency_sweep()).expect("non-empty");
        for bound in bounds {
            let _ = ft.plan(bound);
            let _ = Vllm::new(s.clone()).expect("grid").plan(bound);
        }
    }
}

/// Baseline replays and ExeGPT replays count work identically: enforced
/// output lengths mean token totals depend only on the sampled stream.
#[test]
fn all_systems_generate_the_same_tokens_for_the_same_stream() {
    let s = sim(Task::Summarization);
    let opts = RunOptions { num_queries: 100, seed: 77, ..Default::default() };
    let expected: u64 = exegpt_workload::RequestStream::new(s.workload(), 77)
        .take(100)
        .map(|r| r.output_len as u64)
        .sum();
    let ft = FasterTransformer::paper_default(s.clone()).expect("grid");
    assert_eq!(ft.run(16, &opts).expect("runs").tokens_generated, expected);
    let orca = Orca::new(s, IterationLevel::orca()).expect("grid");
    assert_eq!(orca.run(32, &opts).expect("runs").tokens_generated, expected);
}
