//! Cross-crate integration: the full profile → schedule → execute pipeline,
//! exercised exactly as a downstream user would drive it.

use exegpt::{Engine, Policy, SchedulerOptions};
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_runner::{RunOptions, Runner};
use exegpt_units::Secs;
use exegpt_workload::Task;

fn engine(task: Task) -> Engine {
    Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4).expect("fits"))
        .workload(task.workload().expect("valid"))
        .build()
        .expect("builds")
}

/// The whole pipeline holds together: a schedule found under a bound
/// executes, meets the bound (within measurement tolerance), and the
/// measured throughput tracks the simulator's estimate.
#[test]
fn schedule_then_execute_agrees_with_estimates() {
    for task in [Task::Summarization, Task::Translation] {
        let engine = engine(task);
        let best = engine.schedule(Secs::INFINITY).expect("feasible");
        let bound = best.estimate.latency * 0.6;
        let schedule = engine.schedule(bound).expect("feasible");
        assert!(schedule.estimate.latency <= bound);

        let runner = Runner::from_simulator(engine.simulator().clone());
        let nq = 400usize.max(4 * schedule.estimate.breakdown.decode_batch);
        let report = runner
            .run(&schedule.config, &RunOptions { num_queries: nq, ..Default::default() })
            .expect("runs");
        assert_eq!(report.completed, nq);

        let ratio = report.throughput / schedule.estimate.throughput;
        assert!(
            (0.6..1.6).contains(&ratio),
            "task {task}: measured {:.2} vs estimated {:.2}",
            report.throughput,
            schedule.estimate.throughput
        );
        assert!(
            Secs::new(report.p99_latency()) <= bound * 1.3,
            "task {task}: measured p99 {:.2} vs bound {:.2}",
            report.p99_latency(),
            bound.as_secs()
        );
    }
}

/// The headline claim at this scale: ExeGPT's constraint-aware schedule
/// beats the FasterTransformer baseline at every bound of the paper's
/// protocol.
#[test]
fn exegpt_beats_fastertransformer_at_every_bound() {
    use exegpt_baselines::FasterTransformer;

    for task in [Task::Summarization, Task::ConversationalQa1] {
        let engine = engine(task);
        let ft = FasterTransformer::paper_default(engine.simulator().clone()).expect("grid");
        let bounds = exegpt_workload::latency_bounds(&ft.latency_sweep()).expect("non-empty");
        for bound in bounds {
            let Some((batch, _)) = ft.plan(bound) else { continue };
            let ft_rep = ft
                .run(batch, &RunOptions { num_queries: 4 * batch, ..Default::default() })
                .expect("ft runs");
            let schedule = engine.schedule(bound).expect("exegpt feasible");
            let runner = Runner::from_simulator(engine.simulator().clone());
            let nq = 400usize.max(4 * schedule.estimate.breakdown.decode_batch);
            let rep = runner
                .run(&schedule.config, &RunOptions { num_queries: nq, ..Default::default() })
                .expect("exegpt runs");
            assert!(
                rep.throughput > ft_rep.throughput,
                "task {task} bound {:.1}: ExeGPT {:.2} vs FT {:.2}",
                bound.as_secs(),
                rep.throughput,
                ft_rep.throughput
            );
        }
    }
}

/// A policy-restricted engine produces configurations of that family, and
/// the runner accepts every family the scheduler can emit.
#[test]
fn every_emitted_schedule_family_is_executable() {
    let engine = engine(Task::Summarization);
    let runner = Runner::from_simulator(engine.simulator().clone());
    for policy in Policy::all() {
        let opts = SchedulerOptions {
            policies: vec![policy],
            ..SchedulerOptions::bounded(Secs::INFINITY)
        };
        let schedule = engine.schedule_with(&opts).expect("feasible");
        let rep = runner
            .run(&schedule.config, &RunOptions { num_queries: 150, ..Default::default() })
            .expect("runs");
        assert_eq!(rep.completed, 150, "{policy:?}");
    }
}

/// Profiles are reusable across engines (the paper's profile-once flow):
/// two engines sharing a profile agree exactly.
#[test]
fn shared_profiles_give_identical_schedules() {
    let model = ModelConfig::opt_13b();
    let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
    let workload = Task::Translation.workload().expect("valid");
    let profile = std::sync::Arc::new(
        exegpt_profiler::Profiler::new(model.clone(), cluster.clone())
            .run(&exegpt_profiler::ProfileOptions::default())
            .expect("profiles"),
    );
    let mk = || {
        Engine::builder()
            .model(model.clone())
            .cluster(cluster.clone())
            .workload(workload.clone())
            .profile(profile.clone())
            .build()
            .expect("builds")
    };
    let a = mk().schedule(Secs::new(30.0)).expect("feasible");
    let b = mk().schedule(Secs::new(30.0)).expect("feasible");
    assert_eq!(a.config, b.config);
    assert_eq!(a.estimate, b.estimate);
}
