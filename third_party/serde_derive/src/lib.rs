//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote, which
//! are unavailable offline). Supports the shapes this workspace uses:
//! non-generic named-field structs, unit structs, and enums with unit,
//! tuple, or struct variants — serialized with serde_json's default
//! external tagging.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: Kind,
}

/// Derives `serde::Serialize` (the shim's `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the shim's `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// --- parsing -------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let keyword = expect_ident(&mut toks);
    let name = expect_ident(&mut toks);
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item { name, kind: Kind::Struct(Fields::Named(parse_named_fields(g.stream()))) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item { name, kind: Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream()))) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Item { name, kind: Kind::Struct(Fields::Unit) }
            }
            other => panic!("serde shim derive: unexpected token after struct name: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item { name, kind: Kind::Enum(parse_variants(g.stream())) }
            }
            other => panic!("serde shim derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    }
}

fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    toks.next(); // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> String {
    match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Consumes tokens of one type expression up to a top-level `,`, tracking
/// angle-bracket depth so commas inside `Vec<(A, B)>`-style generics do
/// not split fields.
fn skip_type(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    let mut prev = ' ';
    while let Some(t) = toks.peek() {
        match t {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    toks.next(); // consume the separator
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                }
                if c == '>' && prev != '-' && angle_depth > 0 {
                    angle_depth -= 1;
                }
                prev = c;
            }
            _ => prev = ' ',
        }
        toks.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        let field = expect_ident(&mut toks);
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde shim derive: expected `:` after field `{field}`, found {other:?}")
            }
        }
        skip_type(&mut toks);
        fields.push(field);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_type(&mut toks);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut toks);
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                toks.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut prev = ' ';
        let mut angle_depth = 0i32;
        while let Some(t) = toks.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        toks.next();
                        break;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    }
                    if c == '>' && prev != '-' && angle_depth > 0 {
                        angle_depth -= 1;
                    }
                    prev = c;
                }
                _ => prev = ' ',
            }
            toks.next();
        }
        variants.push((name, fields));
    }
    variants
}

// --- code generation -----------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("::serde::Value::Object(vec![{pushes}])")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: String =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i}),")).collect();
            if *n == 1 {
                // Newtype structs serialize transparently, as in serde.
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                format!("::serde::Value::Array(vec![{items}])")
            }
        }
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Array(vec![{items}]))]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let pushes: String = fs
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (\"{v}\".to_string(), ::serde::Value::Object(vec![{pushes}]))]),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").ok_or_else(|| \
                         ::serde::DeError::new(\"missing field `{f}` in {name}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Object(_) => Ok({name} {{ {inits} }}),\n\
                     other => Err(::serde::DeError::expected(\"object\", other)),\n\
                 }}"
            )
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => \
                         Ok({name}({inits})),\n\
                     other => Err(::serde::DeError::expected(\"array of {n}\", other)),\n\
                 }}"
            )
        }
        Kind::Struct(Fields::Unit) => format!("{{ let _ = v; Ok({name}) }}"),
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => String::new(),
                    Fields::Tuple(1) => format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    ),
                    Fields::Tuple(n) => {
                        let inits: String = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                            .collect();
                        format!(
                            "\"{v}\" => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} => \
                                     Ok({name}::{v}({inits})),\n\
                                 other => Err(::serde::DeError::expected(\"array of {n}\", other)),\n\
                             }},"
                        )
                    }
                    Fields::Named(fs) => {
                        let inits: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(inner.get(\"{f}\")\
                                     .ok_or_else(|| ::serde::DeError::new(\
                                     \"missing field `{f}` in {name}::{v}\"))?)?,"
                                )
                            })
                            .collect();
                        format!("\"{v}\" => Ok({name}::{v} {{ {inits} }}),")
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::DeError::new(format!(\
                             \"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => Err(::serde::DeError::new(format!(\
                                 \"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::expected(\"enum value\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
