//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! concrete JSON-style [`Value`] tree: [`Serialize`] renders into it and
//! [`Deserialize`] reads back out of it. The `#[derive(Serialize,
//! Deserialize)]` macros (re-exported from the vendored `serde_derive`)
//! generate impls matching serde_json's default external tagging, so the
//! JSON this produces matches what real serde would emit for the types in
//! this repository (named-field structs; unit/tuple/struct enum variants).

#![deny(missing_docs)]
// Vendored shim: impls for std types include the hash collections.
#![allow(clippy::disallowed_types)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-style value tree, the shim's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number (non-finite values print as `null`).
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Name of the value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] cannot be decoded into the target type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl DeError {
    /// Convenience constructor.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::new(format!("expected {what}, found {}", found.type_name()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types decodable from a [`Value`].
pub trait Deserialize: Sized {
    /// Decodes from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// A `Value` is trivially its own representation, so generic code (and the
// TOML front-end in `exegpt-scenario`) can read a raw tree via
// `serde_json::from_str::<Value>` before decoding it with richer errors.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// --- primitives ---------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range"))),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Non-finite floats round-trip through JSON `null`.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// --- containers ---------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

/// Map keys encodable as JSON object keys.
pub trait MapKey: Ord + Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the string does not parse.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::new(format!("bad integer key `{s}`")))
            }
        }
    )*};
}
impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic key order, like serde_json with sorted maps.
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $n;
                            $t::from_value(
                                it.next().ok_or_else(|| DeError::new("tuple too short"))?,
                            )?
                        },)+))
                    }
                    other => Err(DeError::expected("array", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        let v: Vec<usize> = vec![1, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
        let m: BTreeMap<usize, String> = [(1, "a".into()), (2, "b".into())].into();
        assert_eq!(BTreeMap::<usize, String>::from_value(&m.to_value()).unwrap(), m);
    }
}
