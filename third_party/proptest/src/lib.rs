//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Each `proptest!` test draws `ProptestConfig::cases` random inputs from
//! its strategies using a deterministic RNG seeded from the test's name, so
//! failures reproduce run-to-run. Unlike real proptest there is no
//! shrinking: a failing case reports the assertion message only.

#![deny(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// Builds the deterministic RNG for one property test.
///
/// Seeded from an FNV-1a hash of the test path so every test gets a
/// distinct but reproducible stream.
#[must_use]
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives; output of [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over the given alternatives (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Boxes one `prop_oneof!` arm, driving inference to a common value type.
pub fn union_arm<V, S>(s: S) -> Box<dyn Strategy<Value = V>>
where
    S: Strategy<Value = V> + 'static,
{
    Box::new(s)
}

// --- ranges --------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_int_range_strategy!(usize, u8, u16, u32, u64, isize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.gen::<f64>() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.gen::<f32>() * (self.end - self.start);
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

// --- tuples --------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// --- any / Arbitrary -----------------------------------------------------

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_with_rng(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with_rng(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_with_rng(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// Full-domain strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary_with_rng(rng)
    }
}

/// Strategy over `T`'s whole domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// --- collections ---------------------------------------------------------

/// Module tree mirroring `proptest::prop`, re-exported by the prelude.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Strategy for vectors whose elements come from `element` and
        /// whose length is drawn from `len` (a `usize` or a range).
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, len: len.into() }
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        Self { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max: *r.end() }
    }
}

/// Output of [`prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.min..=self.len.max);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

// --- macros --------------------------------------------------------------

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_arm($arm)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = (0usize..100, 0.0f64..1.0);
        assert_eq!(s.generate(&mut a).0, s.generate(&mut b).0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn strategies_respect_bounds(
            n in 3usize..10,
            x in -2.0f64..2.0,
            v in prop::collection::vec(1u64..5, 0..8),
            choice in prop_oneof![Just(1usize), 10usize..20, (30usize..40).prop_map(|z| z + 1)],
        ) {
            prop_assume!(n != 9);
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&e| (1..5).contains(&e)));
            prop_assert!(choice == 1 || (10..20).contains(&choice) || (31..41).contains(&choice));
            prop_assert_ne!(n, 9);
            prop_assert_eq!(n.min(2), 2, "n was {}", n);
        }
    }
}
