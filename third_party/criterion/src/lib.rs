//! Offline shim for the subset of `criterion` this workspace uses: named
//! benchmark functions driven by `Criterion::bench_function`, grouped with
//! `criterion_group!`, printing simple wall-clock statistics to stdout.

#![deny(missing_docs)]
// Vendored bench shim: timing benchmarks is its whole purpose.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Re-export so call sites can hide values from the optimizer.
pub use std::hint::black_box;

/// Benchmark driver; collects and prints per-benchmark timing summaries.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility; the shim has no CLI options.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Accepted for compatibility; summaries print as benchmarks run.
    pub fn final_summary(&self) {}

    /// Runs one named benchmark and prints min/mean/max sample times.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // One warm-up pass, then the measured samples.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let total: Duration = bencher.samples.iter().sum();
        let n = bencher.samples.len().max(1) as u32;
        let mean = total / n;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{id}: mean {} [min {} .. max {}] ({n} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max)
        );
        self
    }
}

/// Times one routine; passed to the closure of `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(black_box(out));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3}us", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns}ns")
    }
}

/// Declares a benchmark group function, matching criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("shim/quick", |b| b.iter(|| black_box(2u64 + 2)));
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn group_runs() {
        group();
        Criterion::default().configure_from_args().final_summary();
    }
}
