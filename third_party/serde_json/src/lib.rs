//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`] over the vendored
//! serde shim's [`Value`] tree.
//!
//! Floats print with Rust's `{:?}` formatting (shortest round-trip), so
//! serialize → parse reproduces every finite `f64` bit-exactly; non-finite
//! floats print as `null` and read back as NaN, matching the shim's
//! `Deserialize for f64`.

#![deny(missing_docs)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Error raised by JSON printing or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.message)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// --- printing ------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, '[', ']', |o, x, d| {
            write_value(o, x, indent, d);
        }),
        Value::Object(fields) => {
            write_seq(out, fields.iter(), indent, depth, '{', '}', |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            });
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code).ok_or_else(|| Error::new("bad surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            s.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_compact_and_pretty() {
        let m: BTreeMap<String, Vec<f64>> =
            [("a".to_string(), vec![1.0, 0.25, 1e300]), ("b".to_string(), vec![])].into();
        let compact = to_string(&m).unwrap();
        assert_eq!(compact, r#"{"a":[1.0,0.25,1e300],"b":[]}"#);
        let back: BTreeMap<String, Vec<f64>> = from_str(&compact).unwrap();
        assert_eq!(back, m);
        let pretty = to_string_pretty(&m).unwrap();
        let back2: BTreeMap<String, Vec<f64>> = from_str(&pretty).unwrap();
        assert_eq!(back2, m);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0] {
            let s = to_string(&x).unwrap();
            let y: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{s}");
        }
        let nan: f64 = from_str(&to_string(&f64::NAN).unwrap()).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote \" backslash \\ newline \n tab \t unicode \u{1F600} ctl \u{1}";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        let smiley: String = from_str(r#""😀""#).unwrap();
        assert_eq!(smiley, "\u{1F600}");
    }
}
