//! Offline shim for the subset of `parking_lot` this workspace uses:
//! non-poisoning `Mutex` and `RwLock` with guard-returning lock methods.

#![deny(missing_docs)]

use std::sync;

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (poisoning is swallowed, matching parking_lot semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
