//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng` (implemented as splitmix64-seeded xoshiro256**).

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values samplable uniformly from an `Rng` (the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::standard_sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_signed_range!(i64, i32, i16, i8, isize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over the full domain).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// splitmix64. Statistically solid and fully deterministic; **not**
    /// the same stream as the real `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = c.gen_range(3usize..=9);
            assert!((3..=9).contains(&v));
            let w = c.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&w));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
