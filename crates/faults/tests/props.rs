//! Property-based guarantees of the fault model.
//!
//! For *arbitrary* seeded fault schedules: the degraded topology always
//! admits a schedule that passes the full runtime [`PlanInvariants`]
//! check, degrading hardware never increases the achievable throughput,
//! and a full recovery restores the healthy cluster — and therefore the
//! original plan — exactly.

use std::sync::{Arc, OnceLock};

use exegpt::{Engine, PlanInvariants};
use exegpt_cluster::ClusterSpec;
use exegpt_dist::LengthDist;
use exegpt_faults::{FaultEvent, FaultKind, FaultSchedule, FaultState, RandomFaultOptions};
use exegpt_model::ModelConfig;
use exegpt_profiler::{LayerProfile, ProfileOptions, Profiler};
use exegpt_sim::Workload;
use exegpt_units::Secs;
use proptest::prelude::*;

const GPUS: usize = 4;
const HORIZON: f64 = 100.0;

fn healthy() -> ClusterSpec {
    ClusterSpec::a40_cluster().subcluster(GPUS).expect("fits")
}

fn random_opts() -> RandomFaultOptions {
    RandomFaultOptions { gpus: GPUS, horizon: HORIZON, events: 6, max_slowdown: 4.0 }
}

fn profile() -> Arc<LayerProfile> {
    static PROFILE: OnceLock<Arc<LayerProfile>> = OnceLock::new();
    PROFILE
        .get_or_init(|| {
            Arc::new(
                Profiler::new(ModelConfig::opt_13b(), healthy())
                    .run(&ProfileOptions::default())
                    .expect("profiles"),
            )
        })
        .clone()
}

/// The healthy engine (paper's summarization task S); degraded engines are
/// derived from it with `with_cluster`, which reuses the profile.
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::builder()
            .model(ModelConfig::opt_13b())
            .cluster(healthy())
            .workload(Workload::new(
                LengthDist::truncated_normal(256.0, 252.0, 512).expect("valid"),
                LengthDist::truncated_normal(32.0, 13.0, 80).expect("valid"),
            ))
            .profile(profile())
            .build()
            .expect("builds")
    })
}

/// A composite schedule: `seed`'s random faults followed by a recovery
/// tail that heals every device and restores the links.
fn schedule_with_full_recovery(seed: u64) -> FaultSchedule {
    let mut events: Vec<FaultEvent> = FaultSchedule::random(seed, &random_opts()).events().to_vec();
    let t = 10.0 * HORIZON;
    for gpu in 0..GPUS {
        events.push(FaultEvent { t, kind: FaultKind::GpuRecover { gpu } });
    }
    events
        .push(FaultEvent { t, kind: FaultKind::LinkDegrade { bw_factor: 1.0, latency_add: 0.0 } });
    FaultSchedule::new(events).expect("valid schedule")
}

proptest! {
    // Each case runs a full schedule search on the degraded topology, so
    // the case count stays low; the seed space still covers failures,
    // stragglers, link degradation and partial recoveries in every
    // combination the generator can produce.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any mid-replay degradation yields a survivable topology whose
    /// schedule passes the runtime plan invariants, and degraded hardware
    /// never out-performs healthy hardware.
    #[test]
    fn degraded_plans_pass_invariants_and_never_beat_healthy(
        seed in 0u64..1u64 << 32,
        t in 0.0..1.5 * HORIZON,
    ) {
        let schedule = FaultSchedule::random(seed, &random_opts());
        let mut state = FaultState::new(schedule, GPUS).expect("in range");
        state.advance(t);
        let spec = state.degradation().apply(&healthy()).expect("random draws never kill the cluster");

        let degraded = engine().with_cluster(spec);
        let plan = degraded.schedule(Secs::INFINITY).expect("survivors admit a plan");
        prop_assert!(
            PlanInvariants::check(degraded.simulator(), &plan).is_ok(),
            "degraded plan violates invariants: {:?}",
            PlanInvariants::check(degraded.simulator(), &plan).err(),
        );

        let healthy_plan = engine().schedule(Secs::INFINITY).expect("schedules");
        prop_assert!(
            plan.estimate.throughput <= healthy_plan.estimate.throughput * (1.0 + 1e-9),
            "degraded throughput {} beats healthy {}",
            plan.estimate.throughput,
            healthy_plan.estimate.throughput,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying any random schedule to completion and then healing every
    /// device restores the healthy cluster spec exactly.
    #[test]
    fn full_recovery_restores_the_healthy_cluster(seed in 0u64..1u64 << 32) {
        let mut state = FaultState::new(schedule_with_full_recovery(seed), GPUS).expect("in range");
        state.advance(20.0 * HORIZON);
        prop_assert!(state.is_nominal());
        let deg = state.degradation();
        prop_assert!(deg.is_none());
        prop_assert_eq!(deg.apply(&healthy()).expect("identity"), healthy());
    }

    /// `advance` is idempotent at a fixed time and monotone in what it has
    /// applied: replaying the same prefix twice fires nothing new.
    #[test]
    fn advance_is_idempotent(seed in 0u64..1u64 << 32, t in 0.0..1.5 * HORIZON) {
        let schedule = FaultSchedule::random(seed, &random_opts());
        let mut state = FaultState::new(schedule, GPUS).expect("in range");
        let fired = state.advance(t).len();
        prop_assert_eq!(state.advance(t).len(), 0, "replaying t fires nothing (first pass: {})", fired);
        let deg_before = state.degradation();
        state.advance(t);
        prop_assert_eq!(state.degradation(), deg_before);
    }
}

/// A recovered spec is not merely equal to the healthy one — scheduling on
/// it reproduces the original plan choice exactly (the serve loop relies on
/// this to reinstall the pre-fault plan verbatim).
#[test]
fn scheduling_on_a_recovered_cluster_reproduces_the_original_plan() {
    let mut state = FaultState::new(schedule_with_full_recovery(7), GPUS).expect("in range");
    state.advance(20.0 * HORIZON);
    let spec = state.degradation().apply(&healthy()).expect("identity");
    let recovered = engine().with_cluster(spec);
    let original = engine().schedule(Secs::new(30.0)).expect("schedules");
    let replay = recovered.schedule(Secs::new(30.0)).expect("schedules");
    assert_eq!(original.config.describe(), replay.config.describe());
}
