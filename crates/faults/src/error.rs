//! Fault-layer errors.

/// Errors raised while building or replaying a fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// An event failed validation.
    InvalidEvent {
        /// Index of the offending event in the schedule.
        index: usize,
        /// Why it was rejected.
        why: &'static str,
    },
    /// An event targets a GPU outside the cluster.
    GpuOutOfRange {
        /// The targeted GPU index.
        gpu: usize,
        /// Devices in the cluster being replayed against.
        total: usize,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::InvalidEvent { index, why } => {
                write!(f, "invalid fault event #{index}: {why}")
            }
            FaultError::GpuOutOfRange { gpu, total } => {
                write!(f, "fault targets gpu{gpu}, but the cluster has {total} devices")
            }
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FaultError::InvalidEvent { index: 3, why: "time must be finite" };
        assert!(e.to_string().contains("#3"));
        let e = FaultError::GpuOutOfRange { gpu: 9, total: 4 };
        assert!(e.to_string().contains("gpu9") && e.to_string().contains('4'));
    }
}
