//! exegpt-faults: deterministic fault injection for the simulated cluster.
//!
//! ExeGPT's scheduler assumes a healthy, fixed topology; production traffic
//! does not. This crate models the gap as *data*: a [`FaultSchedule`] is a
//! seeded, serializable list of timed events — [`FaultKind::GpuFail`],
//! [`FaultKind::GpuSlowdown`], [`FaultKind::LinkDegrade`],
//! [`FaultKind::GpuRecover`] — that a consumer replays against a virtual
//! clock. Because everything runs in virtual time, a failure scenario is
//! *exactly* reproducible: two runs with the same schedule and seed produce
//! byte-identical traces, which is something no physical testbed offers.
//!
//! The pieces:
//!
//! * [`FaultSchedule`] — the validated, time-sorted event list (build one
//!   explicitly, or draw a random one with [`FaultSchedule::random`]).
//! * [`FaultState`] — the replay state machine: [`advance`] consumes events
//!   up to a virtual time and reports what fired; queries answer which
//!   devices are [`GpuStatus::Failed`] (they reject work), how slow the
//!   worst straggler is, and how degraded the links are.
//! * [`Degradation`] — a snapshot of the active faults that [`apply`]s to a
//!   healthy [`ClusterSpec`](exegpt_cluster::ClusterSpec): failed devices
//!   are removed (the surviving topology), stragglers scale the device
//!   roofline, degraded links scale bandwidth and add latency.
//!
//! The serving loop (`exegpt-serve`) drives all of this online: it dilates
//! phase timings under active stragglers, detects failures, retries
//! in-flight work, and replans onto the surviving topology.
//!
//! # Example
//!
//! ```
//! use exegpt_faults::{FaultEvent, FaultKind, FaultSchedule, FaultState, GpuStatus};
//!
//! let schedule = FaultSchedule::new(vec![
//!     FaultEvent { t: 10.0, kind: FaultKind::GpuFail { gpu: 2 } },
//!     FaultEvent { t: 50.0, kind: FaultKind::GpuRecover { gpu: 2 } },
//! ])?;
//! let mut state = FaultState::new(schedule, 4)?;
//! assert!(state.advance(10.0).len() == 1);
//! assert_eq!(state.status(2), GpuStatus::Failed);
//! assert_eq!(state.failed(), vec![2]);
//! state.advance(50.0);
//! assert!(state.is_nominal());
//! # Ok::<(), exegpt_faults::FaultError>(())
//! ```
//!
//! [`advance`]: FaultState::advance
//! [`apply`]: Degradation::apply

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod schedule;
mod state;

pub use error::FaultError;
pub use schedule::{FaultEvent, FaultKind, FaultSchedule, RandomFaultOptions};
pub use state::{Degradation, FaultState, GpuStatus, LinkStatus};
