//! The replay state machine: what is broken *right now*.

use exegpt_cluster::{ClusterError, ClusterSpec};
use exegpt_units::Secs;

use crate::error::FaultError;
use crate::schedule::{FaultEvent, FaultKind, FaultSchedule};

/// Health of a single device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GpuStatus {
    /// Full speed, accepting work.
    Healthy,
    /// Straggling by the contained factor (≥ 1); still accepting work.
    Slowed(f64),
    /// Dead: rejects all work until a `GpuRecover`.
    Failed,
}

/// Health of the interconnect (applies to intra- and inter-node links).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkStatus {
    /// Bandwidth multiplier in `(0, 1]`; 1 means healthy.
    pub bw_factor: f64,
    /// Added latency in virtual seconds; 0 means healthy.
    pub latency_add: f64,
}

impl LinkStatus {
    /// Healthy links: full bandwidth, no added latency.
    pub fn nominal() -> Self {
        Self { bw_factor: 1.0, latency_add: 0.0 }
    }

    /// Whether the links are at nominal capacity.
    pub fn is_nominal(&self) -> bool {
        self.bw_factor >= 1.0 && self.latency_add <= 0.0
    }

    /// How much longer a transfer takes under this status: the multiplier
    /// on the bandwidth-bound portion. Added latency is accounted
    /// separately by the consumer (it is per-transfer, not proportional).
    pub fn time_factor(&self) -> f64 {
        1.0 / self.bw_factor
    }
}

/// Replays a [`FaultSchedule`] against a virtual clock and answers
/// "what is degraded at time `t`".
#[derive(Debug, Clone)]
pub struct FaultState {
    schedule: FaultSchedule,
    /// Index of the first event not yet applied.
    cursor: usize,
    gpus: Vec<GpuStatus>,
    link: LinkStatus,
}

impl FaultState {
    /// Builds the replay state for a cluster of `total_gpus` devices.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::GpuOutOfRange`] if any event targets a device
    /// index `>= total_gpus`.
    pub fn new(schedule: FaultSchedule, total_gpus: usize) -> Result<Self, FaultError> {
        if let Some(gpu) = schedule.max_gpu() {
            if gpu >= total_gpus {
                return Err(FaultError::GpuOutOfRange { gpu, total: total_gpus });
            }
        }
        Ok(Self {
            schedule,
            cursor: 0,
            gpus: vec![GpuStatus::Healthy; total_gpus],
            link: LinkStatus::nominal(),
        })
    }

    /// Applies every event with activation time `<= t` and returns the
    /// events that fired, in activation order. Idempotent for a fixed `t`;
    /// `t` may only meaningfully move forward (earlier calls with larger
    /// `t` have already consumed earlier events).
    pub fn advance(&mut self, t: f64) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        while let Some(e) = self.schedule.events().get(self.cursor).copied() {
            if e.t > t {
                break;
            }
            self.apply(e.kind);
            fired.push(e);
            self.cursor += 1;
        }
        fired
    }

    fn apply(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::GpuFail { gpu } => {
                if let Some(s) = self.gpus.get_mut(gpu) {
                    *s = GpuStatus::Failed;
                }
            }
            FaultKind::GpuSlowdown { gpu, factor } => {
                if let Some(s) = self.gpus.get_mut(gpu) {
                    // A slowdown does not resurrect a dead device.
                    if !matches!(s, GpuStatus::Failed) {
                        *s = GpuStatus::Slowed(factor);
                    }
                }
            }
            FaultKind::GpuRecover { gpu } => {
                if let Some(s) = self.gpus.get_mut(gpu) {
                    *s = GpuStatus::Healthy;
                }
            }
            FaultKind::LinkDegrade { bw_factor, latency_add } => {
                self.link = LinkStatus { bw_factor, latency_add };
            }
        }
    }

    /// Activation time of the next unapplied event, if any. Lets the
    /// consumer's idle-jump wake up exactly when the world changes.
    pub fn next_event_time(&self) -> Option<f64> {
        self.schedule.events().get(self.cursor).map(|e| e.t)
    }

    /// Current status of device `gpu` (out-of-range reads as `Healthy`;
    /// construction range-checks the schedule, so that cannot be hit by
    /// replayed events).
    pub fn status(&self, gpu: usize) -> GpuStatus {
        self.gpus.get(gpu).copied().unwrap_or(GpuStatus::Healthy)
    }

    /// Indices of currently failed devices, ascending.
    pub fn failed(&self) -> Vec<usize> {
        (0..self.gpus.len()).filter(|&g| matches!(self.gpus[g], GpuStatus::Failed)).collect()
    }

    /// The worst slowdown factor among *live* devices (≥ 1; exactly 1 when
    /// no live device is straggling). Failed devices do not count — they
    /// reject work rather than slow it down.
    pub fn worst_slowdown(&self) -> f64 {
        self.gpus
            .iter()
            .filter_map(|s| match s {
                GpuStatus::Slowed(f) => Some(*f),
                _ => None,
            })
            .fold(1.0, f64::max)
    }

    /// The most-slowed live device and its factor, if any device is
    /// straggling. Ties break toward the lowest index.
    pub fn worst_slowed_gpu(&self) -> Option<(usize, f64)> {
        let mut worst: Option<(usize, f64)> = None;
        for (g, s) in self.gpus.iter().enumerate() {
            if let GpuStatus::Slowed(f) = s {
                let beat = match worst {
                    Some((_, wf)) => *f > wf,
                    None => true,
                };
                if beat {
                    worst = Some((g, *f));
                }
            }
        }
        worst
    }

    /// Current link health.
    pub fn link(&self) -> LinkStatus {
        self.link
    }

    /// Whether nothing is currently degraded (all devices healthy, links
    /// nominal). Future scheduled events do not affect this.
    pub fn is_nominal(&self) -> bool {
        self.link.is_nominal() && self.gpus.iter().all(|s| matches!(s, GpuStatus::Healthy))
    }

    /// Devices in the cluster being replayed against.
    pub fn total_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Snapshot of the active degradation, suitable for
    /// [`Degradation::apply`] to a healthy cluster spec.
    pub fn degradation(&self) -> Degradation {
        Degradation { failed: self.failed(), slowdown: self.worst_slowdown(), link: self.link }
    }
}

/// A snapshot of active faults, decoupled from the replay cursor.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Currently failed device indices, ascending.
    pub failed: Vec<usize>,
    /// Worst live-device slowdown factor (≥ 1).
    pub slowdown: f64,
    /// Link health.
    pub link: LinkStatus,
}

impl Degradation {
    /// Whether this snapshot describes a fully healthy cluster.
    pub fn is_none(&self) -> bool {
        self.failed.is_empty() && self.slowdown <= 1.0 && self.link.is_nominal()
    }

    /// Projects a healthy cluster spec into the degraded world: failed
    /// devices are removed (see `ClusterSpec::survivors` for the rounding
    /// policy), the worst straggler factor scales the device roofline
    /// (homogeneous-cluster conservatism: the slowest device paces a
    /// data-parallel stage), and degraded links lose bandwidth and gain
    /// latency.
    ///
    /// # Errors
    ///
    /// Propagates `ClusterError` when no device survives or a factor is
    /// out of range (impossible for snapshots taken from a [`FaultState`],
    /// whose schedule was validated).
    pub fn apply(&self, healthy: &ClusterSpec) -> Result<ClusterSpec, ClusterError> {
        let mut spec = healthy.survivors(self.failed.len())?;
        if self.slowdown > 1.0 {
            spec = spec.with_gpu(spec.gpu().slowed(self.slowdown)?);
        }
        if !self.link.is_nominal() {
            let latency = Secs::new(self.link.latency_add);
            spec = spec.with_links(
                spec.intra().degraded(self.link.bw_factor, latency)?,
                spec.inter().degraded(self.link.bw_factor, latency)?,
            );
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, FaultKind};
    use exegpt_cluster::{ClusterSpec, GpuSpec, Interconnect};

    fn schedule(events: Vec<FaultEvent>) -> FaultSchedule {
        FaultSchedule::new(events).expect("valid schedule")
    }

    fn cluster() -> ClusterSpec {
        ClusterSpec::new(
            "test 4xA40",
            GpuSpec::a40(),
            4,
            1,
            Interconnect::pcie4_x16(),
            Interconnect::infiniband_100gb(),
        )
        .expect("valid cluster")
    }

    #[test]
    fn advance_applies_in_order_and_reports_fired() {
        let s = schedule(vec![
            FaultEvent { t: 1.0, kind: FaultKind::GpuSlowdown { gpu: 1, factor: 2.0 } },
            FaultEvent { t: 2.0, kind: FaultKind::GpuFail { gpu: 0 } },
            FaultEvent { t: 9.0, kind: FaultKind::GpuRecover { gpu: 0 } },
        ]);
        let mut st = FaultState::new(s, 4).expect("in range");
        assert!(st.advance(0.5).is_empty());
        assert_eq!(st.next_event_time(), Some(1.0));
        let fired = st.advance(2.0);
        assert_eq!(fired.len(), 2);
        assert_eq!(st.status(0), GpuStatus::Failed);
        assert_eq!(st.status(1), GpuStatus::Slowed(2.0));
        assert_eq!(st.failed(), vec![0]);
        assert!(st.worst_slowdown() >= 2.0);
        assert_eq!(st.worst_slowed_gpu(), Some((1, 2.0)));
        assert!(!st.is_nominal());
        // Idempotent at a fixed time.
        assert!(st.advance(2.0).is_empty());
        st.advance(10.0);
        assert_eq!(st.status(0), GpuStatus::Healthy);
        assert_eq!(st.next_event_time(), None);
    }

    #[test]
    fn slowdown_does_not_resurrect_failed_gpu() {
        let s = schedule(vec![
            FaultEvent { t: 1.0, kind: FaultKind::GpuFail { gpu: 2 } },
            FaultEvent { t: 2.0, kind: FaultKind::GpuSlowdown { gpu: 2, factor: 3.0 } },
        ]);
        let mut st = FaultState::new(s, 4).expect("in range");
        st.advance(5.0);
        assert_eq!(st.status(2), GpuStatus::Failed);
        assert!(st.worst_slowdown() <= 1.0, "failed devices are not stragglers");
    }

    #[test]
    fn out_of_range_gpu_is_rejected_at_construction() {
        let s = schedule(vec![FaultEvent { t: 0.0, kind: FaultKind::GpuFail { gpu: 7 } }]);
        assert_eq!(
            FaultState::new(s, 4).err(),
            Some(FaultError::GpuOutOfRange { gpu: 7, total: 4 })
        );
    }

    #[test]
    fn link_degrade_replaces_and_restores() {
        let s = schedule(vec![
            FaultEvent {
                t: 1.0,
                kind: FaultKind::LinkDegrade { bw_factor: 0.5, latency_add: 0.001 },
            },
            FaultEvent {
                t: 2.0,
                kind: FaultKind::LinkDegrade { bw_factor: 1.0, latency_add: 0.0 },
            },
        ]);
        let mut st = FaultState::new(s, 4).expect("in range");
        st.advance(1.0);
        assert!(!st.link().is_nominal());
        assert!(st.link().time_factor() > 1.9);
        st.advance(2.0);
        assert!(st.link().is_nominal());
        assert!(st.is_nominal());
    }

    #[test]
    fn degradation_applies_to_cluster() {
        let s = schedule(vec![
            FaultEvent { t: 1.0, kind: FaultKind::GpuFail { gpu: 3 } },
            FaultEvent { t: 1.0, kind: FaultKind::GpuSlowdown { gpu: 1, factor: 2.0 } },
            FaultEvent {
                t: 1.0,
                kind: FaultKind::LinkDegrade { bw_factor: 0.5, latency_add: 0.001 },
            },
        ]);
        let mut st = FaultState::new(s, 4).expect("in range");
        st.advance(1.0);
        let deg = st.degradation();
        assert!(!deg.is_none());
        let healthy = cluster();
        let spec = deg.apply(&healthy).expect("survivable");
        assert_eq!(spec.total_gpus(), 3);
        assert!(spec.gpu().peak_flops().as_f64() < healthy.gpu().peak_flops().as_f64());
        assert!(spec.intra().bandwidth().as_f64() < healthy.intra().bandwidth().as_f64());
    }

    #[test]
    fn nominal_degradation_is_identity() {
        let st = FaultState::new(FaultSchedule::empty(), 4).expect("empty ok");
        let deg = st.degradation();
        assert!(deg.is_none());
        let healthy = cluster();
        let spec = deg.apply(&healthy).expect("identity");
        assert_eq!(spec.total_gpus(), healthy.total_gpus());
    }

    #[test]
    fn all_failed_is_unsurvivable() {
        let deg =
            Degradation { failed: vec![0, 1, 2, 3], slowdown: 1.0, link: LinkStatus::nominal() };
        assert!(deg.apply(&cluster()).is_err());
    }
}
