//! The fault-event vocabulary and the validated, time-sorted schedule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::FaultError;

/// What happens to the cluster at a fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The device dies: it rejects all work until it recovers.
    GpuFail {
        /// The failing device (dense index within the serving cluster).
        gpu: usize,
    },
    /// The device straggles: every kernel on it runs `factor`× slower
    /// (thermal throttling, a noisy neighbour, ECC retirement storms).
    GpuSlowdown {
        /// The straggling device.
        gpu: usize,
        /// Slowdown factor (≥ 1).
        factor: f64,
    },
    /// Cluster-wide link degradation: bandwidth scales by `bw_factor`,
    /// `latency_add` seconds join every transfer. A later `LinkDegrade`
    /// replaces the current one; `bw_factor = 1, latency_add = 0` restores
    /// healthy links.
    LinkDegrade {
        /// Bandwidth multiplier in `(0, 1]`.
        bw_factor: f64,
        /// Added latency in (virtual) seconds, ≥ 0.
        latency_add: f64,
    },
    /// The device returns to service, clearing a failure or slowdown.
    GpuRecover {
        /// The recovering device.
        gpu: usize,
    },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::GpuFail { gpu } => write!(f, "gpu{gpu} failed"),
            FaultKind::GpuSlowdown { gpu, factor } => {
                write!(f, "gpu{gpu} slowed x{factor:.2}")
            }
            FaultKind::LinkDegrade { bw_factor, latency_add } => {
                write!(f, "links degraded bw x{bw_factor:.2} +{latency_add:.4}s")
            }
            FaultKind::GpuRecover { gpu } => write!(f, "gpu{gpu} recovered"),
        }
    }
}

impl FaultKind {
    /// The device this event targets (`None` for link events).
    pub fn gpu(&self) -> Option<usize> {
        match self {
            FaultKind::GpuFail { gpu }
            | FaultKind::GpuSlowdown { gpu, .. }
            | FaultKind::GpuRecover { gpu } => Some(*gpu),
            FaultKind::LinkDegrade { .. } => None,
        }
    }

    fn validate(&self) -> Result<(), &'static str> {
        match *self {
            FaultKind::GpuFail { .. } | FaultKind::GpuRecover { .. } => Ok(()),
            FaultKind::GpuSlowdown { factor, .. } => {
                if factor.is_finite() && factor >= 1.0 {
                    Ok(())
                } else {
                    Err("slowdown factor must be finite and >= 1")
                }
            }
            FaultKind::LinkDegrade { bw_factor, latency_add } => {
                if !(bw_factor > 0.0 && bw_factor <= 1.0) {
                    Err("link bw_factor must be in (0, 1]")
                } else if !(latency_add.is_finite() && latency_add >= 0.0) {
                    Err("link latency_add must be finite and >= 0")
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// One timed fault event on the virtual clock.
///
/// `t` is *virtual* seconds — fault times come from the simulated clock the
/// consumer replays against, never from the wall clock (xlint rule D2), so
/// a scenario replays byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time at which the fault becomes active.
    pub t: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A validated fault scenario: events sorted by activation time.
///
/// The schedule is plain serializable data — persist it next to a run's
/// event log and the run is fully reconstructible.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

/// Tuning of [`FaultSchedule::random`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomFaultOptions {
    /// Devices in the target cluster (events stay in `0..gpus`).
    pub gpus: usize,
    /// Events are drawn with activation times in `[0, horizon)`.
    pub horizon: f64,
    /// Number of events to draw.
    pub events: usize,
    /// Largest slowdown factor drawn (factors land in `[1, max_slowdown]`).
    pub max_slowdown: f64,
}

impl FaultSchedule {
    /// Validates and time-sorts `events` into a schedule.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidEvent`] for non-finite/negative times
    /// or out-of-range fault parameters.
    pub fn new(mut events: Vec<FaultEvent>) -> Result<Self, FaultError> {
        for (index, e) in events.iter().enumerate() {
            if !(e.t.is_finite() && e.t >= 0.0) {
                return Err(FaultError::InvalidEvent {
                    index,
                    why: "activation time must be finite and >= 0",
                });
            }
            e.kind.validate().map_err(|why| FaultError::InvalidEvent { index, why })?;
        }
        events.sort_by(|a, b| a.t.total_cmp(&b.t));
        Ok(Self { events })
    }

    /// The empty schedule (a guaranteed no-op for every consumer).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The events, sorted by activation time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The highest GPU index any event targets.
    pub fn max_gpu(&self) -> Option<usize> {
        self.events.iter().filter_map(|e| e.kind.gpu()).max()
    }

    /// Draws a random but *valid* scenario, deterministically in `seed`.
    ///
    /// Invariants the generator maintains (so every drawn schedule is
    /// survivable): at least one device stays alive at all times — a
    /// `GpuFail` is only emitted while fewer than `gpus − 1` devices are
    /// down — and `GpuRecover` only targets a currently failed or slowed
    /// device. Slowdown factors land in `[1, max_slowdown]`; link events
    /// draw `bw_factor` from `[0.25, 1]` and a small added latency.
    ///
    /// Returns the empty schedule when `gpus` is 0, `events` is 0, or
    /// `horizon` is not positive.
    pub fn random(seed: u64, opts: &RandomFaultOptions) -> Self {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if opts.gpus == 0 || opts.events == 0 || !(opts.horizon > 0.0) {
            return Self::empty();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let max_slow = opts.max_slowdown.max(1.0);
        // Track the simulated status so the draw never kills the cluster.
        let mut failed = vec![false; opts.gpus];
        let mut slowed = vec![false; opts.gpus];
        let mut events = Vec::with_capacity(opts.events);
        let mut t = 0.0f64;
        for _ in 0..opts.events {
            t += rng.gen_range(0.0..opts.horizon / opts.events as f64);
            let down = failed.iter().filter(|&&f| f).count();
            let impaired: Vec<usize> = (0..opts.gpus).filter(|&g| failed[g] || slowed[g]).collect();
            let kind = match rng.gen_range(0u32..4) {
                0 if down + 1 < opts.gpus => {
                    let alive: Vec<usize> = (0..opts.gpus).filter(|&g| !failed[g]).collect();
                    let gpu = alive[rng.gen_range(0..alive.len())];
                    failed[gpu] = true;
                    FaultKind::GpuFail { gpu }
                }
                1 => {
                    let gpu = rng.gen_range(0..opts.gpus);
                    slowed[gpu] = true;
                    FaultKind::GpuSlowdown { gpu, factor: rng.gen_range(1.0..max_slow.max(1.01)) }
                }
                2 => FaultKind::LinkDegrade {
                    bw_factor: rng.gen_range(0.25..1.0),
                    latency_add: rng.gen_range(0.0..0.01),
                },
                _ if !impaired.is_empty() => {
                    let gpu = impaired[rng.gen_range(0..impaired.len())];
                    failed[gpu] = false;
                    slowed[gpu] = false;
                    FaultKind::GpuRecover { gpu }
                }
                // Nothing to recover (or the failure slot was vetoed):
                // fall back to a link restore, always valid.
                _ => FaultKind::LinkDegrade { bw_factor: 1.0, latency_add: 0.0 },
            };
            events.push(FaultEvent { t, kind });
        }
        // Generated events are valid by construction and emitted in time
        // order, so validation cannot fail.
        Self { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_validates() {
        let s = FaultSchedule::new(vec![
            FaultEvent { t: 5.0, kind: FaultKind::GpuRecover { gpu: 0 } },
            FaultEvent { t: 1.0, kind: FaultKind::GpuFail { gpu: 0 } },
        ])
        .expect("valid events");
        assert_eq!(s.len(), 2);
        assert!(s.events()[0].t < s.events()[1].t, "sorted by time");
        assert_eq!(s.max_gpu(), Some(0));
    }

    #[test]
    fn rejects_bad_events() {
        let bad_time = FaultEvent { t: f64::NAN, kind: FaultKind::GpuFail { gpu: 0 } };
        assert!(matches!(
            FaultSchedule::new(vec![bad_time]),
            Err(FaultError::InvalidEvent { index: 0, .. })
        ));
        let speedup = FaultEvent { t: 0.0, kind: FaultKind::GpuSlowdown { gpu: 0, factor: 0.5 } };
        assert!(FaultSchedule::new(vec![speedup]).is_err());
        let widen = FaultEvent {
            t: 0.0,
            kind: FaultKind::LinkDegrade { bw_factor: 1.5, latency_add: 0.0 },
        };
        assert!(FaultSchedule::new(vec![widen]).is_err());
        let neg = FaultEvent {
            t: 0.0,
            kind: FaultKind::LinkDegrade { bw_factor: 0.5, latency_add: -1.0 },
        };
        assert!(FaultSchedule::new(vec![neg]).is_err());
    }

    #[test]
    fn random_is_deterministic_and_valid() {
        let opts = RandomFaultOptions { gpus: 4, horizon: 100.0, events: 32, max_slowdown: 3.0 };
        let a = FaultSchedule::random(7, &opts);
        let b = FaultSchedule::random(7, &opts);
        let c = FaultSchedule::random(8, &opts);
        assert_eq!(a, b, "same seed, same scenario");
        assert_ne!(a, c, "different seed, different scenario");
        assert_eq!(a.len(), 32);
        // Round-trips through the validating constructor.
        assert_eq!(FaultSchedule::new(a.events().to_vec()).expect("valid"), a);
        assert!(a.max_gpu().is_some_and(|g| g < 4));
    }

    #[test]
    fn random_degenerate_inputs_yield_empty() {
        let z = RandomFaultOptions { gpus: 0, horizon: 10.0, events: 4, max_slowdown: 2.0 };
        assert!(FaultSchedule::random(1, &z).is_empty());
        let z = RandomFaultOptions { gpus: 4, horizon: 0.0, events: 4, max_slowdown: 2.0 };
        assert!(FaultSchedule::random(1, &z).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let s = FaultSchedule::new(vec![
            FaultEvent { t: 1.5, kind: FaultKind::GpuFail { gpu: 1 } },
            FaultEvent {
                t: 2.5,
                kind: FaultKind::LinkDegrade { bw_factor: 0.5, latency_add: 0.001 },
            },
            FaultEvent { t: 9.0, kind: FaultKind::GpuRecover { gpu: 1 } },
        ])
        .expect("valid");
        let json = serde_json::to_string(&s).expect("serializes");
        let back: FaultSchedule = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, s);
    }

    #[test]
    fn display_names_the_device() {
        let k = FaultKind::GpuSlowdown { gpu: 3, factor: 2.0 };
        assert!(k.to_string().contains("gpu3"));
        assert_eq!(k.gpu(), Some(3));
        assert_eq!(FaultKind::LinkDegrade { bw_factor: 0.5, latency_add: 0.0 }.gpu(), None);
    }
}
