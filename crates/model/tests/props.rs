//! Property-based invariants of the model substrate.

use exegpt_model::{LayerKind, ModelConfig, ModelKind, Partition};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = ModelConfig> {
    (
        prop_oneof![Just(ModelKind::DecoderOnly), Just(ModelKind::EncoderDecoder)],
        1usize..32,                                                  // layer pairs
        prop_oneof![Just(64usize), Just(128), Just(256), Just(512)], // d_model
        1usize..16,                                                  // heads
        1usize..8,                                                   // head_dim multiplier
    )
        .prop_map(|(kind, pairs, d_model, heads, hd)| {
            let layers = match kind {
                ModelKind::EncoderDecoder => pairs * 2,
                ModelKind::DecoderOnly => pairs,
            };
            let d_attn = heads * hd * 16;
            ModelConfig::new(
                "prop",
                kind,
                layers,
                d_model,
                d_attn,
                4 * d_model,
                heads,
                1000,
                4096,
                2,
            )
            .expect("generated dimensions are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// FLOPs and byte counts are monotone in batch and sequence length.
    #[test]
    fn costs_are_monotone(model in arb_model(), b in 1usize..64, s in 1usize..512) {
        let e1 = model.encode_rest_cost(b, s);
        let e2 = model.encode_rest_cost(b + 1, s);
        let e3 = model.encode_rest_cost(b, s + 1);
        prop_assert!(e2.flops >= e1.flops && e3.flops >= e1.flops);
        let a1 = model.encode_attention_cost(b, s);
        let a2 = model.encode_attention_cost(b, s + 1);
        prop_assert!(a2.flops > a1.flops);
        let d1 = model.decode_attention_cost(LayerKind::Decoder, b, s, 0);
        let d2 = model.decode_attention_cost(LayerKind::Decoder, b, s + 1, 0);
        prop_assert!(d2.bytes >= d1.bytes);
    }

    /// Total parameter bytes equal the sum over layers plus embeddings.
    #[test]
    fn param_accounting_is_consistent(model in arb_model()) {
        let enc = model.num_encoder_layers() as u64
            * model.layer_param_count(LayerKind::Encoder);
        let dec = model.num_decoder_layers() as u64
            * model.layer_param_count(LayerKind::Decoder);
        let embed = (model.vocab_size() * model.d_model()) as u64;
        prop_assert_eq!(model.param_count(), enc + dec + embed);
        prop_assert_eq!(
            model.param_bytes(),
            model.param_count() * model.dtype_bytes() as u64
        );
    }

    /// KV accounting scales exactly linearly in each factor.
    #[test]
    fn kv_cache_is_multilinear(
        model in arb_model(),
        b in 1usize..64,
        ctx in 1usize..512,
        layers in 1usize..32,
    ) {
        let unit = model.kv_bytes_per_token_per_layer();
        prop_assert_eq!(
            model.kv_cache_bytes(b, ctx, layers),
            unit * (b * ctx * layers) as u64
        );
    }

    /// Even partitions cover every layer exactly once with balanced stages.
    #[test]
    fn even_partition_invariants(layers in 1usize..512, stages in 1usize..64) {
        prop_assume!(stages <= layers);
        let p = Partition::even(layers, stages).expect("stages <= layers");
        prop_assert_eq!(p.num_stages(), stages);
        prop_assert_eq!(p.iter().map(|r| r.len()).sum::<usize>(), layers);
        // Contiguity and coverage.
        let mut next = 0;
        for r in p.iter() {
            prop_assert_eq!(r.start, next);
            prop_assert!(!r.is_empty());
            next = r.end;
        }
        prop_assert_eq!(next, layers);
        // Balance: stage sizes differ by at most one.
        let lens: Vec<usize> = p.iter().map(|r| r.len()).collect();
        let min = *lens.iter().min().expect("non-empty");
        let max = *lens.iter().max().expect("non-empty");
        prop_assert!(max - min <= 1);
    }
}
