//! Transformer model architecture descriptions for the ExeGPT reproduction.
//!
//! This crate is the *model substrate*: it describes the shapes of the LLMs the
//! paper evaluates (Table 1) and turns those shapes into the quantities the
//! rest of the system consumes — floating-point operation counts, parameter
//! bytes, key/value-cache bytes, and layer partitionings across pipeline
//! stages.
//!
//! No weights are ever materialized: ExeGPT is a *scheduling* system and the
//! only thing scheduling needs from a model is how much compute and memory
//! each of its layers costs (see `DESIGN.md` §1 for the substitution
//! rationale).
//!
//! # Example
//!
//! ```
//! use exegpt_model::ModelConfig;
//!
//! let opt = ModelConfig::opt_13b();
//! // OPT-13B really has ~13e9 parameters.
//! let billions = opt.param_count() as f64 / 1e9;
//! assert!((12.0..14.5).contains(&billions));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod error;
mod flops;
mod memory;
mod partition;
mod presets;

pub use config::{LayerKind, ModelConfig, ModelKind};
pub use error::ModelError;
pub use flops::KernelCost;
pub use memory::MemoryFootprint;
pub use partition::{LayerRange, Partition};
