//! Floating-point and byte-traffic accounting for transformer kernels.
//!
//! Costs are split the same way the paper's XProfiler splits its measurements
//! (§3): the *attention kernel* (whose cost depends on batch size **and**
//! sequence length) and the *rest of the layer* (projections + feed-forward,
//! whose cost depends only on the total number of tokens, i.e. batch ×
//! length). The cluster crate's roofline model turns a [`KernelCost`] into
//! seconds.
//!
//! Conventions: one multiply-accumulate = 2 FLOPs; weights are streamed from
//! HBM once per kernel invocation; the attention cache is re-read every
//! decoding iteration (this is what makes decoding memory-bound, the effect
//! at the heart of the paper's diminishing-batch problem).

use crate::config::{LayerKind, ModelConfig};

/// Work descriptor for one kernel invocation: compute and memory traffic.
///
/// A passive value consumed by the cluster cost model.
///
/// # Example
///
/// ```
/// use exegpt_model::ModelConfig;
///
/// let m = ModelConfig::opt_13b();
/// let enc = m.encode_rest_cost(8, 128);
/// let dec = m.decode_rest_cost(8);
/// // Encoding 128 tokens/query does ~128x the compute of decoding 1 token.
/// assert!(enc.flops / dec.flops > 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
}

impl KernelCost {
    /// Sum of two kernel costs (executed back to back).
    pub fn and(self, other: KernelCost) -> KernelCost {
        KernelCost { flops: self.flops + other.flops, bytes: self.bytes + other.bytes }
    }

    /// Cost scaled by a factor (e.g. per-layer cost × layer count).
    pub fn scaled(self, k: f64) -> KernelCost {
        KernelCost { flops: self.flops * k, bytes: self.bytes * k }
    }
}

impl ModelConfig {
    /// Attention-kernel cost of *encoding* `batch` sequences of length `seq`
    /// through one layer: the `QK^T` and `AV` batched matmuls.
    ///
    /// FLOPs are `4·B·S²·d_attn` (two matmuls, 2 FLOPs/MAC); byte traffic
    /// assumes a fused (flash-style) kernel that never materializes the `S²`
    /// score matrix, so it reads Q/K/V and writes the context vector.
    pub fn encode_attention_cost(&self, batch: usize, seq: usize) -> KernelCost {
        let b = batch as f64;
        let s = seq as f64;
        let da = self.d_attn() as f64;
        let dt = self.dtype_bytes() as f64;
        KernelCost { flops: 4.0 * b * s * s * da, bytes: 4.0 * b * s * da * dt }
    }

    /// Non-attention cost of *encoding* `batch` sequences of length `seq`
    /// through one layer: Q/K/V/O projections plus the feed-forward block.
    ///
    /// Depends only on the token count `batch·seq`, matching the paper's
    /// observation that the profiler can sweep "input sizes" for this part.
    pub fn encode_rest_cost(&self, batch: usize, seq: usize) -> KernelCost {
        let tokens = (batch * seq) as f64;
        let d = self.d_model() as f64;
        let da = self.d_attn() as f64;
        let dff = self.d_ff() as f64;
        let dt = self.dtype_bytes() as f64;
        let proj_flops = 2.0 * tokens * 4.0 * d * da;
        let ffn_flops = 2.0 * tokens * 2.0 * d * dff;
        let weight_bytes = (4.0 * d * da + 2.0 * d * dff) * dt;
        let act_bytes = 4.0 * tokens * d * dt;
        KernelCost { flops: proj_flops + ffn_flops, bytes: weight_bytes + act_bytes }
    }

    /// Attention-kernel cost of one *decoding* iteration for `batch` queries
    /// whose current total context length (input + generated so far) is
    /// `ctx`, plus cross-attention over `input_len` cached input tokens for
    /// encoder–decoder models.
    ///
    /// With the incremental-decoding KV cache only the single new token
    /// attends over the cache, so FLOPs are `4·B·ctx·d_attn` but the *entire*
    /// cache (`2·B·ctx·d_attn` elements) must be re-read — the memory-bound
    /// regime that motivates large decoding batches.
    pub fn decode_attention_cost(
        &self,
        layer: LayerKind,
        batch: usize,
        ctx: usize,
        input_len: usize,
    ) -> KernelCost {
        let b = batch as f64;
        let l = ctx as f64;
        let da = self.d_attn() as f64;
        let dt = self.dtype_bytes() as f64;
        let mut flops = 4.0 * b * l * da;
        let mut bytes = 2.0 * b * l * da * dt + 4.0 * b * da * dt;
        if self.has_cross_attention(layer) {
            let s_in = input_len as f64;
            flops += 4.0 * b * s_in * da;
            bytes += 2.0 * b * s_in * da * dt;
        }
        KernelCost { flops, bytes }
    }

    /// Non-attention cost of one *decoding* iteration for `batch` queries
    /// through one layer (projections + feed-forward for a single new token
    /// per query).
    ///
    /// The layer's weights are streamed once regardless of batch size, so at
    /// small batches this kernel is weight-bandwidth-bound and batching is
    /// nearly free — the effect the RRA/WAA strategies exploit.
    pub fn decode_rest_cost(&self, batch: usize) -> KernelCost {
        let b = batch as f64;
        let d = self.d_model() as f64;
        let da = self.d_attn() as f64;
        let dff = self.d_ff() as f64;
        let dt = self.dtype_bytes() as f64;
        let proj_flops = 2.0 * b * 4.0 * d * da;
        let ffn_flops = 2.0 * b * 2.0 * d * dff;
        let weight_bytes = (4.0 * d * da + 2.0 * d * dff) * dt;
        let act_bytes = 4.0 * b * d * dt;
        KernelCost { flops: proj_flops + ffn_flops, bytes: weight_bytes + act_bytes }
    }

    /// Extra per-iteration cost of the cross-attention *projections*
    /// (query/output) in decoder layers of encoder–decoder models.
    ///
    /// Returns a zero cost for decoder-only models.
    pub fn cross_projection_cost(&self, layer: LayerKind, batch: usize) -> KernelCost {
        if !self.has_cross_attention(layer) {
            return KernelCost::default();
        }
        let b = batch as f64;
        let d = self.d_model() as f64;
        let da = self.d_attn() as f64;
        let dt = self.dtype_bytes() as f64;
        KernelCost { flops: 2.0 * b * 2.0 * d * da, bytes: 2.0 * d * da * dt + 2.0 * b * d * dt }
    }

    /// One-time cost of projecting the cross-attention keys/values for
    /// `batch` inputs of length `input_len` (encoder–decoder models only;
    /// charged at the encode→decode handoff).
    pub fn cross_kv_projection_cost(&self, batch: usize, input_len: usize) -> KernelCost {
        if self.kind() != crate::config::ModelKind::EncoderDecoder {
            return KernelCost::default();
        }
        let tokens = (batch * input_len) as f64;
        let d = self.d_model() as f64;
        let da = self.d_attn() as f64;
        let dt = self.dtype_bytes() as f64;
        KernelCost {
            flops: 2.0 * tokens * 2.0 * d * da,
            bytes: 2.0 * d * da * dt + 3.0 * tokens * da * dt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_rest_scales_linearly_in_tokens() {
        let m = ModelConfig::opt_13b();
        let a = m.encode_rest_cost(4, 64);
        let b = m.encode_rest_cost(8, 64);
        assert!((b.flops / a.flops - 2.0).abs() < 1e-12);
    }

    #[test]
    fn encode_attention_scales_quadratically_in_seq() {
        let m = ModelConfig::opt_13b();
        let a = m.encode_attention_cost(1, 64);
        let b = m.encode_attention_cost(1, 128);
        assert!((b.flops / a.flops - 4.0).abs() < 1e-12);
    }

    #[test]
    fn decode_rest_weight_bytes_independent_of_batch() {
        let m = ModelConfig::gpt3_39b();
        let a = m.decode_rest_cost(1);
        let b = m.decode_rest_cost(64);
        // Weight streaming dominates; byte growth is far less than 64x.
        assert!(b.bytes / a.bytes < 2.0);
        // But FLOPs do scale with batch.
        assert!((b.flops / a.flops - 64.0).abs() < 1e-9);
    }

    #[test]
    fn decode_attention_reads_entire_cache() {
        let m = ModelConfig::opt_13b();
        let short = m.decode_attention_cost(LayerKind::Decoder, 8, 64, 0);
        let long = m.decode_attention_cost(LayerKind::Decoder, 8, 640, 0);
        assert!(long.bytes > 8.0 * short.bytes);
    }

    #[test]
    fn cross_attention_costs_zero_for_decoder_only() {
        let m = ModelConfig::gpt3_175b();
        assert_eq!(m.cross_projection_cost(LayerKind::Decoder, 16), KernelCost::default());
        assert_eq!(m.cross_kv_projection_cost(16, 128), KernelCost::default());
    }

    #[test]
    fn cross_attention_costs_nonzero_for_t5_decoder() {
        let m = ModelConfig::t5_11b();
        assert!(m.cross_projection_cost(LayerKind::Decoder, 16).flops > 0.0);
        assert!(
            m.decode_attention_cost(LayerKind::Decoder, 4, 10, 100).flops
                > m.decode_attention_cost(LayerKind::Decoder, 4, 10, 0).flops
        );
    }

    #[test]
    fn kernel_cost_combinators() {
        let a = KernelCost { flops: 1.0, bytes: 2.0 };
        let b = KernelCost { flops: 3.0, bytes: 4.0 };
        assert_eq!(a.and(b), KernelCost { flops: 4.0, bytes: 6.0 });
        assert_eq!(a.scaled(2.0), KernelCost { flops: 2.0, bytes: 4.0 });
    }
}
