//! Model configuration types.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Structural family of a transformer model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Encoder–decoder models such as T5/UL2: dedicated encoder layers encode
    /// the input once, decoder layers (with cross-attention) generate output.
    EncoderDecoder,
    /// Decoder-only models such as OPT/GPT-3: the same decoder layers perform
    /// both input encoding (prefill) and output decoding.
    DecoderOnly,
}

/// Role of a single transformer layer.
///
/// For [`ModelKind::DecoderOnly`] every layer is a [`LayerKind::Decoder`]; the
/// *phase* (encoding vs. decoding) is a property of the work, not the layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Encoder layer: self-attention + feed-forward.
    Encoder,
    /// Decoder layer: self-attention (+ cross-attention for encoder–decoder
    /// models) + feed-forward.
    Decoder,
}

/// Static description of a transformer model's shape.
///
/// Dimensions follow Table 1 of the paper. Two extra degrees of freedom are
/// carried explicitly because T5-11B needs them: `d_attn` (the total inner
/// dimension of the attention projections, `num_heads * head_dim`, which for
/// T5 is 16× `d_model`) and `d_ff` (the feed-forward inner dimension, 64×
/// `d_model` for T5, 4× for OPT/GPT-3).
///
/// # Example
///
/// ```
/// use exegpt_model::{ModelConfig, ModelKind};
///
/// let gpt = ModelConfig::gpt3_175b();
/// assert_eq!(gpt.kind(), ModelKind::DecoderOnly);
/// assert_eq!(gpt.num_layers(), 96);
/// assert_eq!(gpt.head_dim(), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    name: String,
    kind: ModelKind,
    num_layers: usize,
    d_model: usize,
    d_attn: usize,
    d_ff: usize,
    num_heads: usize,
    vocab_size: usize,
    max_seq_len: usize,
    dtype_bytes: usize,
}

impl ModelConfig {
    /// Creates a model configuration, validating dimensional invariants.
    ///
    /// `num_layers` is the *total* layer count as reported in Table 1 of the
    /// paper; for encoder–decoder models it is split evenly into encoders and
    /// decoders.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDimension`] if any dimension is zero, if
    /// `d_attn` is not divisible by `num_heads`, or if an encoder–decoder
    /// model has an odd `num_layers`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        kind: ModelKind,
        num_layers: usize,
        d_model: usize,
        d_attn: usize,
        d_ff: usize,
        num_heads: usize,
        vocab_size: usize,
        max_seq_len: usize,
        dtype_bytes: usize,
    ) -> Result<Self, ModelError> {
        let name = name.into();
        let dims = [
            ("num_layers", num_layers),
            ("d_model", d_model),
            ("d_attn", d_attn),
            ("d_ff", d_ff),
            ("num_heads", num_heads),
            ("vocab_size", vocab_size),
            ("max_seq_len", max_seq_len),
            ("dtype_bytes", dtype_bytes),
        ];
        for (what, v) in dims {
            if v == 0 {
                return Err(ModelError::InvalidDimension { what, why: "must be non-zero" });
            }
        }
        if !d_attn.is_multiple_of(num_heads) {
            return Err(ModelError::InvalidDimension {
                what: "d_attn",
                why: "must be divisible by num_heads",
            });
        }
        if kind == ModelKind::EncoderDecoder && !num_layers.is_multiple_of(2) {
            return Err(ModelError::InvalidDimension {
                what: "num_layers",
                why: "encoder-decoder models need an even total layer count",
            });
        }
        Ok(Self {
            name,
            kind,
            num_layers,
            d_model,
            d_attn,
            d_ff,
            num_heads,
            vocab_size,
            max_seq_len,
            dtype_bytes,
        })
    }

    /// Human-readable model name, e.g. `"GPT-3 175B"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Structural family.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Total number of transformer layers (encoders + decoders).
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Number of encoder layers (0 for decoder-only models).
    pub fn num_encoder_layers(&self) -> usize {
        match self.kind {
            ModelKind::EncoderDecoder => self.num_layers / 2,
            ModelKind::DecoderOnly => 0,
        }
    }

    /// Number of decoder layers.
    ///
    /// For decoder-only models this is all layers; they also perform the
    /// encoding (prefill) phase.
    pub fn num_decoder_layers(&self) -> usize {
        match self.kind {
            ModelKind::EncoderDecoder => self.num_layers / 2,
            ModelKind::DecoderOnly => self.num_layers,
        }
    }

    /// Hidden (residual-stream) dimension.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Total attention projection dimension (`num_heads * head_dim`).
    pub fn d_attn(&self) -> usize {
        self.d_attn
    }

    /// Feed-forward inner dimension.
    pub fn d_ff(&self) -> usize {
        self.d_ff
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Per-head dimension (`d_attn / num_heads`).
    pub fn head_dim(&self) -> usize {
        self.d_attn / self.num_heads
    }

    /// Vocabulary size used for embedding/unembedding accounting.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Maximum supported total sequence length (input + output).
    pub fn max_seq_len(&self) -> usize {
        self.max_seq_len
    }

    /// Bytes per parameter/activation element (2 for FP16).
    pub fn dtype_bytes(&self) -> usize {
        self.dtype_bytes
    }

    /// Whether a layer of the given kind carries a cross-attention block.
    ///
    /// Only decoder layers of encoder–decoder models do.
    pub fn has_cross_attention(&self, layer: LayerKind) -> bool {
        self.kind == ModelKind::EncoderDecoder && layer == LayerKind::Decoder
    }

    /// Parameter count of a single layer of the given kind.
    ///
    /// Attention projections contribute `4 * d_model * d_attn` (Q, K, V, O),
    /// cross-attention (when present) another `4 * d_model * d_attn`, and the
    /// feed-forward block `2 * d_model * d_ff`. Layer norms and biases are
    /// counted (`~4 * d_model`) for completeness though they are negligible.
    pub fn layer_param_count(&self, layer: LayerKind) -> u64 {
        let d = self.d_model as u64;
        let da = self.d_attn as u64;
        let dff = self.d_ff as u64;
        let attn = 4 * d * da;
        let cross = if self.has_cross_attention(layer) { 4 * d * da } else { 0 };
        let ffn = 2 * d * dff;
        let norms = 4 * d;
        attn + cross + ffn + norms
    }

    /// Total parameter count, including the (un)embedding matrix.
    pub fn param_count(&self) -> u64 {
        let enc = self.num_encoder_layers() as u64 * self.layer_param_count(LayerKind::Encoder);
        let dec = self.num_decoder_layers() as u64 * self.layer_param_count(LayerKind::Decoder);
        let embed = self.vocab_size as u64 * self.d_model as u64;
        enc + dec + embed
    }

    /// Total parameter bytes in the configured precision.
    pub fn param_bytes(&self) -> u64 {
        self.param_count() * self.dtype_bytes as u64
    }

    /// Iterator over all layer kinds in execution order (encoders first).
    pub fn layers(&self) -> impl Iterator<Item = LayerKind> + '_ {
        let enc = self.num_encoder_layers();
        let dec = self.num_decoder_layers();
        std::iter::repeat_n(LayerKind::Encoder, enc)
            .chain(std::iter::repeat_n(LayerKind::Decoder, dec))
    }
}

impl std::fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dimensions() {
        let err = ModelConfig::new("x", ModelKind::DecoderOnly, 0, 1, 1, 1, 1, 1, 1, 1)
            .expect_err("zero layers must be rejected");
        assert!(matches!(err, ModelError::InvalidDimension { what: "num_layers", .. }));
    }

    #[test]
    fn rejects_indivisible_heads() {
        let err = ModelConfig::new("x", ModelKind::DecoderOnly, 2, 8, 10, 32, 3, 100, 64, 2)
            .expect_err("d_attn % heads != 0 must be rejected");
        assert!(matches!(err, ModelError::InvalidDimension { what: "d_attn", .. }));
    }

    #[test]
    fn rejects_odd_encoder_decoder_layers() {
        let err = ModelConfig::new("x", ModelKind::EncoderDecoder, 3, 8, 8, 32, 2, 100, 64, 2)
            .expect_err("odd layer count must be rejected for enc-dec");
        assert!(matches!(err, ModelError::InvalidDimension { what: "num_layers", .. }));
    }

    #[test]
    fn encoder_decoder_split_is_even() {
        let m = ModelConfig::t5_11b();
        assert_eq!(m.num_encoder_layers(), 24);
        assert_eq!(m.num_decoder_layers(), 24);
        assert_eq!(m.num_layers(), 48);
    }

    #[test]
    fn decoder_only_has_no_encoders() {
        let m = ModelConfig::opt_13b();
        assert_eq!(m.num_encoder_layers(), 0);
        assert_eq!(m.num_decoder_layers(), m.num_layers());
    }

    #[test]
    fn cross_attention_only_in_enc_dec_decoders() {
        let t5 = ModelConfig::t5_11b();
        assert!(t5.has_cross_attention(LayerKind::Decoder));
        assert!(!t5.has_cross_attention(LayerKind::Encoder));
        let opt = ModelConfig::opt_13b();
        assert!(!opt.has_cross_attention(LayerKind::Decoder));
    }

    #[test]
    fn layers_iterator_orders_encoders_first() {
        let t5 = ModelConfig::t5_11b();
        let layers: Vec<_> = t5.layers().collect();
        assert_eq!(layers.len(), 48);
        assert!(layers[..24].iter().all(|&l| l == LayerKind::Encoder));
        assert!(layers[24..].iter().all(|&l| l == LayerKind::Decoder));
    }

    #[test]
    fn display_matches_name() {
        let m = ModelConfig::gpt3_39b();
        assert_eq!(m.to_string(), m.name());
    }
}
