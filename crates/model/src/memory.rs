//! Memory accounting: parameters, key/value caches, activations.
//!
//! The WAA-M allocation policy (§4.1) and the memory-overhead evaluation
//! (Figure 9) are driven entirely by these quantities.

use serde::{Deserialize, Serialize};

use crate::config::{LayerKind, ModelConfig};

/// A breakdown of device-memory consumption in bytes.
///
/// # Example
///
/// ```
/// use exegpt_model::MemoryFootprint;
///
/// let fp = MemoryFootprint { param_bytes: 10, kv_bytes: 5, activation_bytes: 1 };
/// assert_eq!(fp.total(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Bytes held by model parameters.
    pub param_bytes: u64,
    /// Bytes held by key/value caches.
    pub kv_bytes: u64,
    /// Bytes held by transient activations.
    pub activation_bytes: u64,
}

impl MemoryFootprint {
    /// Total bytes across all categories.
    pub fn total(&self) -> u64 {
        self.param_bytes + self.kv_bytes + self.activation_bytes
    }

    /// Component-wise sum of two footprints.
    pub fn and(self, other: MemoryFootprint) -> MemoryFootprint {
        MemoryFootprint {
            param_bytes: self.param_bytes + other.param_bytes,
            kv_bytes: self.kv_bytes + other.kv_bytes,
            activation_bytes: self.activation_bytes + other.activation_bytes,
        }
    }
}

impl ModelConfig {
    /// Self-attention KV-cache bytes per token, per layer (`2 · d_attn ·
    /// dtype_bytes` — one key and one value vector).
    pub fn kv_bytes_per_token_per_layer(&self) -> u64 {
        2 * self.d_attn() as u64 * self.dtype_bytes() as u64
    }

    /// Self-attention KV-cache bytes for `batch` queries with `ctx` cached
    /// tokens each, across `layers` layers.
    pub fn kv_cache_bytes(&self, batch: usize, ctx: usize, layers: usize) -> u64 {
        self.kv_bytes_per_token_per_layer() * batch as u64 * ctx as u64 * layers as u64
    }

    /// Cross-attention KV-cache bytes for `batch` inputs of `input_len`
    /// tokens across `layers` decoder layers (encoder–decoder models only;
    /// returns 0 otherwise).
    pub fn cross_kv_cache_bytes(&self, batch: usize, input_len: usize, layers: usize) -> u64 {
        if self.has_cross_attention(LayerKind::Decoder) {
            self.kv_bytes_per_token_per_layer() * batch as u64 * input_len as u64 * layers as u64
        } else {
            0
        }
    }

    /// Parameter bytes of a contiguous run of `layers` layers of one kind.
    pub fn layer_run_param_bytes(&self, layer: LayerKind, layers: usize) -> u64 {
        self.layer_param_count(layer) * layers as u64 * self.dtype_bytes() as u64
    }

    /// Peak transient activation bytes for a micro-batch of `batch` sequences
    /// of length `seq` flowing through one layer (residual stream + the
    /// feed-forward inner activation, double-buffered).
    pub fn activation_bytes(&self, batch: usize, seq: usize) -> u64 {
        let tokens = batch as u64 * seq as u64;
        let dt = self.dtype_bytes() as u64;
        tokens * (2 * self.d_model() as u64 + self.d_ff() as u64) * dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_cache_scales_with_everything() {
        let m = ModelConfig::opt_13b();
        let base = m.kv_cache_bytes(1, 1, 1);
        assert_eq!(base, 2 * 5120 * 2);
        assert_eq!(m.kv_cache_bytes(4, 3, 2), base * 24);
    }

    #[test]
    fn cross_kv_zero_for_decoder_only() {
        let m = ModelConfig::gpt3_101b();
        assert_eq!(m.cross_kv_cache_bytes(8, 128, 40), 0);
        let t5 = ModelConfig::t5_11b();
        assert!(t5.cross_kv_cache_bytes(8, 128, 24) > 0);
    }

    #[test]
    fn footprint_total_and_sum() {
        let a = MemoryFootprint { param_bytes: 1, kv_bytes: 2, activation_bytes: 3 };
        let b = MemoryFootprint { param_bytes: 10, kv_bytes: 20, activation_bytes: 30 };
        assert_eq!(a.total(), 6);
        assert_eq!(a.and(b).total(), 66);
    }

    #[test]
    fn param_bytes_match_fp16() {
        let m = ModelConfig::gpt3_175b();
        assert_eq!(m.param_bytes(), m.param_count() * 2);
    }
}
