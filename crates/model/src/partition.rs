//! Layer partitioning across pipeline stages.
//!
//! Both ExeGPT's allocation policies (§4.1) and the FasterTransformer
//! baseline partition a model's layers into contiguous runs, one per pipeline
//! stage. This module provides the (validated) partition type they share.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// A half-open range `[start, end)` of layer indices owned by one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerRange {
    /// First layer index (inclusive).
    pub start: usize,
    /// One past the last layer index.
    pub end: usize,
}

impl LayerRange {
    /// Number of layers in the range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range contains no layers.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A partition of `num_layers` contiguous layers into pipeline stages.
///
/// Invariants (enforced at construction): stages are contiguous, cover
/// exactly `[0, num_layers)`, and each stage is non-empty.
///
/// # Example
///
/// ```
/// use exegpt_model::Partition;
///
/// let p = Partition::even(10, 4)?;
/// assert_eq!(p.num_stages(), 4);
/// assert_eq!(p.stage(0).len() + p.stage(1).len() + p.stage(2).len() + p.stage(3).len(), 10);
/// # Ok::<(), exegpt_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    stages: Vec<LayerRange>,
}

impl Partition {
    /// Builds a partition from explicit per-stage layer counts.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPartition`] if any count is zero or the
    /// counts do not sum to `num_layers`.
    pub fn from_counts(num_layers: usize, counts: &[usize]) -> Result<Self, ModelError> {
        if counts.is_empty() {
            return Err(ModelError::InvalidPartition {
                why: "at least one stage is required".to_string(),
            });
        }
        if counts.contains(&0) {
            return Err(ModelError::InvalidPartition {
                why: "every stage must own at least one layer".to_string(),
            });
        }
        let total: usize = counts.iter().sum();
        if total != num_layers {
            return Err(ModelError::InvalidPartition {
                why: format!("stage counts sum to {total}, expected {num_layers}"),
            });
        }
        let mut stages = Vec::with_capacity(counts.len());
        let mut start = 0;
        for &c in counts {
            stages.push(LayerRange { start, end: start + c });
            start += c;
        }
        Ok(Self { stages })
    }

    /// Splits `num_layers` as evenly as possible into `num_stages` contiguous
    /// runs; earlier stages receive the remainder (as FasterTransformer does).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPartition`] if `num_stages` is zero or
    /// exceeds `num_layers`.
    pub fn even(num_layers: usize, num_stages: usize) -> Result<Self, ModelError> {
        if num_stages == 0 || num_stages > num_layers {
            return Err(ModelError::InvalidPartition {
                why: format!("cannot split {num_layers} layers into {num_stages} stages"),
            });
        }
        let base = num_layers / num_stages;
        let rem = num_layers % num_stages;
        let counts: Vec<usize> = (0..num_stages).map(|i| base + usize::from(i < rem)).collect();
        Self::from_counts(num_layers, &counts)
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Layer range owned by stage `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_stages()`.
    pub fn stage(&self, i: usize) -> LayerRange {
        self.stages[i]
    }

    /// Iterator over all stage ranges in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = LayerRange> + '_ {
        self.stages.iter().copied()
    }

    /// The largest per-stage layer count (pipeline bottleneck depth).
    pub fn max_stage_len(&self) -> usize {
        self.stages.iter().map(LayerRange::len).max().unwrap_or(0)
    }

    /// Total number of layers covered.
    pub fn num_layers(&self) -> usize {
        self.stages.last().map_or(0, |r| r.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_covers_all_layers() {
        let p = Partition::even(48, 8).expect("valid partition");
        assert_eq!(p.num_stages(), 8);
        assert_eq!(p.num_layers(), 48);
        assert!(p.iter().all(|r| r.len() == 6));
    }

    #[test]
    fn even_partition_distributes_remainder_to_front() {
        let p = Partition::even(10, 4).expect("valid partition");
        let lens: Vec<_> = p.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        // contiguity
        assert_eq!(p.stage(0).end, p.stage(1).start);
    }

    #[test]
    fn rejects_more_stages_than_layers() {
        assert!(Partition::even(3, 4).is_err());
        assert!(Partition::even(3, 0).is_err());
    }

    #[test]
    fn from_counts_validates_sum_and_zeroes() {
        assert!(Partition::from_counts(5, &[2, 2]).is_err());
        assert!(Partition::from_counts(4, &[4, 0]).is_err());
        assert!(Partition::from_counts(4, &[]).is_err());
        let p = Partition::from_counts(5, &[1, 4]).expect("valid");
        assert_eq!(p.stage(1), LayerRange { start: 1, end: 5 });
    }

    #[test]
    fn max_stage_len_reports_bottleneck() {
        let p = Partition::from_counts(7, &[1, 5, 1]).expect("valid");
        assert_eq!(p.max_stage_len(), 5);
    }
}
