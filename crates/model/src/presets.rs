//! The six LLM instances evaluated in the paper (Table 1).

use crate::config::{ModelConfig, ModelKind};

/// Default vocabulary size used for embedding accounting (GPT-2 BPE family).
const GPT_VOCAB: usize = 50_272;
/// T5 SentencePiece vocabulary size.
const T5_VOCAB: usize = 32_128;
/// FP16 element width.
const FP16: usize = 2;

impl ModelConfig {
    /// T5 11B: encoder–decoder, 48 layers (24 + 24), `d_model` 1024,
    /// 128 heads with `d_kv` 128 (so `d_attn` 16384) and `d_ff` 65536.
    pub fn t5_11b() -> Self {
        Self::new(
            "T5 11B",
            ModelKind::EncoderDecoder,
            48,
            1024,
            16_384,
            65_536,
            128,
            T5_VOCAB,
            2048,
            FP16,
        )
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        .expect("preset dimensions are valid")
    }

    /// UL2 20B: encoder-decoder, 64 layers (32 + 32), `d_model` 4096,
    /// 16 heads with `d_kv` 256 — the other encoder-decoder family the
    /// paper names alongside T5 (§2, §7.1).
    ///
    /// UL2's feed-forward is a gated GLU of width 16384 (three weight
    /// matrices); this two-matrix description uses the cost-equivalent
    /// `d_ff` 24576, which the paper's FLOPs-equivalence note (citing
    /// Shazeer's GLU work) licenses.
    pub fn ul2_20b() -> Self {
        Self::new(
            "UL2 20B",
            ModelKind::EncoderDecoder,
            64,
            4096,
            4096,
            24_576,
            16,
            T5_VOCAB,
            2048,
            FP16,
        )
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        .expect("preset dimensions are valid")
    }

    /// OPT 13B: decoder-only, 40 layers, hidden 5120, 40 heads.
    pub fn opt_13b() -> Self {
        Self::decoder_only_preset("OPT 13B", 40, 5120, 40)
    }

    /// GPT-3 39B: decoder-only, 48 layers, hidden 8192, 64 heads.
    pub fn gpt3_39b() -> Self {
        Self::decoder_only_preset("GPT-3 39B", 48, 8192, 64)
    }

    /// GPT-3 101B: decoder-only, 80 layers, hidden 10240, 80 heads.
    pub fn gpt3_101b() -> Self {
        Self::decoder_only_preset("GPT-3 101B", 80, 10_240, 80)
    }

    /// GPT-3 175B: decoder-only, 96 layers, hidden 12288, 96 heads.
    pub fn gpt3_175b() -> Self {
        Self::decoder_only_preset("GPT-3 175B", 96, 12_288, 96)
    }

    /// GPT-3 341B: decoder-only, 120 layers, hidden 15360, 120 heads.
    pub fn gpt3_341b() -> Self {
        Self::decoder_only_preset("GPT-3 341B", 120, 15_360, 120)
    }

    /// All six paper models in Table 1 order.
    pub fn paper_models() -> Vec<Self> {
        vec![
            Self::t5_11b(),
            Self::opt_13b(),
            Self::gpt3_39b(),
            Self::gpt3_101b(),
            Self::gpt3_175b(),
            Self::gpt3_341b(),
        ]
    }

    fn decoder_only_preset(name: &str, layers: usize, hidden: usize, heads: usize) -> Self {
        Self::new(
            name,
            ModelKind::DecoderOnly,
            layers,
            hidden,
            hidden,
            4 * hidden,
            heads,
            GPT_VOCAB,
            4096,
            FP16,
        )
        // xlint::allow(P1, preset arguments are compile-time constants covered by unit tests)
        .expect("preset dimensions are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each preset's parameter count must land near its nameplate size.
    #[test]
    fn preset_param_counts_match_nameplate() {
        let cases = [
            (ModelConfig::ul2_20b(), 19.5),
            (ModelConfig::t5_11b(), 11.0),
            (ModelConfig::opt_13b(), 13.0),
            (ModelConfig::gpt3_39b(), 39.0),
            (ModelConfig::gpt3_101b(), 101.0),
            (ModelConfig::gpt3_175b(), 175.0),
            (ModelConfig::gpt3_341b(), 341.0),
        ];
        for (m, nameplate) in cases {
            let b = m.param_count() as f64 / 1e9;
            assert!(
                (b - nameplate).abs() / nameplate < 0.08,
                "{}: computed {b:.1}B vs nameplate {nameplate}B",
                m.name()
            );
        }
    }

    #[test]
    fn paper_models_are_all_distinct() {
        let models = ModelConfig::paper_models();
        assert_eq!(models.len(), 6);
        for (i, a) in models.iter().enumerate() {
            for b in &models[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn head_dims_are_consistent() {
        for m in ModelConfig::paper_models() {
            assert_eq!(m.head_dim() * m.num_heads(), m.d_attn());
        }
    }
}
