//! Error types for the model crate.

/// Errors produced when constructing or partitioning models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A structural dimension was invalid.
    InvalidDimension {
        /// Which dimension was rejected.
        what: &'static str,
        /// Why it was rejected.
        why: &'static str,
    },
    /// A partition request could not be satisfied.
    InvalidPartition {
        /// Human-readable description of the violated requirement.
        why: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidDimension { what, why } => {
                write!(f, "invalid model dimension `{what}`: {why}")
            }
            ModelError::InvalidPartition { why } => write!(f, "invalid partition: {why}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = ModelError::InvalidDimension { what: "d_model", why: "must be non-zero" };
        let s = e.to_string();
        assert!(s.starts_with("invalid model dimension"));
        assert!(s.contains("d_model"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
