//! Property-based invariants of workload generation.

use exegpt_workload::{
    multi_tenant_trace, ArrivalProcess, Dataset, PoissonStream, RequestStream, Task, TenantSpec,
};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = Task> {
    prop_oneof![
        Just(Task::Summarization),
        Just(Task::Translation),
        Just(Task::CodeGeneration),
        Just(Task::ConversationalQa1),
        Just(Task::ConversationalQa2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sampled request respects its task's Table 3 maxima, and ids
    /// are dense.
    #[test]
    fn requests_respect_task_bounds(task in arb_task(), seed in any::<u64>()) {
        let w = task.workload().expect("valid");
        let (_, _, in_max) = task.input_stats();
        let (_, _, out_max) = task.output_stats();
        for (i, r) in RequestStream::new(&w, seed).take(64).enumerate() {
            prop_assert_eq!(r.id, i as u64);
            prop_assert!(r.input_len >= 1 && r.input_len <= in_max);
            prop_assert!(r.output_len >= 1 && r.output_len <= out_max);
        }
    }

    /// Poisson arrivals are strictly ordered in time with positive gaps.
    #[test]
    fn poisson_arrivals_are_ordered(
        task in arb_task(),
        rate in 0.5f64..200.0,
        seed in any::<u64>(),
    ) {
        let w = task.workload().expect("valid");
        let reqs: Vec<_> = PoissonStream::new(&w, rate, seed).take(64).collect();
        prop_assert!(reqs[0].arrival > 0.0);
        for pair in reqs.windows(2) {
            prop_assert!(pair[1].arrival > pair[0].arrival);
        }
    }

    /// Dataset splits partition the pairs exactly and preserve order.
    #[test]
    fn dataset_split_partitions(size in 10usize..500, frac in 0.05f64..0.95, seed in any::<u64>()) {
        let d = Dataset::alpaca(size, seed);
        let (a, b) = d.split(frac);
        prop_assert_eq!(a.len() + b.len(), size);
        let rejoined: Vec<_> = a.pairs().iter().chain(b.pairs()).copied().collect();
        prop_assert_eq!(rejoined, d.pairs().to_vec());
    }

    /// Multi-tenant merging conserves requests: the trace has exactly the
    /// requested length with dense global ids, arrivals are sorted, every
    /// request belongs to a declared tenant, and no tenant vanishes from a
    /// trace long enough to statistically include everyone.
    #[test]
    fn multi_tenant_trace_conserves_requests(
        task in arb_task(),
        n_tenants in 1u32..6,
        total in 50usize..400,
        seed in any::<u64>(),
    ) {
        let w = task.workload().expect("valid");
        let tenants: Vec<TenantSpec> = (0..n_tenants)
            .map(|t| TenantSpec {
                tenant: t,
                class: t % 2,
                process: ArrivalProcess::Poisson { rate_qps: 2.0 + f64::from(t) },
            })
            .collect();
        let trace = multi_tenant_trace(&w, &tenants, total, seed);
        prop_assert_eq!(trace.len(), total);
        for (i, r) in trace.iter().enumerate() {
            prop_assert_eq!(r.request.request.id, i as u64);
            prop_assert!(tenants.iter().any(|s| s.tenant == r.tenant && s.class == r.class));
        }
        for pair in trace.windows(2) {
            prop_assert!(pair[0].request.arrival <= pair[1].request.arrival);
        }
        // Per-tenant conservation: counts sum to the total (no request is
        // attributed to two tenants, none is dropped).
        let split: usize = tenants
            .iter()
            .map(|s| trace.iter().filter(|r| r.tenant == s.tenant).count())
            .sum();
        prop_assert_eq!(split, total);
        // And the trace is reproducible.
        prop_assert_eq!(&trace, &multi_tenant_trace(&w, &tenants, total, seed));
    }

    /// Estimated workloads reproduce the sample means of their dataset.
    #[test]
    fn estimated_workload_matches_means(size in 50usize..400, seed in any::<u64>()) {
        let d = Dataset::wmt(size, seed);
        let w = d.estimate_workload().expect("non-empty");
        let mean_in: f64 =
            d.pairs().iter().map(|p| p.0 as f64).sum::<f64>() / size as f64;
        let mean_out: f64 =
            d.pairs().iter().map(|p| p.1 as f64).sum::<f64>() / size as f64;
        prop_assert!((w.input().mean() - mean_in).abs() < 1e-9);
        prop_assert!((w.output().mean() - mean_out).abs() < 1e-9);
    }
}
