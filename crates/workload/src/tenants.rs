//! Deterministic multi-tenant arrival traces for fleet-scale serving.
//!
//! A fleet serves many *tenants* at once — each with its own arrival
//! process and SLO class — merged into a single global stream that a
//! router dispatches across replicas. [`multi_tenant_trace`] builds that
//! stream: every tenant gets an independent, deterministically seeded
//! stream ([`PoissonStream`] or [`BurstyStream`] per its
//! [`ArrivalProcess`]), the per-tenant streams are k-way merged on
//! `(arrival, tenant)`, and request ids are reassigned globally in merge
//! order — so each tenant's subsequence is exactly the prefix of its
//! standalone stream (arrival times and lengths), and the merged trace is
//! byte-reproducible for a fixed base seed.

use exegpt_sim::Workload;

use crate::requests::{BurstyStream, PoissonStream, TimedRequest};

/// The arrival process of one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate (queries/second).
    Poisson {
        /// Mean arrival rate in queries per second.
        rate_qps: f64,
    },
    /// Two-state Markov-modulated Poisson arrivals (MMPP-2): bursts at
    /// `rate_burst` qps with mean dwell `dwell_burst` seconds, alternating
    /// with lulls at `rate_lull` qps of mean dwell `dwell_lull`.
    Bursty {
        /// Arrival rate during bursts (queries/second).
        rate_burst: f64,
        /// Arrival rate during lulls (queries/second, may be zero).
        rate_lull: f64,
        /// Mean burst length in seconds.
        dwell_burst: f64,
        /// Mean lull length in seconds.
        dwell_lull: f64,
    },
}

impl ArrivalProcess {
    /// The process's long-run mean rate in queries/second.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } => rate_qps,
            ArrivalProcess::Bursty { rate_burst, rate_lull, dwell_burst, dwell_lull } => {
                (rate_burst * dwell_burst + rate_lull * dwell_lull) / (dwell_burst + dwell_lull)
            }
        }
    }
}

/// One tenant's traffic contract: identity, SLO class, and arrival
/// process. Request lengths come from the workload shared by the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSpec {
    /// Tenant id (unique within a trace).
    pub tenant: u32,
    /// Index into the fleet's SLO-class table.
    pub class: u32,
    /// The tenant's arrival process.
    pub process: ArrivalProcess,
}

/// A request tagged with its originating tenant and SLO class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRequest {
    /// Originating tenant.
    pub tenant: u32,
    /// The tenant's SLO-class index.
    pub class: u32,
    /// The request and its arrival time.
    pub request: TimedRequest,
}

/// Derives tenant `t`'s stream seed from the trace's base seed: distinct
/// per tenant, deterministic, and decoupled from neighbouring tenants by a
/// full multiplicative mix rather than an additive offset.
fn tenant_seed(base: u64, tenant: u32) -> u64 {
    base ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(tenant) + 1)
}

/// Builds a deterministic multi-tenant trace of `total` requests over
/// `workload`: each tenant's arrivals are sampled from its own seeded
/// stream, merged on `(arrival, tenant)`, with global request ids
/// reassigned `0..total` in merge order.
///
/// # Panics
///
/// Panics if `tenants` is empty, tenant ids repeat, or a tenant's process
/// parameters are invalid (same contracts as [`PoissonStream::new`] /
/// [`BurstyStream::new`]).
pub fn multi_tenant_trace(
    workload: &Workload,
    tenants: &[TenantSpec],
    total: usize,
    seed: u64,
) -> Vec<TenantRequest> {
    assert!(!tenants.is_empty(), "at least one tenant is required");
    for (i, a) in tenants.iter().enumerate() {
        assert!(
            tenants[..i].iter().all(|b| b.tenant != a.tenant),
            "duplicate tenant id {}",
            a.tenant
        );
    }
    // Each tenant holds the head of its stream; every merge round takes
    // the earliest head (ties broken by tenant id) and refills it. With a
    // handful of tenants a linear scan beats a heap and keeps the
    // tie-break explicit.
    enum Src {
        Poisson(PoissonStream),
        Bursty(BurstyStream),
    }
    impl Src {
        fn next(&mut self) -> TimedRequest {
            // Both streams are infinite, so the head always refills.
            let head = match self {
                Src::Poisson(s) => s.next(),
                Src::Bursty(s) => s.next(),
            };
            match head {
                Some(r) => r,
                None => unreachable!("arrival streams are infinite"),
            }
        }
    }
    let mut heads: Vec<(TenantSpec, TimedRequest, Src)> = tenants
        .iter()
        .map(|spec| {
            let s = tenant_seed(seed, spec.tenant);
            let mut src = match spec.process {
                ArrivalProcess::Poisson { rate_qps } => {
                    Src::Poisson(PoissonStream::new(workload, rate_qps, s))
                }
                ArrivalProcess::Bursty { rate_burst, rate_lull, dwell_burst, dwell_lull } => {
                    Src::Bursty(BurstyStream::new(
                        workload,
                        rate_burst,
                        rate_lull,
                        dwell_burst,
                        dwell_lull,
                        s,
                    ))
                }
            };
            let head = src.next();
            (*spec, head, src)
        })
        .collect();
    let mut out = Vec::with_capacity(total);
    for id in 0..total as u64 {
        let mut best = 0usize;
        for i in 1..heads.len() {
            let (a, b) = (&heads[i].1, &heads[best].1);
            let earlier = match a.arrival.total_cmp(&b.arrival) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => heads[i].0.tenant < heads[best].0.tenant,
                std::cmp::Ordering::Greater => false,
            };
            if earlier {
                best = i;
            }
        }
        let (spec, head, src) = &mut heads[best];
        let mut request = *head;
        request.request.id = id;
        out.push(TenantRequest { tenant: spec.tenant, class: spec.class, request });
        *head = src.next();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::Task;

    fn specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec { tenant: 0, class: 0, process: ArrivalProcess::Poisson { rate_qps: 8.0 } },
            TenantSpec { tenant: 1, class: 1, process: ArrivalProcess::Poisson { rate_qps: 3.0 } },
            TenantSpec {
                tenant: 2,
                class: 0,
                process: ArrivalProcess::Bursty {
                    rate_burst: 20.0,
                    rate_lull: 2.0,
                    dwell_burst: 4.0,
                    dwell_lull: 12.0,
                },
            },
        ]
    }

    #[test]
    fn trace_is_sorted_with_sequential_ids() {
        let w = Task::Translation.workload().expect("valid");
        let trace = multi_tenant_trace(&w, &specs(), 2000, 7);
        assert_eq!(trace.len(), 2000);
        assert!(trace.windows(2).all(|p| p[0].request.arrival <= p[1].request.arrival));
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.request.request.id, i as u64);
        }
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let w = Task::Translation.workload().expect("valid");
        let a = multi_tenant_trace(&w, &specs(), 1000, 7);
        let b = multi_tenant_trace(&w, &specs(), 1000, 7);
        let c = multi_tenant_trace(&w, &specs(), 1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn per_tenant_subsequence_matches_the_standalone_stream() {
        let w = Task::Translation.workload().expect("valid");
        let trace = multi_tenant_trace(&w, &specs(), 3000, 42);
        let tenant1: Vec<_> = trace.iter().filter(|r| r.tenant == 1).map(|r| r.request).collect();
        let standalone: Vec<_> =
            PoissonStream::new(&w, 3.0, tenant_seed(42, 1)).take(tenant1.len()).collect();
        for (merged, solo) in tenant1.iter().zip(&standalone) {
            assert_eq!(merged.arrival, solo.arrival);
            assert_eq!(merged.request.input_len, solo.request.input_len);
            assert_eq!(merged.request.output_len, solo.request.output_len);
        }
    }

    #[test]
    fn tenant_mix_tracks_the_mean_rates() {
        let w = Task::Translation.workload().expect("valid");
        let trace = multi_tenant_trace(&w, &specs(), 20_000, 9);
        let total_rate: f64 = specs().iter().map(|s| s.process.mean_rate()).sum();
        for spec in specs() {
            let n = trace.iter().filter(|r| r.tenant == spec.tenant).count();
            let expected = spec.process.mean_rate() / total_rate;
            let observed = n as f64 / trace.len() as f64;
            assert!(
                (observed - expected).abs() < 0.03,
                "tenant {}: share {observed} vs expected {expected}",
                spec.tenant
            );
        }
    }

    #[test]
    #[should_panic(expected = "duplicate tenant id")]
    fn duplicate_tenant_ids_are_rejected() {
        let w = Task::Translation.workload().expect("valid");
        let dup = vec![
            TenantSpec { tenant: 3, class: 0, process: ArrivalProcess::Poisson { rate_qps: 1.0 } },
            TenantSpec { tenant: 3, class: 1, process: ArrivalProcess::Poisson { rate_qps: 2.0 } },
        ];
        let _ = multi_tenant_trace(&w, &dup, 10, 1);
    }
}
