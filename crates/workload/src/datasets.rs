//! Surrogate real-world datasets (paper §7.5, Figure 10).
//!
//! The paper evaluates on WMT-16 (translation), Stanford Alpaca
//! (conversational Q/A), and CNN/DailyMail (summarization). Only the
//! datasets' *sequence lengths* reach the systems under test (generation is
//! forced to the dataset's lengths), so we synthesize surrogate length
//! pairs reproducing the statistics the paper relies on:
//!
//! * the per-task means/spreads (comparable to Table 3's families),
//! * the *long right tail* of real outputs — the paper attributes ExeGPT's
//!   larger real-world wins to exactly this tail (§7.5) — modeled as a
//!   truncated-normal body mixed with a Pareto tail,
//! * the input↔output length correlation: high for translation (0.57–0.94),
//!   low (0.08–0.21) elsewhere (§7.1).

use exegpt_dist::{stats, DistError, LengthDist};
use exegpt_sim::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A surrogate real-world dataset: paired (input, output) lengths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    pairs: Vec<(usize, usize)>,
}

/// Parameters of one surrogate generator.
struct Shape {
    name: &'static str,
    input_mean: f64,
    input_std: f64,
    input_max: usize,
    output_mean: f64,
    output_std: f64,
    output_max: usize,
    /// Fraction of outputs drawn from the Pareto tail.
    tail_frac: f64,
    /// Pareto shape (smaller = heavier tail).
    tail_alpha: f64,
    /// Target input↔output correlation.
    correlation: f64,
}

impl Dataset {
    /// WMT-16 English→German translation surrogate: symmetric lengths,
    /// strong input↔output correlation, mild tail.
    pub fn wmt(size: usize, seed: u64) -> Self {
        Self::synthesize(
            &Shape {
                name: "WMT",
                input_mean: 110.0,
                input_std: 60.0,
                input_max: 384,
                output_mean: 118.0,
                output_std: 62.0,
                output_max: 420,
                tail_frac: 0.02,
                tail_alpha: 3.0,
                correlation: 0.85,
            },
            size,
            seed,
        )
    }

    /// Stanford Alpaca conversational surrogate: short prompts, long-tailed
    /// responses, low correlation.
    pub fn alpaca(size: usize, seed: u64) -> Self {
        Self::synthesize(
            &Shape {
                name: "Alpaca",
                input_mean: 48.0,
                input_std: 30.0,
                input_max: 256,
                output_mean: 160.0,
                output_std: 90.0,
                output_max: 1024,
                tail_frac: 0.08,
                tail_alpha: 1.8,
                correlation: 0.15,
            },
            size,
            seed,
        )
    }

    /// CNN/DailyMail summarization surrogate: long articles, short
    /// highlights with a moderate tail, low correlation.
    pub fn cnn_dailymail(size: usize, seed: u64) -> Self {
        Self::synthesize(
            &Shape {
                name: "CNN",
                input_mean: 680.0,
                input_std: 280.0,
                input_max: 2048,
                output_mean: 56.0,
                output_std: 22.0,
                output_max: 320,
                tail_frac: 0.05,
                tail_alpha: 2.2,
                correlation: 0.12,
            },
            size,
            seed,
        )
    }

    fn synthesize(shape: &Shape, size: usize, seed: u64) -> Self {
        assert!(size > 0, "dataset must have at least one pair");
        let mut rng = StdRng::seed_from_u64(seed);
        let input =
            LengthDist::truncated_normal(shape.input_mean, shape.input_std, shape.input_max)
                // xlint::allow(P1, surrogate Shape presets are compile-time constants)
                .expect("surrogate shape parameters are valid");
        let body =
            LengthDist::truncated_normal(shape.output_mean, shape.output_std, shape.output_max)
                // xlint::allow(P1, surrogate Shape presets are compile-time constants)
                .expect("surrogate shape parameters are valid");
        let mut pairs = Vec::with_capacity(size);
        for _ in 0..size {
            let u_shared = rng.gen::<f64>();
            let u_in = correlate(u_shared, rng.gen::<f64>(), shape.correlation);
            let u_out = correlate(u_shared, rng.gen::<f64>(), shape.correlation);
            let input_len = input.quantile(u_in);
            let output_len = if rng.gen::<f64>() < shape.tail_frac {
                // Pareto tail anchored at the body's 90th percentile.
                let anchor = body.quantile(0.90) as f64;
                let draw = anchor * (1.0 - rng.gen::<f64>()).powf(-1.0 / shape.tail_alpha);
                (draw as usize).min(shape.output_max)
            } else {
                body.quantile(u_out)
            };
            pairs.push((input_len.max(1), output_len.max(1)));
        }
        Self { name: shape.name.to_string(), pairs }
    }

    /// Dataset name (`WMT`, `Alpaca`, `CNN`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The (input, output) length pairs.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the dataset is empty (never true for the surrogates).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Pearson correlation between input and output lengths.
    pub fn correlation(&self) -> f64 {
        let x: Vec<f64> = self.pairs.iter().map(|p| p.0 as f64).collect();
        let y: Vec<f64> = self.pairs.iter().map(|p| p.1 as f64).collect();
        stats::pearson(&x, &y).unwrap_or(0.0)
    }

    /// Splits into an estimation set and an evaluation set, as the paper
    /// does (10% to estimate the distribution, 90% to evaluate, §7.5).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < estimate_frac < 1.0`.
    pub fn split(&self, estimate_frac: f64) -> (Dataset, Dataset) {
        assert!(estimate_frac > 0.0 && estimate_frac < 1.0, "estimate fraction must be in (0, 1)");
        let cut = ((self.pairs.len() as f64 * estimate_frac) as usize).max(1);
        (
            Dataset { name: self.name.clone(), pairs: self.pairs[..cut].to_vec() },
            Dataset { name: self.name.clone(), pairs: self.pairs[cut..].to_vec() },
        )
    }

    /// Estimates a [`Workload`] (empirical length distributions) from this
    /// dataset, as ExeGPT's scheduler consumes it.
    ///
    /// # Errors
    ///
    /// Returns a distribution error if the dataset is empty.
    pub fn estimate_workload(&self) -> Result<Workload, DistError> {
        let inputs: Vec<usize> = self.pairs.iter().map(|p| p.0).collect();
        let outputs: Vec<usize> = self.pairs.iter().map(|p| p.1).collect();
        Ok(Workload::new(LengthDist::empirical(&inputs)?, LengthDist::empirical(&outputs)?))
    }
}

/// Mixes a shared uniform with an independent one to induce rank
/// correlation ~`rho` between two quantile draws.
fn correlate(shared: f64, independent: f64, rho: f64) -> f64 {
    (rho * shared + (1.0 - rho) * independent).clamp(0.0, 1.0 - 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogates_are_deterministic() {
        let a = Dataset::wmt(500, 1);
        let b = Dataset::wmt(500, 1);
        assert_eq!(a, b);
        assert_ne!(a, Dataset::wmt(500, 2));
    }

    #[test]
    fn translation_is_correlated_others_are_not() {
        let wmt = Dataset::wmt(4000, 11);
        let alpaca = Dataset::alpaca(4000, 11);
        let cnn = Dataset::cnn_dailymail(4000, 11);
        assert!(wmt.correlation() > 0.5, "WMT corr {}", wmt.correlation());
        assert!(alpaca.correlation().abs() < 0.3, "Alpaca corr {}", alpaca.correlation());
        assert!(cnn.correlation().abs() < 0.3, "CNN corr {}", cnn.correlation());
    }

    #[test]
    fn outputs_have_long_right_tails() {
        // Tail heaviness: p99.5 well beyond the body's reach.
        let alpaca = Dataset::alpaca(8000, 5);
        let outs: Vec<f64> = alpaca.pairs().iter().map(|p| p.1 as f64).collect();
        let p50 = exegpt_dist::stats::percentile(&outs, 0.5).expect("non-empty");
        let p995 = exegpt_dist::stats::percentile(&outs, 0.995).expect("non-empty");
        assert!(p995 > 3.0 * p50, "tail too light: p50 {p50}, p99.5 {p995}");
    }

    #[test]
    fn split_preserves_pairs() {
        let d = Dataset::cnn_dailymail(1000, 3);
        let (est, eval) = d.split(0.1);
        assert_eq!(est.len() + eval.len(), 1000);
        assert_eq!(est.len(), 100);
        assert_eq!(est.name(), "CNN");
    }

    #[test]
    fn estimated_workload_matches_sample_moments() {
        let d = Dataset::wmt(5000, 9);
        let w = d.estimate_workload().expect("non-empty");
        let mean_in: f64 = d.pairs().iter().map(|p| p.0 as f64).sum::<f64>() / d.len() as f64;
        assert!((w.input().mean() - mean_in).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "estimate fraction")]
    fn bad_split_fraction_panics() {
        let _ = Dataset::wmt(100, 1).split(1.5);
    }
}
