//! Concrete inference requests sampled from a workload.

use exegpt_sim::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One inference request with its (enforced) sequence lengths.
///
/// As in the paper's methodology (§7.1), output lengths are *enforced*: the
/// runner decodes exactly `output_len` tokens for the query, mimicking the
/// suppressed end-of-sequence token of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Unique id (assignment order).
    pub id: u64,
    /// Number of input tokens.
    pub input_len: usize,
    /// Number of output tokens to generate.
    pub output_len: usize,
}

/// Deterministic stream of requests sampled from a workload.
///
/// # Example
///
/// ```
/// use exegpt_workload::{RequestStream, Task};
///
/// let w = Task::Summarization.workload()?;
/// let reqs: Vec<_> = RequestStream::new(&w, 42).take(100).collect();
/// assert_eq!(reqs.len(), 100);
/// assert!(reqs.iter().all(|r| r.input_len >= 1 && r.output_len >= 1));
/// # Ok::<(), exegpt_dist::DistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RequestStream {
    workload: Workload,
    rng: StdRng,
    next_id: u64,
}

impl RequestStream {
    /// Creates a stream over `workload` with a deterministic `seed`.
    pub fn new(workload: &Workload, seed: u64) -> Self {
        Self { workload: workload.clone(), rng: StdRng::seed_from_u64(seed), next_id: 0 }
    }

    /// Samples the next request.
    pub fn next_request(&mut self) -> Request {
        let input_len = self.workload.input().sample(&mut self.rng);
        let output_len = self.workload.output().sample(&mut self.rng);
        let id = self.next_id;
        self.next_id += 1;
        Request { id, input_len, output_len }
    }
}

impl Iterator for RequestStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        Some(self.next_request())
    }
}

/// A request paired with its (open-loop) arrival time in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedRequest {
    /// The request.
    pub request: Request,
    /// Arrival time in virtual seconds.
    pub arrival: f64,
}

/// A deterministic open-loop arrival stream: requests sampled from a
/// workload, arriving as a Poisson process of the given rate.
///
/// Where [`RequestStream`] models the paper's saturated throughput regime
/// (everything queued at time zero), this models *serving*: queries arrive
/// over time and latency includes queueing — the quantity behind the
/// §7.6 SLA-(a) discussion ("99% of all queries completed within a given
/// timeframe").
///
/// # Example
///
/// ```
/// use exegpt_workload::{PoissonStream, Task};
///
/// let w = Task::Translation.workload()?;
/// let reqs: Vec<_> = PoissonStream::new(&w, 10.0, 7).take(100).collect();
/// assert!(reqs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
/// # Ok::<(), exegpt_dist::DistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PoissonStream {
    inner: RequestStream,
    gaps: StdRng,
    rate: f64,
    now: f64,
}

impl PoissonStream {
    /// Creates a stream over `workload` with mean arrival rate `rate_qps`
    /// queries per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_qps` is not positive.
    pub fn new(workload: &Workload, rate_qps: f64, seed: u64) -> Self {
        assert!(rate_qps > 0.0, "arrival rate must be positive");
        Self {
            inner: RequestStream::new(workload, seed),
            gaps: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            rate: rate_qps,
            now: 0.0,
        }
    }
}

impl Iterator for PoissonStream {
    type Item = TimedRequest;

    fn next(&mut self) -> Option<TimedRequest> {
        use rand::Rng;
        let u: f64 = self.gaps.gen_range(f64::MIN_POSITIVE..1.0);
        self.now += -u.ln() / self.rate;
        Some(TimedRequest { request: self.inner.next_request(), arrival: self.now })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::Task;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let w = Task::Translation.workload().expect("valid");
        let a: Vec<_> = RequestStream::new(&w, 7).take(50).collect();
        let b: Vec<_> = RequestStream::new(&w, 7).take(50).collect();
        let c: Vec<_> = RequestStream::new(&w, 8).take(50).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_are_sequential() {
        let w = Task::Translation.workload().expect("valid");
        let reqs: Vec<_> = RequestStream::new(&w, 1).take(10).collect();
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn poisson_arrivals_have_the_requested_rate() {
        let w = Task::Translation.workload().expect("valid");
        let reqs: Vec<_> = PoissonStream::new(&w, 20.0, 5).take(4000).collect();
        let span = reqs.last().expect("non-empty").arrival;
        let rate = reqs.len() as f64 / span;
        assert!((rate - 20.0).abs() < 1.5, "measured rate {rate}");
        assert!(reqs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        // Deterministic per seed.
        let again: Vec<_> = PoissonStream::new(&w, 20.0, 5).take(10).collect();
        assert_eq!(&reqs[..10], &again[..]);
    }

    #[test]
    fn sampled_lengths_respect_bounds_and_mean() {
        let w = Task::CodeGeneration.workload().expect("valid");
        let reqs: Vec<_> = RequestStream::new(&w, 3).take(5000).collect();
        assert!(reqs.iter().all(|r| r.input_len <= 128 && r.output_len <= 480));
        let mean_out: f64 =
            reqs.iter().map(|r| r.output_len as f64).sum::<f64>() / reqs.len() as f64;
        assert!((mean_out - w.output().mean()).abs() < 5.0);
    }
}
