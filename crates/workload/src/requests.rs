//! Concrete inference requests sampled from a workload.

use exegpt_sim::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One inference request with its (enforced) sequence lengths.
///
/// As in the paper's methodology (§7.1), output lengths are *enforced*: the
/// runner decodes exactly `output_len` tokens for the query, mimicking the
/// suppressed end-of-sequence token of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Unique id (assignment order).
    pub id: u64,
    /// Number of input tokens.
    pub input_len: usize,
    /// Number of output tokens to generate.
    pub output_len: usize,
}

/// Deterministic stream of requests sampled from a workload.
///
/// # Example
///
/// ```
/// use exegpt_workload::{RequestStream, Task};
///
/// let w = Task::Summarization.workload()?;
/// let reqs: Vec<_> = RequestStream::new(&w, 42).take(100).collect();
/// assert_eq!(reqs.len(), 100);
/// assert!(reqs.iter().all(|r| r.input_len >= 1 && r.output_len >= 1));
/// # Ok::<(), exegpt_dist::DistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RequestStream {
    workload: Workload,
    rng: StdRng,
    next_id: u64,
}

impl RequestStream {
    /// Creates a stream over `workload` with a deterministic `seed`.
    pub fn new(workload: &Workload, seed: u64) -> Self {
        Self { workload: workload.clone(), rng: StdRng::seed_from_u64(seed), next_id: 0 }
    }

    /// Samples the next request.
    pub fn next_request(&mut self) -> Request {
        let input_len = self.workload.input().sample(&mut self.rng);
        let output_len = self.workload.output().sample(&mut self.rng);
        let id = self.next_id;
        self.next_id += 1;
        Request { id, input_len, output_len }
    }
}

impl Iterator for RequestStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        Some(self.next_request())
    }
}

/// A request paired with its (open-loop) arrival time in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedRequest {
    /// The request.
    pub request: Request,
    /// Arrival time in virtual seconds.
    pub arrival: f64,
}

/// A deterministic open-loop arrival stream: requests sampled from a
/// workload, arriving as a Poisson process of the given rate.
///
/// Where [`RequestStream`] models the paper's saturated throughput regime
/// (everything queued at time zero), this models *serving*: queries arrive
/// over time and latency includes queueing — the quantity behind the
/// §7.6 SLA-(a) discussion ("99% of all queries completed within a given
/// timeframe").
///
/// # Example
///
/// ```
/// use exegpt_workload::{PoissonStream, Task};
///
/// let w = Task::Translation.workload()?;
/// let reqs: Vec<_> = PoissonStream::new(&w, 10.0, 7).take(100).collect();
/// assert!(reqs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
/// # Ok::<(), exegpt_dist::DistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PoissonStream {
    inner: RequestStream,
    gaps: StdRng,
    rate: f64,
    now: f64,
}

impl PoissonStream {
    /// Creates a stream over `workload` with mean arrival rate `rate_qps`
    /// queries per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_qps` is not positive.
    pub fn new(workload: &Workload, rate_qps: f64, seed: u64) -> Self {
        assert!(rate_qps > 0.0, "arrival rate must be positive");
        Self {
            inner: RequestStream::new(workload, seed),
            gaps: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            rate: rate_qps,
            now: 0.0,
        }
    }
}

impl Iterator for PoissonStream {
    type Item = TimedRequest;

    fn next(&mut self) -> Option<TimedRequest> {
        use rand::Rng;
        let u: f64 = self.gaps.gen_range(f64::MIN_POSITIVE..1.0);
        self.now += -u.ln() / self.rate;
        Some(TimedRequest { request: self.inner.next_request(), arrival: self.now })
    }
}

/// A deterministic *bursty* open-loop arrival stream: a two-state Markov-
/// modulated Poisson process (MMPP-2).
///
/// The process alternates between a *burst* state and a *lull* state, each
/// with exponentially distributed dwell times; within a state, arrivals are
/// Poisson at that state's rate. This is the classic on-off traffic model
/// for flash crowds and diurnal swings — the regime where a serving layer's
/// SLO accounting (queueing during bursts) and drift detection earn their
/// keep, versus the memoryless [`PoissonStream`].
///
/// With `rate_lull = 0` the process degenerates to an interrupted Poisson
/// process (pure on-off). The long-run mean rate is
/// `(rate_burst·dwell_burst + rate_lull·dwell_lull) / (dwell_burst + dwell_lull)`,
/// exposed as [`mean_rate`](BurstyStream::mean_rate).
///
/// # Example
///
/// ```
/// use exegpt_workload::{BurstyStream, Task};
///
/// let w = Task::Translation.workload()?;
/// // 30 qps bursts of ~5 s, 5 qps lulls of ~15 s: ~11.25 qps on average.
/// let s = BurstyStream::new(&w, 30.0, 5.0, 5.0, 15.0, 7);
/// assert!((s.mean_rate() - 11.25).abs() < 1e-12);
/// let reqs: Vec<_> = s.take(100).collect();
/// assert!(reqs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
/// # Ok::<(), exegpt_dist::DistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BurstyStream {
    inner: RequestStream,
    gaps: StdRng,
    rate_burst: f64,
    rate_lull: f64,
    dwell_burst: f64,
    dwell_lull: f64,
    now: f64,
    in_burst: bool,
    next_switch: f64,
}

impl BurstyStream {
    /// Creates a bursty stream over `workload`: Poisson at `rate_burst`
    /// queries/second during bursts of mean length `dwell_burst` seconds,
    /// and at `rate_lull` during lulls of mean length `dwell_lull`. The
    /// process starts in a burst. Fully determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_burst` is not positive, `rate_lull` is negative, or
    /// either dwell time is not positive.
    pub fn new(
        workload: &Workload,
        rate_burst: f64,
        rate_lull: f64,
        dwell_burst: f64,
        dwell_lull: f64,
        seed: u64,
    ) -> Self {
        assert!(rate_burst > 0.0, "burst arrival rate must be positive");
        assert!(rate_lull >= 0.0, "lull arrival rate must be non-negative");
        assert!(dwell_burst > 0.0 && dwell_lull > 0.0, "dwell times must be positive");
        let mut gaps = StdRng::seed_from_u64(seed ^ 0x94d0_49bb_1331_11eb);
        let first_switch = exponential(&mut gaps, 1.0 / dwell_burst);
        Self {
            inner: RequestStream::new(workload, seed),
            gaps,
            rate_burst,
            rate_lull,
            dwell_burst,
            dwell_lull,
            now: 0.0,
            in_burst: true,
            next_switch: first_switch,
        }
    }

    /// The long-run mean arrival rate in queries/second.
    pub fn mean_rate(&self) -> f64 {
        (self.rate_burst * self.dwell_burst + self.rate_lull * self.dwell_lull)
            / (self.dwell_burst + self.dwell_lull)
    }
}

/// An exponential draw with the given rate (`f64::INFINITY`-free: the
/// underlying uniform is bounded away from zero).
fn exponential(rng: &mut StdRng, rate: f64) -> f64 {
    use rand::Rng;
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

impl Iterator for BurstyStream {
    type Item = TimedRequest;

    fn next(&mut self) -> Option<TimedRequest> {
        // Memorylessness makes this exact: a candidate gap at the current
        // state's rate either lands before the next state switch (a real
        // arrival) or is discarded and redrawn from the switch point.
        loop {
            let rate = if self.in_burst { self.rate_burst } else { self.rate_lull };
            let candidate = if rate > 0.0 {
                self.now + exponential(&mut self.gaps, rate)
            } else {
                f64::INFINITY // silent lull: jump straight to the switch
            };
            if candidate <= self.next_switch {
                self.now = candidate;
                return Some(TimedRequest {
                    request: self.inner.next_request(),
                    arrival: self.now,
                });
            }
            self.now = self.next_switch;
            self.in_burst = !self.in_burst;
            let mean_dwell = if self.in_burst { self.dwell_burst } else { self.dwell_lull };
            self.next_switch = self.now + exponential(&mut self.gaps, 1.0 / mean_dwell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::Task;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let w = Task::Translation.workload().expect("valid");
        let a: Vec<_> = RequestStream::new(&w, 7).take(50).collect();
        let b: Vec<_> = RequestStream::new(&w, 7).take(50).collect();
        let c: Vec<_> = RequestStream::new(&w, 8).take(50).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_are_sequential() {
        let w = Task::Translation.workload().expect("valid");
        let reqs: Vec<_> = RequestStream::new(&w, 1).take(10).collect();
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn poisson_arrivals_have_the_requested_rate() {
        let w = Task::Translation.workload().expect("valid");
        let reqs: Vec<_> = PoissonStream::new(&w, 20.0, 5).take(4000).collect();
        let span = reqs.last().expect("non-empty").arrival;
        let rate = reqs.len() as f64 / span;
        assert!((rate - 20.0).abs() < 1.5, "measured rate {rate}");
        assert!(reqs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        // Deterministic per seed.
        let again: Vec<_> = PoissonStream::new(&w, 20.0, 5).take(10).collect();
        assert_eq!(&reqs[..10], &again[..]);
    }

    #[test]
    fn bursty_arrivals_match_the_modulated_rate() {
        let w = Task::Translation.workload().expect("valid");
        // 40 qps bursts (~4 s) alternating with 4 qps lulls (~12 s):
        // long-run mean (40*4 + 4*12) / 16 = 13 qps.
        let s = BurstyStream::new(&w, 40.0, 4.0, 4.0, 12.0, 11);
        assert!((s.mean_rate() - 13.0).abs() < 1e-12);
        let reqs: Vec<_> = s.take(20_000).collect();
        let span = reqs.last().expect("non-empty").arrival;
        let rate = reqs.len() as f64 / span;
        assert!((rate - 13.0).abs() < 1.0, "measured rate {rate}");
        assert!(reqs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
    }

    #[test]
    fn bursty_interarrivals_are_overdispersed_vs_poisson() {
        let w = Task::Translation.workload().expect("valid");
        let cv2 = |reqs: &[TimedRequest]| {
            let gaps: Vec<f64> = reqs.windows(2).map(|p| p[1].arrival - p[0].arrival).collect();
            let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / gaps.len() as f64;
            var / (m * m)
        };
        let bursty: Vec<_> = BurstyStream::new(&w, 50.0, 2.0, 3.0, 10.0, 5).take(8000).collect();
        let poisson: Vec<_> = PoissonStream::new(&w, 13.0, 5).take(8000).collect();
        // Poisson inter-arrivals have squared CV ~1; modulation pushes the
        // bursty stream's well above it.
        let (b, p) = (cv2(&bursty), cv2(&poisson));
        assert!(p < 1.3, "poisson cv^2 {p}");
        assert!(b > 2.0, "bursty cv^2 {b} not overdispersed");
    }

    #[test]
    fn bursty_streams_are_deterministic_per_seed() {
        let w = Task::Translation.workload().expect("valid");
        let a: Vec<_> = BurstyStream::new(&w, 30.0, 5.0, 5.0, 15.0, 9).take(200).collect();
        let b: Vec<_> = BurstyStream::new(&w, 30.0, 5.0, 5.0, 15.0, 9).take(200).collect();
        let c: Vec<_> = BurstyStream::new(&w, 30.0, 5.0, 5.0, 15.0, 10).take(200).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn silent_lull_degenerates_to_interrupted_poisson() {
        let w = Task::Translation.workload().expect("valid");
        let reqs: Vec<_> = BurstyStream::new(&w, 25.0, 0.0, 2.0, 6.0, 3).take(2000).collect();
        assert_eq!(reqs.len(), 2000, "the stream still yields arrivals");
        assert!(reqs.windows(2).all(|p| p[0].arrival <= p[1].arrival));
    }

    #[test]
    fn sampled_lengths_respect_bounds_and_mean() {
        let w = Task::CodeGeneration.workload().expect("valid");
        let reqs: Vec<_> = RequestStream::new(&w, 3).take(5000).collect();
        assert!(reqs.iter().all(|r| r.input_len <= 128 && r.output_len <= 480));
        let mean_out: f64 =
            reqs.iter().map(|r| r.output_len as f64).sum::<f64>() / reqs.len() as f64;
        assert!((mean_out - w.output().mean()).abs() < 5.0);
    }
}
