//! The paper's latency-bound derivation protocol (§7.1).
//!
//! For each model/task, the paper runs the FasterTransformer baseline over
//! its feasible batch sizes, collects the resulting latencies, and uses the
//! bottom 10%, 30% and 70% of that latency range — plus infinity — as the
//! four evaluation bounds.

use exegpt_dist::stats;
use exegpt_units::Secs;

/// Derives the four evaluation latency bounds from a sweep of baseline
/// latencies: the 10th, 30th and 70th percentiles plus `+∞`.
///
/// Returns `None` for an empty sweep.
///
/// # Example
///
/// ```
/// use exegpt_units::Secs;
/// let sweep: Vec<Secs> = (1..=10).map(|b| Secs::new(b as f64)).collect();
/// let bounds = exegpt_workload::latency_bounds(&sweep).unwrap();
/// assert_eq!(bounds[0], Secs::new(1.0));
/// assert_eq!(bounds[1], Secs::new(3.0));
/// assert_eq!(bounds[2], Secs::new(7.0));
/// assert!(!bounds[3].is_finite());
/// ```
pub fn latency_bounds(ft_latencies: &[Secs]) -> Option<[Secs; 4]> {
    let raw: Vec<f64> = ft_latencies.iter().map(|t| t.as_secs()).collect();
    Some([
        Secs::new(stats::percentile(&raw, 0.10)?),
        Secs::new(stats::percentile(&raw, 0.30)?),
        Secs::new(stats::percentile(&raw, 0.70)?),
        Secs::INFINITY,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_sorted() {
        let sweep = [9.0, 2.0, 7.5, 4.0, 3.3, 12.0, 1.1].map(Secs::new);
        let b = latency_bounds(&sweep).expect("non-empty");
        assert!(b[0] <= b[1] && b[1] <= b[2] && b[2] < b[3]);
    }

    #[test]
    fn empty_sweep_is_none() {
        assert!(latency_bounds(&[]).is_none());
    }
}
