//! The paper's latency-bound derivation protocol (§7.1).
//!
//! For each model/task, the paper runs the FasterTransformer baseline over
//! its feasible batch sizes, collects the resulting latencies, and uses the
//! bottom 10%, 30% and 70% of that latency range — plus infinity — as the
//! four evaluation bounds.

use exegpt_dist::stats;

/// Derives the four evaluation latency bounds from a sweep of baseline
/// latencies: the 10th, 30th and 70th percentiles plus `+∞`.
///
/// Returns `None` for an empty sweep.
///
/// # Example
///
/// ```
/// let sweep: Vec<f64> = (1..=10).map(|b| b as f64).collect();
/// let bounds = exegpt_workload::latency_bounds(&sweep).unwrap();
/// assert_eq!(bounds[0], 1.0);
/// assert_eq!(bounds[1], 3.0);
/// assert_eq!(bounds[2], 7.0);
/// assert!(bounds[3].is_infinite());
/// ```
pub fn latency_bounds(ft_latencies: &[f64]) -> Option<[f64; 4]> {
    Some([
        stats::percentile(ft_latencies, 0.10)?,
        stats::percentile(ft_latencies, 0.30)?,
        stats::percentile(ft_latencies, 0.70)?,
        f64::INFINITY,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_sorted() {
        let sweep = [9.0, 2.0, 7.5, 4.0, 3.3, 12.0, 1.1];
        let b = latency_bounds(&sweep).expect("non-empty");
        assert!(b[0] <= b[1] && b[1] <= b[2] && b[2] < b[3]);
    }

    #[test]
    fn empty_sweep_is_none() {
        assert!(latency_bounds(&[]).is_none());
    }
}
