//! NLP task workloads and dataset surrogates for the ExeGPT evaluation.
//!
//! Provides the paper's five evaluation tasks (Table 3) as ready-made
//! [`Workload`](exegpt_sim::Workload)s, a deterministic [`RequestStream`]
//! that samples concrete queries for the runner, surrogate *real-world
//! datasets* (WMT translation, Alpaca conversational Q/A, CNN/DailyMail
//! summarization — §7.5) with the length statistics and long right tails
//! the paper reports, and the latency-bound derivation protocol of §7.1.
//!
//! # Example
//!
//! ```
//! use exegpt_workload::Task;
//!
//! let t = Task::Translation;
//! let w = t.workload()?;
//! assert_eq!(w.input().max_len(), 256);
//! assert_eq!(w.output().quantile(1.0), 320);
//! # Ok::<(), exegpt_dist::DistError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod datasets;
mod latency;
mod requests;
mod tasks;
mod tenants;

pub use datasets::Dataset;
pub use latency::latency_bounds;
pub use requests::{BurstyStream, PoissonStream, Request, RequestStream, TimedRequest};
pub use tasks::Task;
pub use tenants::{multi_tenant_trace, ArrivalProcess, TenantRequest, TenantSpec};
