//! The five evaluated NLP tasks (paper Table 3).

use exegpt_dist::{DistError, LengthDist};
use exegpt_sim::Workload;
use serde::{Deserialize, Serialize};

/// One of the paper's evaluation tasks, with its Table 3 sequence-length
/// statistics (truncated normal, the paper's best-fit family for public
/// NLP datasets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// Task S: summarization — long inputs, short outputs.
    Summarization,
    /// Task T: translation — symmetric input/output lengths.
    Translation,
    /// Task G: code generation — short inputs, long outputs.
    CodeGeneration,
    /// Task C1: conversational Q/A with short responses.
    ConversationalQa1,
    /// Task C2: conversational Q/A with long contexts and responses.
    ConversationalQa2,
}

impl Task {
    /// All five tasks in Table 3 order.
    pub fn all() -> [Task; 5] {
        [
            Task::Summarization,
            Task::Translation,
            Task::CodeGeneration,
            Task::ConversationalQa1,
            Task::ConversationalQa2,
        ]
    }

    /// The paper's one-letter task id (`S`, `T`, `G`, `C1`, `C2`).
    pub fn id(&self) -> &'static str {
        match self {
            Task::Summarization => "S",
            Task::Translation => "T",
            Task::CodeGeneration => "G",
            Task::ConversationalQa1 => "C1",
            Task::ConversationalQa2 => "C2",
        }
    }

    /// Input-length statistics `(mean, std, max)` from Table 3.
    pub fn input_stats(&self) -> (f64, f64, usize) {
        match self {
            Task::Summarization => (256.0, 252.0, 512),
            Task::Translation => (128.0, 81.0, 256),
            Task::CodeGeneration => (64.0, 23.0, 128),
            Task::ConversationalQa1 => (256.0, 115.0, 512),
            Task::ConversationalQa2 => (512.0, 252.0, 1024),
        }
    }

    /// Output-length statistics `(mean, std, max)` from Table 3.
    pub fn output_stats(&self) -> (f64, f64, usize) {
        match self {
            Task::Summarization => (32.0, 13.0, 80),
            Task::Translation => (128.0, 68.0, 320),
            Task::CodeGeneration => (192.0, 93.0, 480),
            Task::ConversationalQa1 => (64.0, 30.0, 160),
            Task::ConversationalQa2 => (256.0, 134.0, 640),
        }
    }

    /// The task's sequence-length workload.
    ///
    /// # Errors
    ///
    /// Propagates distribution construction errors (none occur for the
    /// built-in statistics).
    pub fn workload(&self) -> Result<Workload, DistError> {
        let (im, is, ix) = self.input_stats();
        let (om, os, ox) = self.output_stats();
        Ok(Workload::new(
            LengthDist::truncated_normal(im, is, ix)?,
            LengthDist::truncated_normal(om, os, ox)?,
        ))
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tasks_build_workloads() {
        for t in Task::all() {
            let w = t.workload().expect("valid task statistics");
            let (_, _, ix) = t.input_stats();
            let (_, _, ox) = t.output_stats();
            assert_eq!(w.input().max_len(), ix);
            assert_eq!(w.output().max_len(), ox);
        }
    }

    /// Table 3 reports the 99th-percentile output lengths; our truncated
    /// normals must land close to them.
    #[test]
    fn p99_output_lengths_match_table3() {
        let expected = [
            (Task::Summarization, 63usize),
            (Task::Translation, 292),
            (Task::CodeGeneration, 417),
            (Task::ConversationalQa1, 137),
            (Task::ConversationalQa2, 579),
        ];
        for (task, p99) in expected {
            let w = task.workload().expect("valid");
            let got = w.output().quantile(0.99);
            let err = (got as f64 - p99 as f64).abs() / p99 as f64;
            assert!(err < 0.10, "{task}: p99 {got} vs paper {p99}");
        }
    }

    #[test]
    fn ids_are_unique() {
        let ids: Vec<_> = Task::all().iter().map(|t| t.id()).collect();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids, dedup);
        assert_eq!(Task::ConversationalQa2.to_string(), "C2");
    }
}
