//! Behavioural tests of the RRA/WAA timeline simulation: trade-off
//! directions, feasibility boundaries, and model-family differences.

use std::sync::Arc;

use exegpt_cluster::ClusterSpec;
use exegpt_dist::LengthDist;
use exegpt_model::ModelConfig;
use exegpt_profiler::{ProfileOptions, Profiler};
use exegpt_sim::{RraConfig, SimError, Simulator, TpConfig, WaaConfig, WaaVariant, Workload};
use exegpt_units::Secs;

/// OPT-13B on 4 A40 GPUs with the paper's task-T (translation) workload —
/// the setup of Figures 7 and 11.
fn opt_on_4xa40() -> Simulator {
    let model = ModelConfig::opt_13b();
    let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
    let profile = Profiler::new(model.clone(), cluster.clone())
        .run(&ProfileOptions::default())
        .expect("profiling succeeds");
    Simulator::new(model, cluster, Arc::new(profile), task_t())
}

fn task_t() -> Workload {
    Workload::new(
        LengthDist::truncated_normal(128.0, 81.0, 256).expect("valid"),
        LengthDist::truncated_normal(128.0, 68.0, 320).expect("valid"),
    )
}

fn task_s() -> Workload {
    Workload::new(
        LengthDist::truncated_normal(256.0, 252.0, 512).expect("valid"),
        LengthDist::truncated_normal(32.0, 13.0, 80).expect("valid"),
    )
}

#[test]
fn rra_produces_finite_positive_estimates() {
    let sim = opt_on_4xa40();
    let est = sim.evaluate_rra(&RraConfig::new(32, 16, TpConfig::none())).expect("feasible");
    assert!(est.throughput > 0.0 && est.throughput.is_finite());
    assert!(est.latency > Secs::ZERO && est.latency.is_finite());
    assert!(est.breakdown.decode_batch > 32, "pool must exceed the refill batch");
    assert!(est.memory.peak() <= est.memory.capacity);
}

#[test]
fn rra_larger_batch_trades_latency_for_throughput() {
    let sim = opt_on_4xa40();
    let small = sim.evaluate_rra(&RraConfig::new(8, 16, TpConfig::none())).expect("feasible");
    let large = sim.evaluate_rra(&RraConfig::new(64, 16, TpConfig::none())).expect("feasible");
    assert!(large.throughput > small.throughput, "B_E up => throughput up");
    assert!(large.latency > small.latency, "B_E up => latency up");
}

#[test]
fn rra_encoding_frequency_trades_throughput_for_latency() {
    // Paper §4.2: decreasing N_D (more frequent encoding) increases
    // throughput at the cost of latency.
    let sim = opt_on_4xa40();
    let frequent = sim.evaluate_rra(&RraConfig::new(16, 8, TpConfig::none())).expect("feasible");
    let rare = sim.evaluate_rra(&RraConfig::new(16, 64, TpConfig::none())).expect("feasible");
    assert!(
        frequent.throughput > rare.throughput,
        "smaller N_D should win throughput: {} vs {}",
        frequent.throughput,
        rare.throughput
    );
    assert!(
        frequent.latency > rare.latency,
        "smaller N_D should cost latency: {} vs {}",
        frequent.latency,
        rare.latency
    );
}

#[test]
fn rra_partial_tp_monotonically_cuts_latency() {
    // Paper §5.1: with the degree fixed, adding GPUs to tensor-parallel
    // groups shrinks the pipeline depth and reduces latency monotonically.
    // (The throughput direction is workload-dependent in practice — the
    // paper's own Table 5 reports non-monotonic TP points and Table 6
    // selects *more* TP at relaxed bounds — so only latency is asserted.)
    let sim = opt_on_4xa40();
    let lat = |gpus: usize| {
        let tp = if gpus == 0 { TpConfig::none() } else { TpConfig { degree: 2, gpus } };
        sim.evaluate_rra(&RraConfig::new(32, 16, tp)).expect("feasible").latency
    };
    let (l0, l2, l4) = (lat(0), lat(2), lat(4));
    assert!(l2 < l0, "tp 2x2 should beat no-TP latency: {l2} vs {l0}");
    assert!(l4 < l2, "tp 2x4 should beat tp 2x2 latency: {l4} vs {l2}");
}

#[test]
fn rra_rejects_degenerate_configs() {
    let sim = opt_on_4xa40();
    assert!(matches!(
        sim.evaluate_rra(&RraConfig::new(0, 16, TpConfig::none())),
        Err(SimError::InvalidConfig { what: "b_e", .. })
    ));
    assert!(matches!(
        sim.evaluate_rra(&RraConfig::new(8, 0, TpConfig::none())),
        Err(SimError::InvalidConfig { what: "n_d", .. })
    ));
    // TP degree that does not divide the group.
    assert!(sim.evaluate_rra(&RraConfig::new(8, 8, TpConfig { degree: 2, gpus: 3 })).is_err());
}

#[test]
fn rra_out_of_memory_for_huge_pools() {
    let sim = opt_on_4xa40();
    // B_E = 512 with N_D = 4 on 128-token outputs derives a pool of
    // ~16k queries; KV alone far exceeds 4 x 48 GB.
    let err = sim.evaluate_rra(&RraConfig::new(512, 4, TpConfig::none()));
    assert!(
        matches!(err, Err(SimError::OutOfMemory { .. }) | Err(SimError::InvalidConfig { .. })),
        "expected infeasibility, got {err:?}"
    );
}

#[test]
fn waa_produces_finite_positive_estimates() {
    let sim = opt_on_4xa40();
    let sim = sim.with_workload(task_s());
    let est = sim
        .evaluate_waa(&WaaConfig::new(2, 1, TpConfig::none(), WaaVariant::Compute))
        .expect("feasible");
    assert!(est.throughput > 0.0 && est.latency > Secs::ZERO);
    assert!(est.breakdown.stages >= 1);
    // Decode pool = B_E * mean output length.
    let expected = (2.0 * sim.workload().output().mean()).round() as usize;
    assert_eq!(est.breakdown.decode_batch, expected);
}

#[test]
fn waa_memory_variant_balances_gpu_memory() {
    let sim = opt_on_4xa40().with_workload(task_t());
    let c = sim
        .evaluate_waa(&WaaConfig::new(2, 3, TpConfig::none(), WaaVariant::Compute))
        .expect("feasible");
    let m = sim
        .evaluate_waa(&WaaConfig::new(2, 3, TpConfig::none(), WaaVariant::Memory))
        .expect("feasible");
    let imbalance = |e: &exegpt_sim::Estimate| {
        let a = e.memory.encoder_gpu.total() as f64;
        let b = e.memory.decoder_gpu.total() as f64;
        (a - b).abs() / a.max(b)
    };
    assert!(
        imbalance(&m) <= imbalance(&c) + 0.25,
        "WAA-M should not be much less balanced than WAA-C"
    );
}

#[test]
fn waa_needs_two_gpus() {
    let model = ModelConfig::opt_13b();
    let cluster = ClusterSpec::a40_cluster().subcluster(1).expect("fits");
    let profile = Profiler::new(model.clone(), cluster.clone())
        .run(&ProfileOptions::default())
        .expect("profiling succeeds");
    let sim = Simulator::new(model, cluster, Arc::new(profile), task_s());
    assert!(matches!(
        sim.evaluate_waa(&WaaConfig::new(2, 1, TpConfig::none(), WaaVariant::Compute)),
        Err(SimError::InvalidConfig { what: "cluster", .. })
    ));
}

#[test]
fn waa_encoder_gpus_hold_a_replica_for_decoder_only_models() {
    // The paper's WAA memory overhead: decoder-only models store two copies.
    let sim = opt_on_4xa40().with_workload(task_s());
    let est = sim
        .evaluate_waa(&WaaConfig::new(2, 1, TpConfig::none(), WaaVariant::Compute))
        .expect("feasible");
    assert!(est.memory.encoder_gpu.param_bytes > 0);
    assert!(est.memory.decoder_gpu.param_bytes > 0);
    // Both sides together exceed one full copy of the model.
    let n = 4;
    let total_params =
        est.memory.encoder_gpu.param_bytes + est.memory.decoder_gpu.param_bytes * (n - 1);
    assert!(total_params as f64 > ModelConfig::opt_13b().param_bytes() as f64 * 0.9);
}

#[test]
fn waa_micro_batches_fill_pipeline_bubbles() {
    // Task T gives the decode group several stages; matching the paper's
    // Figure 4b vs 4c, raising the micro-batch count to the stage count
    // removes ring bubbles and improves the token period, while going far
    // beyond it re-streams weights and hurts again (the non-monotonicity
    // the paper reports for B_m in Table 5).
    let sim = opt_on_4xa40();
    let eval = |bm: usize| {
        sim.evaluate_waa(&WaaConfig::new(2, bm, TpConfig::none(), WaaVariant::Compute))
            .expect("feasible")
    };
    let one = eval(1);
    let stages = one.breakdown.stages;
    assert!(stages >= 2, "task T decode group should have several stages");
    let filled = eval(stages);
    let excessive = eval(stages * 4);
    assert!(filled.breakdown.period < one.breakdown.period);
    assert!(excessive.breakdown.period > filled.breakdown.period);
}

#[test]
fn waa_micro_batch_count_cannot_exceed_pool() {
    let sim = opt_on_4xa40().with_workload(task_s());
    let err = sim.evaluate_waa(&WaaConfig::new(1, 4096, TpConfig::none(), WaaVariant::Compute));
    assert!(matches!(err, Err(SimError::InvalidConfig { what: "b_m", .. })));
}

#[test]
fn t5_rra_schedules_run() {
    let model = ModelConfig::t5_11b();
    let cluster = ClusterSpec::a40_cluster().subcluster(8).expect("fits");
    let profile = Profiler::new(model.clone(), cluster.clone())
        .run(&ProfileOptions::default())
        .expect("profiling succeeds");
    let sim = Simulator::new(model, cluster, Arc::new(profile), task_s());
    let est = sim.evaluate_rra(&RraConfig::new(16, 8, TpConfig::none())).expect("feasible");
    assert!(est.throughput > 0.0);
    // Encoder-decoder stages hold encoder and decoder slices.
    assert!(est.memory.decoder_gpu.param_bytes > 0);
}

#[test]
fn waa_beats_rra_for_short_outputs_on_small_models() {
    // Paper §4.1 "Comparison of the Strategies": WAA excels when outputs
    // are short (task S); this is the headline qualitative claim.
    let sim = opt_on_4xa40().with_workload(task_s());
    let rra_best = [8usize, 16, 32, 48]
        .iter()
        .filter_map(|&b| {
            [8usize, 16, 32]
                .iter()
                .filter_map(|&nd| sim.evaluate_rra(&RraConfig::new(b, nd, TpConfig::none())).ok())
                .map(|e| e.throughput)
                .fold(None, |acc: Option<f64>, t| Some(acc.map_or(t, |a| a.max(t))))
        })
        .fold(0.0f64, f64::max);
    let waa_best = [1usize, 2, 4]
        .iter()
        .flat_map(|&b| [1usize, 2, 3].iter().map(move |&bm| (b, bm)).collect::<Vec<_>>())
        .filter_map(|(b, bm)| {
            sim.evaluate_waa(&WaaConfig::new(b, bm, TpConfig::none(), WaaVariant::Compute))
                .ok()
                .map(|e| e.throughput)
        })
        .fold(0.0f64, f64::max);
    assert!(
        waa_best > rra_best * 0.8,
        "WAA ({waa_best:.2} q/s) should be competitive with RRA ({rra_best:.2} q/s) on task S"
    );
}

#[test]
fn simulator_accessors_and_dispatch() {
    use exegpt_sim::ScheduleConfig;
    let sim = opt_on_4xa40();
    assert_eq!(sim.cluster().total_gpus(), 4);
    assert_eq!(sim.model().name(), "OPT 13B");
    let via_enum = sim
        .evaluate(&ScheduleConfig::Rra(RraConfig::new(16, 16, TpConfig::none())))
        .expect("feasible");
    let direct = sim.evaluate_rra(&RraConfig::new(16, 16, TpConfig::none())).expect("feasible");
    assert_eq!(via_enum, direct);
}
