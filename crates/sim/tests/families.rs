//! Cross-family and cross-cluster simulation coverage: the A100 cluster,
//! the long-context C2 task, and both encoder-decoder presets.

use std::sync::Arc;

use exegpt_cluster::ClusterSpec;
use exegpt_dist::LengthDist;
use exegpt_model::ModelConfig;
use exegpt_profiler::{ProfileOptions, Profiler};
use exegpt_sim::{RraConfig, Simulator, TpConfig, WaaConfig, WaaVariant, Workload};

fn sim_on(
    model: ModelConfig,
    cluster: ClusterSpec,
    input: (f64, f64, usize),
    output: (f64, f64, usize),
) -> Simulator {
    let profile = Profiler::new(model.clone(), cluster.clone())
        .run(&ProfileOptions::default())
        .expect("profiling succeeds");
    let workload = Workload::new(
        LengthDist::truncated_normal(input.0, input.1, input.2).expect("valid"),
        LengthDist::truncated_normal(output.0, output.1, output.2).expect("valid"),
    );
    Simulator::new(model, cluster, Arc::new(profile), workload)
}

/// Task C2 (long contexts) on the A100 cluster with GPT-3 101B: the
/// Figure 8 regime, evaluated through the closed-form simulator.
#[test]
fn gpt3_101b_on_a100_handles_long_contexts() {
    let sim = sim_on(
        ModelConfig::gpt3_101b(),
        ClusterSpec::a100_cluster(),
        (512.0, 252.0, 1024),
        (256.0, 134.0, 640),
    );
    let est = sim.evaluate_rra(&RraConfig::new(8, 32, TpConfig::none())).expect("feasible");
    assert!(est.throughput > 0.0 && est.latency.is_finite());
    // NVLink makes full TP cheap: a TP-heavy config must also be feasible.
    let tp = sim
        .evaluate_rra(&RraConfig::new(8, 32, TpConfig { degree: 8, gpus: 16 }))
        .expect("feasible");
    assert!(tp.latency < est.latency, "TP on NVLink should cut latency");
}

/// The same schedule is faster on A100s than on A40s — the substrate
/// ordering sanity check behind every cross-cluster figure.
#[test]
fn a100_outruns_a40_at_matched_configuration() {
    let mk = |cluster: ClusterSpec| {
        sim_on(ModelConfig::gpt3_39b(), cluster, (128.0, 81.0, 256), (128.0, 68.0, 320))
    };
    let a40 = mk(ClusterSpec::a40_cluster().subcluster(16).expect("fits"));
    let a100 = mk(ClusterSpec::a100_cluster());
    let cfg = RraConfig::new(16, 16, TpConfig::none());
    let t40 = a40.evaluate_rra(&cfg).expect("feasible");
    let t100 = a100.evaluate_rra(&cfg).expect("feasible");
    assert!(t100.throughput > t40.throughput);
    assert!(t100.latency < t40.latency);
}

/// Both encoder-decoder presets (T5 and UL2) schedule under both families,
/// and WAA does *not* pay the decoder-only replica penalty: its encoder
/// GPUs hold encoder layers only.
#[test]
fn encoder_decoder_models_waa_without_replica() {
    for model in [ModelConfig::t5_11b(), ModelConfig::ul2_20b()] {
        let sim = sim_on(
            model.clone(),
            ClusterSpec::a40_cluster().subcluster(8).expect("fits"),
            (256.0, 252.0, 512),
            (32.0, 13.0, 80),
        );
        let est = sim
            .evaluate_waa(&WaaConfig::new(4, 2, TpConfig::none(), WaaVariant::Compute))
            .expect("feasible");
        // Encoder-side parameters are encoder layers only: one GPU's slice
        // can never exceed the whole encoder stack, which is itself well
        // under a full-model replica (the decoder-only penalty, §4.1).
        let enc_stack = model
            .layer_run_param_bytes(exegpt_model::LayerKind::Encoder, model.num_encoder_layers());
        assert!(
            est.memory.encoder_gpu.param_bytes <= enc_stack,
            "{}: encoder gpu holds more than the encoder stack",
            model.name()
        );
        assert!(enc_stack < model.param_bytes(), "the encoder stack is a strict subset");
        assert!(est.throughput > 0.0);
    }
}

/// An empirical workload (as estimated from a dataset) drives the simulator
/// exactly like a parametric one.
#[test]
fn empirical_workloads_are_first_class() {
    let inputs: Vec<usize> = (0..500).map(|i| 64 + (i * 37) % 192).collect();
    let outputs: Vec<usize> = (0..500).map(|i| 16 + (i * 53) % 112).collect();
    let workload = Workload::new(
        LengthDist::empirical(&inputs).expect("non-empty"),
        LengthDist::empirical(&outputs).expect("non-empty"),
    );
    let model = ModelConfig::opt_13b();
    let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
    let profile = Profiler::new(model.clone(), cluster.clone())
        .run(&ProfileOptions::default())
        .expect("profiles");
    let sim = Simulator::new(model, cluster, Arc::new(profile), workload);
    let est = sim.evaluate_rra(&RraConfig::new(16, 16, TpConfig::none())).expect("feasible");
    assert!(est.throughput > 0.0 && est.latency.is_finite());
}

/// Estimates serialize for result archival (the figures harness relies on
/// this for its JSON output).
#[test]
fn estimates_round_trip_through_serde() {
    let sim = sim_on(
        ModelConfig::opt_13b(),
        ClusterSpec::a40_cluster().subcluster(4).expect("fits"),
        (128.0, 81.0, 256),
        (128.0, 68.0, 320),
    );
    let est = sim.evaluate_rra(&RraConfig::new(16, 16, TpConfig::none())).expect("feasible");
    let json = serde_json::to_string(&est).expect("serializes");
    let back: exegpt_sim::Estimate = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(est, back);
}
