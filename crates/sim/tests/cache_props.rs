//! Property coverage of the evaluation cache: memoized results must be
//! bit-identical to freshly computed ones, for both schedule families and
//! for infeasible configurations (whose errors are memoized too).

use std::sync::{Arc, OnceLock};

use exegpt_cluster::ClusterSpec;
use exegpt_dist::LengthDist;
use exegpt_model::ModelConfig;
use exegpt_profiler::{ProfileOptions, Profiler};
use exegpt_sim::{RraConfig, ScheduleConfig, Simulator, TpConfig, WaaConfig, WaaVariant, Workload};
use proptest::prelude::*;

/// OPT-13B on four A40s serving task S, profiled once for the whole suite.
fn simulator() -> &'static Simulator {
    static SIM: OnceLock<Simulator> = OnceLock::new();
    SIM.get_or_init(|| {
        let model = ModelConfig::opt_13b();
        let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
        let profile = Profiler::new(model.clone(), cluster.clone())
            .run(&ProfileOptions::default())
            .expect("profiles");
        let workload = Workload::new(
            LengthDist::truncated_normal(256.0, 252.0, 512).expect("valid"),
            LengthDist::truncated_normal(32.0, 13.0, 80).expect("valid"),
        );
        Simulator::new(model, cluster, Arc::new(profile), workload)
    })
}

fn tp_strategy() -> impl Strategy<Value = TpConfig> {
    prop_oneof![
        Just(TpConfig::none()),
        Just(TpConfig { degree: 2, gpus: 2 }),
        Just(TpConfig { degree: 2, gpus: 4 }),
        Just(TpConfig { degree: 4, gpus: 4 }),
    ]
}

fn config_strategy() -> impl Strategy<Value = ScheduleConfig> {
    let rra = (1usize..=48, 1usize..=64, tp_strategy())
        .prop_map(|(b_e, n_d, tp)| ScheduleConfig::Rra(RraConfig::new(b_e, n_d, tp)));
    let variant = prop_oneof![Just(WaaVariant::Compute), Just(WaaVariant::Memory)];
    let waa = (1usize..=8, 1usize..=4, tp_strategy(), variant)
        .prop_map(|(b_e, b_m, tp, v)| ScheduleConfig::Waa(WaaConfig::new(b_e, b_m, tp, v)));
    prop_oneof![rra, waa]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn cached_estimates_are_bit_identical_to_fresh_ones(
        cfgs in prop::collection::vec(config_strategy(), 10),
    ) {
        // One simulator accumulates cache entries across the whole case;
        // each configuration is also evaluated on a cache-free twin.
        let warm = simulator().with_workload(simulator().workload().clone());
        for cfg in &cfgs {
            let first = warm.evaluate(cfg);
            let second = warm.evaluate(cfg); // must be served by the memo
            let cold = warm.with_workload(warm.workload().clone()).evaluate(cfg);
            match (first, second, cold) {
                (Ok(a), Ok(b), Ok(c)) => {
                    prop_assert_eq!(&a, &b);
                    prop_assert_eq!(&a, &c);
                    // Byte-level identity, not approximate agreement: the
                    // serializer prints shortest-round-trip floats, so equal
                    // strings mean equal bits.
                    let ja = serde_json::to_string(&a).expect("serializes");
                    prop_assert_eq!(&ja, &serde_json::to_string(&b).expect("serializes"));
                    prop_assert_eq!(&ja, &serde_json::to_string(&c).expect("serializes"));
                }
                (Err(_), Err(_), Err(_)) => {}
                (a, b, c) => prop_assert!(
                    false,
                    "cache changed feasibility for {:?}: {:?} / {:?} / {:?}",
                    cfg, a, b, c
                ),
            }
        }
        let stats = warm.cache_stats();
        prop_assert!(
            stats.hits >= cfgs.len(),
            "every repeated lookup must hit: {:?}",
            stats
        );
        prop_assert!(stats.misses <= cfgs.len());
    }
}

#[test]
fn with_cluster_shares_the_cache_without_leaking_across_topologies() {
    let sim = simulator().with_workload(simulator().workload().clone());
    let cfg = RraConfig::new(16, 16, TpConfig::none());
    let healthy = sim.evaluate_rra(&cfg).expect("feasible");
    let warm_misses = sim.cache_stats().misses;

    // Same config on a degraded topology: entries are keyed by cluster
    // fingerprint, so this must re-derive rather than replay the healthy
    // estimate.
    let degraded = sim.with_cluster(sim.cluster().survivors(1).expect("one node left"));
    let worse = degraded.evaluate_rra(&cfg).expect("feasible");
    assert_ne!(healthy, worse, "halving the pipeline must change the estimate");
    assert!(worse.throughput < healthy.throughput);

    // The cache is shared (not flushed): the degraded evaluation shows up in
    // the same stats, and swapping back to the healthy topology is a pure
    // hit — no new misses, byte-identical estimate.
    assert!(degraded.cache_stats().misses > warm_misses);
    let recovered = degraded.with_cluster(sim.cluster().clone());
    let misses_before = recovered.cache_stats().misses;
    let replay = recovered.evaluate_rra(&cfg).expect("feasible");
    assert_eq!(replay, healthy);
    assert_eq!(recovered.cache_stats().misses, misses_before, "recovery must be a cache hit");
}

#[test]
fn with_workload_does_not_leak_cached_estimates() {
    let sim = simulator().with_workload(simulator().workload().clone());
    let cfg = RraConfig::new(16, 16, TpConfig::none());
    let short = sim.evaluate_rra(&cfg).expect("feasible");

    // Same config under a shifted workload: were the cache carried across
    // `with_workload`, the stale estimate would be returned verbatim.
    let shifted = sim.with_workload(Workload::new(
        LengthDist::truncated_normal(128.0, 81.0, 256).expect("valid"),
        LengthDist::truncated_normal(128.0, 68.0, 320).expect("valid"),
    ));
    assert_eq!(shifted.cache_stats().hits + shifted.cache_stats().misses, 0);
    let long = shifted.evaluate_rra(&cfg).expect("feasible");
    assert_ne!(short, long, "4x longer outputs must change the estimate");
    assert!(long.latency > short.latency);
}
