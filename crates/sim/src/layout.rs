//! Pipeline layout: mapping GPUs to stages under partial tensor parallelism.

use exegpt_dist::convert::{lossless_f64, trunc_usize};
use serde::{Deserialize, Serialize};

use crate::config::TpConfig;
use crate::error::SimError;

/// One pipeline stage: a single GPU or a fused tensor-parallel group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Tensor-parallel degree inside the stage (1 for a single GPU).
    pub tp: usize,
    /// First GPU id (within the pipeline's GPU range) of this stage.
    pub first_gpu: usize,
    /// Number of GPUs in the stage (= `tp`).
    pub gpus: usize,
    /// Relative processing speed of the stage (single GPU = 1.0).
    pub speed: f64,
}

/// The pipeline structure induced by a GPU count and a partial-TP setting
/// (paper Figure 4d): `tp.gpus / tp.degree` fused stages followed by
/// `n_gpus − tp.gpus` single-GPU stages.
///
/// Layers are allocated to stages proportionally to measured stage speed so
/// that stage times balance; [`PipelineLayout::allocate_layers`] performs
/// the integer split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineLayout {
    stages: Vec<Stage>,
    gpus_per_node: usize,
}

impl PipelineLayout {
    /// Builds the stage structure for `n_gpus` GPUs under `tp`.
    ///
    /// `tp_speedup` is the measured relative speed of a fused stage versus a
    /// single GPU (i.e. `t_layer(tp=1) / t_layer(tp=degree)` at the
    /// schedule's operating point); it sizes the layer allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `n_gpus == 0`, the TP group
    /// size does not divide `tp.gpus`, or `tp.gpus > n_gpus`.
    pub fn build(
        n_gpus: usize,
        tp: TpConfig,
        tp_speedup: f64,
        gpus_per_node: usize,
    ) -> Result<Self, SimError> {
        if n_gpus == 0 {
            return Err(SimError::InvalidConfig {
                what: "n_gpus",
                why: "pipeline needs at least one gpu".to_string(),
            });
        }
        let mut stages = Vec::new();
        let mut next_gpu = 0usize;
        if !tp.is_none() {
            if !tp.gpus.is_multiple_of(tp.degree) {
                return Err(SimError::InvalidConfig {
                    what: "tp",
                    why: format!("{} gpus is not a multiple of degree {}", tp.gpus, tp.degree),
                });
            }
            if tp.gpus > n_gpus {
                return Err(SimError::InvalidConfig {
                    what: "tp",
                    why: format!("tp covers {} gpus but the pipeline has {n_gpus}", tp.gpus),
                });
            }
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
            if !(tp_speedup > 0.0) {
                return Err(SimError::InvalidConfig {
                    what: "tp_speedup",
                    why: "must be positive".to_string(),
                });
            }
            for _ in 0..tp.gpus / tp.degree {
                stages.push(Stage {
                    tp: tp.degree,
                    first_gpu: next_gpu,
                    gpus: tp.degree,
                    speed: tp_speedup,
                });
                next_gpu += tp.degree;
            }
        }
        while next_gpu < n_gpus {
            stages.push(Stage { tp: 1, first_gpu: next_gpu, gpus: 1, speed: 1.0 });
            next_gpu += 1;
        }
        Ok(Self { stages, gpus_per_node: gpus_per_node.max(1) })
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total GPUs across all stages.
    pub fn total_gpus(&self) -> usize {
        self.stages.iter().map(|s| s.gpus).sum()
    }

    /// The stages in pipeline order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Whether the handoff between stage `i` and `i + 1` stays inside one
    /// node (GPU ids are assigned contiguously from the pipeline's base).
    pub fn boundary_intra_node(&self, i: usize) -> bool {
        if i + 1 >= self.stages.len() {
            return true;
        }
        let a = self.stages[i].first_gpu + self.stages[i].gpus - 1;
        let b = self.stages[i + 1].first_gpu;
        a / self.gpus_per_node == b / self.gpus_per_node
    }

    /// Splits `total_layers` across stages proportionally to stage speed
    /// (largest-remainder rounding, every stage at least one layer).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if there are fewer layers than
    /// stages.
    pub fn allocate_layers(&self, total_layers: usize) -> Result<Vec<usize>, SimError> {
        let n = self.stages.len();
        if total_layers < n {
            return Err(SimError::InvalidConfig {
                what: "layers",
                why: format!("{total_layers} layers cannot fill {n} stages"),
            });
        }
        let speed_sum: f64 = self.stages.iter().map(|s| s.speed).sum();
        // Give every stage one layer up front, split the rest by speed.
        let spare = total_layers - n;
        let ideal: Vec<f64> =
            self.stages.iter().map(|s| lossless_f64(spare) * s.speed / speed_sum).collect();
        let mut counts: Vec<usize> = ideal.iter().map(|&x| trunc_usize(x)).collect();
        let mut assigned: usize = counts.iter().sum();
        // Largest remainders get the leftover layers.
        let mut rema: Vec<(usize, f64)> =
            ideal.iter().enumerate().map(|(i, &x)| (i, x - x.floor())).collect();
        rema.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut k = 0;
        while assigned < spare {
            counts[rema[k % n].0] += 1;
            assigned += 1;
            k += 1;
        }
        for c in &mut counts {
            *c += 1;
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_tp_is_one_stage_per_gpu() {
        let l = PipelineLayout::build(4, TpConfig::none(), 1.0, 8).expect("valid");
        assert_eq!(l.num_stages(), 4);
        assert!(l.stages().iter().all(|s| s.tp == 1 && s.gpus == 1));
        assert_eq!(l.total_gpus(), 4);
    }

    #[test]
    fn partial_tp_reduces_stage_count() {
        // 8 GPUs, TP=2 on 4 of them: 2 fused stages + 4 singles = 6 stages.
        let l = PipelineLayout::build(8, TpConfig { degree: 2, gpus: 4 }, 1.8, 8).expect("valid");
        assert_eq!(l.num_stages(), 6);
        assert_eq!(l.total_gpus(), 8);
        assert_eq!(l.stages()[0].tp, 2);
        assert_eq!(l.stages()[2].tp, 1);
    }

    #[test]
    fn full_tp_is_single_stage() {
        let l = PipelineLayout::build(4, TpConfig::full(4, 4), 3.2, 8).expect("valid");
        assert_eq!(l.num_stages(), 1);
    }

    #[test]
    fn rejects_bad_tp() {
        assert!(PipelineLayout::build(0, TpConfig::none(), 1.0, 8).is_err());
        assert!(PipelineLayout::build(8, TpConfig { degree: 2, gpus: 3 }, 1.5, 8).is_err());
        assert!(PipelineLayout::build(4, TpConfig { degree: 2, gpus: 8 }, 1.5, 8).is_err());
        assert!(PipelineLayout::build(4, TpConfig { degree: 2, gpus: 2 }, 0.0, 8).is_err());
    }

    #[test]
    fn layer_allocation_is_exact_and_positive() {
        let l = PipelineLayout::build(8, TpConfig { degree: 4, gpus: 4 }, 3.0, 8).expect("valid");
        // 1 fused stage (speed 3) + 4 singles = 5 stages.
        let alloc = l.allocate_layers(40).expect("enough layers");
        assert_eq!(alloc.iter().sum::<usize>(), 40);
        assert!(alloc.iter().all(|&c| c >= 1));
        // The fused stage gets roughly 3x the layers of a single stage.
        assert!(alloc[0] > 2 * alloc[1]);
    }

    #[test]
    fn too_few_layers_is_an_error() {
        let l = PipelineLayout::build(8, TpConfig::none(), 1.0, 8).expect("valid");
        assert!(l.allocate_layers(7).is_err());
        assert!(l.allocate_layers(8).is_ok());
    }

    #[test]
    fn boundary_node_detection() {
        let l = PipelineLayout::build(16, TpConfig::none(), 1.0, 8).expect("valid");
        assert!(l.boundary_intra_node(0));
        assert!(l.boundary_intra_node(6));
        assert!(!l.boundary_intra_node(7), "gpu7 -> gpu8 crosses nodes");
        assert!(l.boundary_intra_node(15), "past the end counts as intra");
    }

    #[test]
    fn even_split_when_speeds_equal() {
        let l = PipelineLayout::build(4, TpConfig::none(), 1.0, 8).expect("valid");
        assert_eq!(l.allocate_layers(40).expect("fits"), vec![10, 10, 10, 10]);
        let alloc = l.allocate_layers(42).expect("fits");
        assert_eq!(alloc.iter().sum::<usize>(), 42);
        assert!(alloc.iter().all(|&c| c == 10 || c == 11));
    }
}
