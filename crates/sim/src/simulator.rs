//! The simulator facade and shared helpers.

use std::sync::Arc;

use exegpt_cluster::ClusterSpec;
use exegpt_dist::convert::{lossless_f64, trunc_u64};
use exegpt_model::{LayerKind, ModelConfig, ModelKind};
use exegpt_profiler::LayerProfile;
use exegpt_units::Tokens;

use crate::cache::{EvalCache, EvalCacheStats, RraPlanKey};
use crate::config::{RraConfig, ScheduleConfig, TpConfig, WaaConfig, Workload};
use crate::error::SimError;
use crate::estimate::Estimate;
use crate::{rra, waa};

/// Fraction of device memory usable by the schedule (the rest is reserved
/// for workspace buffers, fragmentation and the framework, as in real
/// deployments).
pub(crate) const WORKSPACE_FACTOR: f64 = 0.92;

/// Headroom multiplier on the expected steady-state KV pool, covering the
/// transient peaks between early-termination compactions.
pub(crate) const KV_HEADROOM: f64 = 1.25;

/// XSimulator: estimates throughput, latency and memory of a schedule
/// configuration from profiled layer times (paper §3, §6).
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Simulator {
    model: ModelConfig,
    cluster: ClusterSpec,
    profile: Arc<LayerProfile>,
    workload: Workload,
    /// Memoized completion analyses, pipeline plans and full estimates.
    /// Valid for this exact (model, profile, workload) tuple, so it is
    /// shared by `clone()` *and* [`with_cluster`] (cluster-dependent layers
    /// carry [`cluster_key`](Self::cluster_key) in their keys) but replaced
    /// by [`with_workload`].
    ///
    /// [`with_workload`]: Simulator::with_workload
    /// [`with_cluster`]: Simulator::with_cluster
    cache: Arc<EvalCache>,
    /// `cluster.fingerprint()`, precomputed: the cache key component that
    /// scopes cluster-dependent entries to this topology.
    cluster_key: u64,
}

impl Simulator {
    /// Creates a simulator for a (model, cluster, profile, workload) tuple.
    pub fn new(
        model: ModelConfig,
        cluster: ClusterSpec,
        profile: Arc<LayerProfile>,
        workload: Workload,
    ) -> Self {
        let cluster_key = cluster.fingerprint();
        Self { model, cluster, profile, workload, cache: Arc::new(EvalCache::new()), cluster_key }
    }

    /// The simulated model.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The layer profile driving all time estimates.
    pub fn profile(&self) -> &Arc<LayerProfile> {
        &self.profile
    }

    /// The sequence-length workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Returns a simulator for the same system under a different workload
    /// (used by the distribution-shift experiments, Figure 11).
    pub fn with_workload(&self, workload: Workload) -> Self {
        // A fresh cache, not the shared one: every cached value depends on
        // the workload's length distributions.
        Self { workload, cache: Arc::new(EvalCache::new()), ..self.clone() }
    }

    /// Returns a simulator for the same model and workload on a different
    /// cluster (used for fault-degraded topologies). The layer profile is
    /// reused: it is valid as long as the new cluster's device and link
    /// *types* match the profiled ones, which holds for subclusters and
    /// degraded variants of the original.
    ///
    /// The evaluation cache is *shared*, not flushed: cluster-dependent
    /// entries (pipeline plans, full estimates) are keyed by the cluster's
    /// [`fingerprint`](ClusterSpec::fingerprint), so a swap only re-derives
    /// those, keeps the cluster-independent completion analyses and decode
    /// grids warm, and turns a later swap back to the original topology
    /// (fault recovery) into pure cache hits.
    pub fn with_cluster(&self, cluster: ClusterSpec) -> Self {
        let cluster_key = cluster.fingerprint();
        Self { cluster, cache: Arc::clone(&self.cache), cluster_key, ..self.clone() }
    }

    /// Point-in-time counters of the shared evaluation cache (hits, misses,
    /// distinct entries).
    pub fn cache_stats(&self) -> EvalCacheStats {
        self.cache.stats()
    }

    /// The evaluation cache shared by everything this simulator (and its
    /// clones) computes for the current workload.
    pub(crate) fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// The precomputed cluster fingerprint scoping cluster-dependent cache
    /// entries (see [`cache`](Self::cache)).
    pub(crate) fn cluster_key(&self) -> u64 {
        self.cluster_key
    }

    /// Evaluates either schedule family.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is invalid, does not fit in
    /// memory, or cannot reach a steady state.
    pub fn evaluate(&self, cfg: &ScheduleConfig) -> Result<Estimate, SimError> {
        match cfg {
            ScheduleConfig::Rra(c) => self.evaluate_rra(c),
            ScheduleConfig::Waa(c) => self.evaluate_waa(c),
        }
    }

    /// Evaluates an RRA schedule (see [`RraConfig`]).
    ///
    /// # Errors
    ///
    /// See [`Simulator::evaluate`].
    pub fn evaluate_rra(&self, cfg: &RraConfig) -> Result<Estimate, SimError> {
        self.cache
            .estimate(self.cluster_key, ScheduleConfig::Rra(*cfg), || rra::evaluate(self, cfg))
    }

    /// Evaluates a WAA schedule (see [`WaaConfig`]).
    ///
    /// # Errors
    ///
    /// See [`Simulator::evaluate`].
    pub fn evaluate_waa(&self, cfg: &WaaConfig) -> Result<Estimate, SimError> {
        self.cache
            .estimate(self.cluster_key, ScheduleConfig::Waa(*cfg), || waa::evaluate(self, cfg))
    }

    /// Resolves the pipeline plan (layout + per-stage layer allocations) of
    /// an RRA configuration whose decode pool size is `b_d` (as returned in
    /// [`Estimate`](crate::Estimate)`::breakdown.decode_batch`). The runner
    /// uses the same plan the simulator timed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for structurally invalid
    /// configurations.
    pub fn rra_plan(&self, cfg: &RraConfig, b_d: usize) -> Result<crate::rra::RraPlan, SimError> {
        let key = RraPlanKey::new(cfg.b_e, b_d, cfg.tp);
        self.cache
            .rra_plan(self.cluster_key, key, || crate::rra::plan(self, cfg, b_d))
            .map(|p| (*p).clone())
    }

    /// Resolves the group split and pipeline plans of a WAA configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for structurally invalid
    /// configurations.
    pub fn waa_plan(&self, cfg: &WaaConfig) -> Result<crate::waa::WaaPlan, SimError> {
        self.cache
            .waa_plan(self.cluster_key, *cfg, || crate::waa::plan(self, cfg))
            .map(|p| (*p).clone())
    }

    /// Usable per-GPU memory in bytes (device capacity minus the workspace
    /// reserve).
    pub fn usable_capacity(&self) -> u64 {
        trunc_u64(lossless_f64(self.cluster.gpu().mem_bytes()) * WORKSPACE_FACTOR)
    }

    /// Expected per-query KV context accounted per decode-pool slot,
    /// including the compaction headroom.
    pub fn kv_ctx_tokens(&self) -> Tokens {
        self.workload.mean_decode_context() * KV_HEADROOM
    }

    /// Measured speedup of a fused TP stage over a single GPU at this
    /// schedule's operating point (blend of encode and decode work).
    /// Dimensionless ratio, hence crate-private under the unit-safety policy.
    ///
    /// # Errors
    ///
    /// Propagates profile-lookup failures (unprofiled degree).
    pub(crate) fn tp_speedup(
        &self,
        tp: TpConfig,
        enc_batch: f64,
        dec_batch: f64,
    ) -> Result<f64, SimError> {
        if tp.is_none() {
            return Ok(1.0);
        }
        let s_e = self.workload.input().mean();
        let ctx = self.workload.mean_decode_context().as_f64();
        let p = &self.profile;
        let e1 = p.encode_layer_time(enc_batch, s_e, 1)?;
        let ed = p.encode_layer_time(enc_batch, s_e, tp.degree)?;
        let d1 = p.decode_layer_time(dec_batch, ctx, s_e, 1)?;
        let dd = p.decode_layer_time(dec_batch, ctx, s_e, tp.degree)?;
        Ok(((e1 + d1) / (ed + dd)).max(0.05))
    }

    /// Parameter bytes of one layer used for encoding work.
    pub fn enc_layer_bytes(&self) -> u64 {
        let kind = match self.model.kind() {
            ModelKind::EncoderDecoder => LayerKind::Encoder,
            ModelKind::DecoderOnly => LayerKind::Decoder,
        };
        self.model.layer_run_param_bytes(kind, 1)
    }

    /// Parameter bytes of one decoder layer.
    pub fn dec_layer_bytes(&self) -> u64 {
        self.model.layer_run_param_bytes(LayerKind::Decoder, 1)
    }

    /// Number of layers traversed during the encoding phase.
    pub fn enc_layers_total(&self) -> usize {
        match self.model.kind() {
            ModelKind::EncoderDecoder => self.model.num_encoder_layers(),
            ModelKind::DecoderOnly => self.model.num_layers(),
        }
    }

    /// Number of layers traversed per decoding iteration.
    pub fn dec_layers_total(&self) -> usize {
        self.model.num_decoder_layers()
    }
}
