//! Closed-form timeline of the RRA (Round-Robin Allocation) schedule
//! (paper §4.1 Figure 4a, §6 "Simulating RRA Schedule").
//!
//! Every GPU owns a round-robin slice of the model's encoders and decoders.
//! Execution alternates one *encoding phase* (admitting `B_E` new queries)
//! with `N_D` *decoding iterations* over the merged pool of `B_D` queries.
//! Early termination shrinks the active pool within a phase according to
//! the completion distribution `P_D(U)`; the next encoding phase refills it.

use exegpt_dist::convert::{ceil_usize, lossless_f64, trunc_u64, trunc_usize, widen_u64};
use exegpt_model::{MemoryFootprint, ModelKind};
use exegpt_units::Secs;

use crate::cache::{DecStageKey, RraPlanKey};
use crate::config::RraConfig;
use crate::error::SimError;
use crate::estimate::{Breakdown, Estimate, MemoryReport};
use crate::layout::PipelineLayout;
use crate::simulator::Simulator;

pub(crate) fn evaluate(sim: &Simulator, cfg: &RraConfig) -> Result<Estimate, SimError> {
    if cfg.b_e == 0 {
        return Err(SimError::InvalidConfig { what: "b_e", why: "must be at least 1".into() });
    }
    if cfg.n_d == 0 {
        return Err(SimError::InvalidConfig { what: "n_d", why: "must be at least 1".into() });
    }
    let w = sim.workload();
    let profile = sim.profile();

    // Steady-state decode pool: B_D such that expected completions per phase
    // refill exactly B_E slots (paper §6). The completion analysis depends
    // only on N_D, so it comes from the simulator's evaluation cache.
    let info = sim.cache().completion(w.output(), cfg.n_d)?;
    let completion = &info.dist;
    let b_d = completion.decode_batch_for(cfg.b_e).ok_or_else(|| SimError::NoSteadyState {
        why: format!("no query completes within N_D = {} iterations", cfg.n_d),
    })?;
    if b_d > profile.max_batch() {
        return Err(SimError::InvalidConfig {
            what: "b_e",
            why: format!(
                "derived decode batch {b_d} exceeds the profiled maximum {}",
                profile.max_batch()
            ),
        });
    }

    // Pipeline structure under partial TP; layers allocated by stage speed.
    // Cached by (B_E, B_D, TP): B_E matters because the TP speedup is taken
    // at the schedule's encode operating point.
    let plan =
        sim.cache().rra_plan(sim.cluster_key(), RraPlanKey::new(cfg.b_e, b_d, cfg.tp), || {
            self::plan(sim, cfg, b_d)
        })?;
    let (layout, enc_alloc, dec_alloc) = (&plan.layout, &plan.enc_alloc, &plan.dec_alloc);
    let stages = layout.num_stages();

    let s_e = w.input().mean();
    let ctx = w.mean_decode_context().as_f64();

    // --- Encoding phase -------------------------------------------------
    // B_E is split into one micro-batch per stage to fill the pipeline.
    let m_e = stages.min(cfg.b_e).max(1);
    let enc_micro = lossless_f64(cfg.b_e) / lossless_f64(m_e);
    let mut enc_stage_times = Vec::with_capacity(stages);
    for (i, stage) in layout.stages().iter().enumerate() {
        let t_layer = profile.encode_layer_time(enc_micro, s_e, stage.tp)?;
        let handoff = profile.handoff_time(enc_micro * s_e, layout.boundary_intra_node(i));
        enc_stage_times.push(t_layer * lossless_f64(enc_alloc[i]) + handoff);
    }
    let enc_bottleneck = max_secs(&enc_stage_times);
    let t_enc: Secs =
        enc_stage_times.iter().sum::<Secs>() + enc_bottleneck * (lossless_f64(m_e) - 1.0);

    // --- Decoding phase: N_D iterations over the shrinking pool ----------
    // The pool circulates as one micro-batch per stage; iteration `u` runs
    // with the expected active pool after earlier completions. The survival
    // series is precomputed with the completion analysis (O(N_D) total),
    // and iterations whose survival factor is bit-identical — long runs of
    // them exist wherever P_D(U) has zero mass — share one per-stage
    // bottleneck computation.
    let m_d = stages.min(b_d).max(1);
    // Stages with the same TP degree and boundary link share their layer
    // time and handoff at any micro-batch size, so within such a class only
    // the largest layer allocation can be the bottleneck. Collapsing the
    // per-iteration stage scan to one entry per class (typically 1–2 instead
    // of one per GPU) removes most profile lookups from the hot loop.
    let mut classes: Vec<(usize, bool, usize)> = Vec::with_capacity(2);
    for (i, stage) in layout.stages().iter().enumerate() {
        let intra = layout.boundary_intra_node(i);
        match classes.iter_mut().find(|(tp, link, _)| *tp == stage.tp && *link == intra) {
            Some(class) => class.2 = class.2.max(dec_alloc[i]),
            None => classes.push((stage.tp, intra, dec_alloc[i])),
        }
    }
    // Each class's bottleneck term `alloc · t_layer(µ) + handoff(µ)` is
    // piecewise-linear in the micro-batch size, so it collapses into one
    // cached grid: a single lookup per class per iteration. Outside the
    // grid's sampled range the per-component zero clamps diverge from the
    // collapsed sum, so those (rare, tiny-batch) points fall back to the
    // direct lookups.
    let mut class_grids = Vec::with_capacity(classes.len());
    for &(tp, intra, alloc) in &classes {
        let grid = sim.cache().dec_stage_grid(DecStageKey { tp, intra, alloc }, || {
            Ok(profile.decode_stage_grid(ctx, s_e, tp, lossless_f64(alloc), intra)?)
        })?;
        let lo = grid.xs().first().copied().unwrap_or(0.0);
        let hi = grid.xs().last().copied().unwrap_or(lo);
        class_grids.push((grid, lo, hi));
    }
    let survival = &info.survival;
    let mut t_dec = Secs::ZERO;
    let mut fill = Secs::ZERO;
    let mut u = 0;
    while u < cfg.n_d {
        let s = survival[u];
        let mut run = 1;
        while u + run < cfg.n_d && survival[u + run].to_bits() == s.to_bits() {
            run += 1;
        }
        let active = (lossless_f64(b_d) * s).max(1.0);
        let micro = active / lossless_f64(m_d);
        let mut worst = Secs::ZERO;
        for ((grid, lo, hi), &(tp, intra, alloc)) in class_grids.iter().zip(&classes) {
            let t = if micro >= *lo && micro <= *hi {
                Secs::new(grid.eval(micro))
            } else {
                profile.decode_layer_time(micro, ctx, s_e, tp)? * lossless_f64(alloc)
                    + profile.handoff_time(micro, intra)
            };
            worst = worst.max(t);
        }
        if u == 0 {
            fill = worst * (lossless_f64(stages) - 1.0);
        }
        t_dec += worst * (lossless_f64(run) * lossless_f64(m_d));
        u += run;
    }
    t_dec += fill;

    let t_phase = t_enc + t_dec;
    let throughput = lossless_f64(cfg.b_e) / t_phase.as_secs();
    // A query of 99th-percentile length spans ceil(L99 / N_D) full phases.
    let phases = lossless_f64(w.l99().div_ceil(cfg.n_d));
    let latency = t_phase * phases;

    let memory = memory_report(sim, layout, enc_alloc, dec_alloc, b_d, enc_micro * s_e)?;
    check_memory(&memory)?;

    Ok(Estimate {
        latency,
        throughput,
        memory,
        breakdown: Breakdown {
            encode_time: t_enc,
            decode_time: t_dec,
            period: t_phase,
            stages,
            decode_batch: b_d,
        },
    })
}

/// The resolved pipeline structure of an RRA schedule: the stage layout and
/// the per-stage layer allocations for the encoding and decoding passes.
#[derive(Debug, Clone, PartialEq)]
pub struct RraPlan {
    /// Stage structure (partial TP applied).
    pub layout: PipelineLayout,
    /// Layers each stage traverses during encoding.
    pub enc_alloc: Vec<usize>,
    /// Layers each stage traverses per decoding iteration.
    pub dec_alloc: Vec<usize>,
}

/// Builds the pipeline plan for an RRA configuration with a known decode
/// pool size. For encoder–decoder models each stage gets a share of the
/// encoders *and* of the decoders (paper Figure 3, RRA); decoder-only
/// models use one shared allocation for both passes.
pub(crate) fn plan(sim: &Simulator, cfg: &RraConfig, b_d: usize) -> Result<RraPlan, SimError> {
    let n = sim.cluster().total_gpus();
    let stages_f = if cfg.tp.is_none() {
        lossless_f64(n)
    } else if cfg.tp.degree > 0 && cfg.tp.gpus.is_multiple_of(cfg.tp.degree) {
        lossless_f64(((n.saturating_sub(cfg.tp.gpus)) + cfg.tp.gpus / cfg.tp.degree).max(1))
    } else {
        lossless_f64(n)
    };
    let speedup = sim.tp_speedup(
        cfg.tp,
        (lossless_f64(cfg.b_e) / stages_f).max(1.0),
        lossless_f64(b_d) / stages_f.max(1.0),
    )?;
    let layout = PipelineLayout::build(n, cfg.tp, speedup, sim.cluster().gpus_per_node())?;
    let (enc_alloc, dec_alloc) = match sim.model().kind() {
        ModelKind::EncoderDecoder => (
            layout.allocate_layers(sim.enc_layers_total())?,
            layout.allocate_layers(sim.dec_layers_total())?,
        ),
        ModelKind::DecoderOnly => {
            let alloc = layout.allocate_layers(sim.model().num_layers())?;
            (alloc.clone(), alloc)
        }
    };
    Ok(RraPlan { layout, enc_alloc, dec_alloc })
}

fn memory_report(
    sim: &Simulator,
    layout: &PipelineLayout,
    enc_alloc: &[usize],
    dec_alloc: &[usize],
    b_d: usize,
    enc_tokens: f64,
) -> Result<MemoryReport, SimError> {
    let m = sim.model();
    let kv_ctx = sim.kv_ctx_tokens();
    let mut worst = MemoryFootprint::default();
    for (i, stage) in layout.stages().iter().enumerate() {
        let params = match m.kind() {
            // Encoder-decoder stages hold their encoder and decoder slices.
            ModelKind::EncoderDecoder => {
                widen_u64(enc_alloc[i]) * sim.enc_layer_bytes()
                    + widen_u64(dec_alloc[i]) * sim.dec_layer_bytes()
            }
            // Decoder-only stages hold one copy serving both passes.
            ModelKind::DecoderOnly => widen_u64(dec_alloc[i]) * sim.dec_layer_bytes(),
        } / widen_u64(stage.tp);
        // Self-attention KV for the stage's decoder layers, sharded by TP.
        let kv_self = trunc_u64(
            lossless_f64(b_d)
                * kv_ctx.as_f64()
                * lossless_f64(m.kv_bytes_per_token_per_layer())
                * lossless_f64(dec_alloc[i])
                / lossless_f64(stage.tp),
        );
        // Cross-attention KV over the cached inputs (encoder-decoder only).
        let kv_cross = trunc_u64(
            lossless_f64(m.cross_kv_cache_bytes(
                b_d,
                trunc_usize(sim.workload().input().mean()),
                1,
            )) * lossless_f64(dec_alloc[i])
                / lossless_f64(stage.tp),
        );
        let kv = kv_self + kv_cross;
        let act = m.activation_bytes(1, ceil_usize(enc_tokens)) / widen_u64(stage.tp);
        let fp = MemoryFootprint { param_bytes: params, kv_bytes: kv, activation_bytes: act };
        if fp.total() > worst.total() {
            worst = fp;
        }
    }
    Ok(MemoryReport { encoder_gpu: worst, decoder_gpu: worst, capacity: sim.usable_capacity() })
}

fn check_memory(report: &MemoryReport) -> Result<(), SimError> {
    if report.peak() > report.capacity {
        return Err(SimError::OutOfMemory {
            role: "worker",
            needed: report.peak(),
            capacity: report.capacity,
        });
    }
    Ok(())
}

fn max_secs(xs: &[Secs]) -> Secs {
    xs.iter().copied().fold(Secs::ZERO, |acc, t| acc.max(t))
}
