//! Shared, concurrency-safe memoization for simulator evaluations.
//!
//! One scheduling run evaluates thousands of configurations, and the
//! closed-form estimates repeat a lot of work across them: the completion
//! analysis `P_D(U)` depends only on `N_D`, pipeline plans depend only on
//! the batch geometry and TP setting, and the branch-and-bound searches of
//! different `(policy, TP, B_m)` tasks frequently land on identical
//! [`ScheduleConfig`]s. This module keeps one [`EvalCache`] per
//! [`Simulator`](crate::Simulator) *workload*:
//! [`Simulator::with_workload`](crate::Simulator::with_workload) swaps in a
//! fresh cache so no per-workload entry can leak across workloads (every
//! layer depends on the length distributions).
//!
//! Cluster swaps are cheaper than workload swaps: the completion analyses
//! and the collapsed decode grids are *cluster-independent* (they derive
//! from the workload and the layer profile, which degraded topologies
//! reuse), while pipeline plans and full estimates are not. The
//! cluster-dependent layers therefore carry a cluster fingerprint in their
//! key, and [`with_cluster`](crate::Simulator::with_cluster) *shares* the
//! cache: a fault-driven replan onto survivors keeps every
//! cluster-independent entry warm, only re-deriving plans and estimates,
//! and a recovery replan onto the original topology hits the original
//! entries outright. Entries of departed fingerprints linger until the next
//! workload swap — an accepted cost, bounded by the number of distinct
//! topologies a fault schedule can visit.
//!
//! Concurrency: maps are sharded `RwLock<HashMap>`s so the scheduler's
//! search pool shares one cache without serializing on a single lock. On a
//! racing miss both threads compute (computation is pure), and the insert
//! that loses the race is counted as a hit — making the hit/miss totals a
//! function of the evaluated multiset only, independent of thread
//! interleaving.

// Matches the xlint::allow(D1) pragmas below (see clippy.toml).
#![allow(clippy::disallowed_types)]

// xlint::allow(D1, sharded FNV cache is keyed lookup only; iteration order never observed)
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use exegpt_dist::convert::narrow_usize;
use exegpt_dist::{CompletionDist, LengthDist};
use exegpt_profiler::Grid1D;

use crate::config::{ScheduleConfig, TpConfig, WaaConfig};
use crate::error::SimError;
use crate::estimate::Estimate;
use crate::rra::RraPlan;
use crate::waa::WaaPlan;

/// Shards per map: enough to keep the search pool's workers from
/// contending, small enough to stay cheap to allocate per workload.
const SHARDS: usize = 8;

/// FNV-1a. Cache keys are small config structs on the hot path of every
/// simulator evaluation, where SipHash's per-call overhead is measurable;
/// the keys are program-generated, so hash-flooding resistance buys nothing.
#[derive(Clone, Copy, Default)]
struct FnvBuildHasher;

struct FnvHasher(u64);

impl BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }
}

/// A hash map split into independently locked shards.
struct ShardedMap<K, V> {
    // xlint::allow(D1, sharded FNV cache is keyed lookup only; iteration order never observed)
    shards: Vec<RwLock<HashMap<K, V, FnvBuildHasher>>>,
    hasher: FnvBuildHasher,
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    fn new() -> Self {
        Self {
            // xlint::allow(D1, sharded FNV cache is keyed lookup only; iteration order never observed)
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::default())).collect(),
            hasher: FnvBuildHasher,
        }
    }

    // xlint::allow(D1, sharded FNV cache is keyed lookup only; iteration order never observed)
    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V, FnvBuildHasher>> {
        let idx = narrow_usize(self.hasher.hash_one(key)) % SHARDS;
        &self.shards[idx]
    }

    fn get(&self, key: &K) -> Option<V> {
        self.shard(key).read().unwrap_or_else(|e| e.into_inner()).get(key).cloned()
    }

    /// Inserts unless the key appeared meanwhile; reports whether this call
    /// actually inserted (`false` = lost a race, treat as a hit).
    fn insert_if_absent(&self, key: K, value: V) -> bool {
        let mut shard = self.shard(&key).write().unwrap_or_else(|e| e.into_inner());
        match shard.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len()).sum()
    }
}

/// Completion analysis for one `N_D`, with the per-iteration survival
/// series precomputed so the RRA decode loop is O(N_D) instead of O(N_D²).
pub(crate) struct CompletionInfo {
    /// The distribution itself (for `decode_batch_for` etc.).
    pub dist: CompletionDist,
    /// `survival[u-1]` = expected fraction of the pool still active at the
    /// start of decode iteration `u`.
    pub survival: Vec<f64>,
}

/// Key of the RRA plan cache. `b_e` is part of the key (not just the TP
/// setting and pool size) because the plan's TP speedup is measured at the
/// schedule's encode operating point, which scales with `B_E`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct RraPlanKey {
    pub b_e: usize,
    pub b_d: usize,
    pub tp: TpConfig,
}

impl RraPlanKey {
    /// Canonical key for a plan request. Without tensor parallelism the
    /// plan is independent of the batch geometry (the TP speedup never
    /// enters the layout), so every TP-none configuration shares one entry.
    pub(crate) fn new(b_e: usize, b_d: usize, tp: TpConfig) -> Self {
        if tp.is_none() {
            Self { b_e: 0, b_d: 0, tp }
        } else {
            Self { b_e, b_d, tp }
        }
    }
}

/// Key of the collapsed decode-bottleneck grids: one grid per
/// (TP degree, boundary link, layer allocation) stage class. The workload's
/// context/input lengths are fixed per cache, so they are not part of the
/// key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct DecStageKey {
    pub tp: usize,
    pub intra: bool,
    pub alloc: usize,
}

/// Point-in-time cache counters, exposed through
/// [`Simulator::cache_stats`](crate::Simulator::cache_stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalCacheStats {
    /// Full-estimate lookups answered from the cache.
    pub hits: usize,
    /// Full-estimate lookups that had to run the closed-form evaluation.
    pub misses: usize,
    /// Distinct entries across all cache layers (completion, plans,
    /// estimates).
    pub entries: usize,
}

/// The shared evaluation cache: completion analyses, pipeline plans, and
/// full estimates. One instance per (simulator, workload); see the module
/// docs for the invalidation contract.
pub(crate) struct EvalCache {
    completion: ShardedMap<usize, Arc<CompletionInfo>>,
    dec_stage: ShardedMap<DecStageKey, Result<Arc<Grid1D>, SimError>>,
    rra_plans: ShardedMap<(u64, RraPlanKey), Result<Arc<RraPlan>, SimError>>,
    waa_plans: ShardedMap<(u64, WaaConfig), Result<Arc<WaaPlan>, SimError>>,
    estimates: ShardedMap<(u64, ScheduleConfig), Result<Estimate, SimError>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl EvalCache {
    pub(crate) fn new() -> Self {
        Self {
            completion: ShardedMap::new(),
            dec_stage: ShardedMap::new(),
            rra_plans: ShardedMap::new(),
            waa_plans: ShardedMap::new(),
            estimates: ShardedMap::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    pub(crate) fn stats(&self) -> EvalCacheStats {
        EvalCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.completion.len()
                + self.dec_stage.len()
                + self.rra_plans.len()
                + self.waa_plans.len()
                + self.estimates.len(),
        }
    }

    /// Completion analysis for `n_d` over `output`, built at most once per
    /// `n_d` for this cache's workload.
    ///
    /// # Errors
    ///
    /// Propagates [`CompletionDist::new`] failures (`n_d == 0`).
    pub(crate) fn completion(
        &self,
        output: &LengthDist,
        n_d: usize,
    ) -> Result<Arc<CompletionInfo>, SimError> {
        if let Some(info) = self.completion.get(&n_d) {
            return Ok(info);
        }
        let dist = CompletionDist::new(output, n_d)
            .map_err(|e| SimError::InvalidConfig { what: "n_d", why: e.to_string() })?;
        let survival = dist.survival_series();
        let info = Arc::new(CompletionInfo { dist, survival });
        self.completion.insert_if_absent(n_d, Arc::clone(&info));
        Ok(info)
    }

    /// Collapsed decode-bottleneck grid for one stage class, built at most
    /// once per (TP degree, link, allocation).
    pub(crate) fn dec_stage_grid(
        &self,
        key: DecStageKey,
        build: impl FnOnce() -> Result<Grid1D, SimError>,
    ) -> Result<Arc<Grid1D>, SimError> {
        if let Some(grid) = self.dec_stage.get(&key) {
            return grid;
        }
        let grid = build().map(Arc::new);
        self.dec_stage.insert_if_absent(key, grid.clone());
        grid
    }

    /// RRA pipeline plan, built at most once per `(cluster, B_E, B_D, TP)`.
    pub(crate) fn rra_plan(
        &self,
        cluster: u64,
        key: RraPlanKey,
        build: impl FnOnce() -> Result<RraPlan, SimError>,
    ) -> Result<Arc<RraPlan>, SimError> {
        let key = (cluster, key);
        if let Some(plan) = self.rra_plans.get(&key) {
            return plan;
        }
        let plan = build().map(Arc::new);
        self.rra_plans.insert_if_absent(key, plan.clone());
        plan
    }

    /// WAA group split and pipeline plan, built at most once per
    /// `(cluster, config)`.
    pub(crate) fn waa_plan(
        &self,
        cluster: u64,
        key: WaaConfig,
        build: impl FnOnce() -> Result<WaaPlan, SimError>,
    ) -> Result<Arc<WaaPlan>, SimError> {
        let key = (cluster, key);
        if let Some(plan) = self.waa_plans.get(&key) {
            return plan;
        }
        let plan = build().map(Arc::new);
        self.waa_plans.insert_if_absent(key, plan.clone());
        plan
    }

    /// Full-estimate memo, keyed by `(cluster, config)`. Counts a hit for
    /// every lookup answered without running `eval`, including insert races
    /// lost to a concurrent miss, so the totals are deterministic for a
    /// deterministic evaluation multiset.
    pub(crate) fn estimate(
        &self,
        cluster: u64,
        key: ScheduleConfig,
        eval: impl FnOnce() -> Result<Estimate, SimError>,
    ) -> Result<Estimate, SimError> {
        let key = (cluster, key);
        if let Some(est) = self.estimates.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return est;
        }
        let est = eval();
        if self.estimates.insert_if_absent(key, est.clone()) {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RraConfig;

    fn dummy_estimate(latency: f64) -> Result<Estimate, SimError> {
        let fp = exegpt_model::MemoryFootprint::default();
        Ok(Estimate {
            latency: exegpt_units::Secs::new(latency),
            throughput: 1.0 / latency,
            memory: crate::estimate::MemoryReport { encoder_gpu: fp, decoder_gpu: fp, capacity: 0 },
            breakdown: crate::estimate::Breakdown {
                encode_time: exegpt_units::Secs::ZERO,
                decode_time: exegpt_units::Secs::ZERO,
                period: exegpt_units::Secs::new(latency),
                stages: 1,
                decode_batch: 1,
            },
        })
    }

    #[test]
    fn estimate_memo_counts_hits_and_misses() {
        let cache = EvalCache::new();
        let key = ScheduleConfig::Rra(RraConfig::new(4, 8, TpConfig::none()));
        let mut evals = 0;
        for _ in 0..3 {
            let est = cache
                .estimate(7, key, || {
                    evals += 1;
                    dummy_estimate(2.0)
                })
                .expect("ok");
            assert_eq!(est.latency, exegpt_units::Secs::new(2.0));
        }
        assert_eq!(evals, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn estimates_are_keyed_per_cluster() {
        let cache = EvalCache::new();
        let key = ScheduleConfig::Rra(RraConfig::new(4, 8, TpConfig::none()));
        let a = cache.estimate(1, key, || dummy_estimate(2.0)).expect("ok");
        // A different cluster fingerprint re-evaluates...
        let b = cache.estimate(2, key, || dummy_estimate(3.0)).expect("ok");
        assert_ne!(a.latency, b.latency);
        // ...while the original entry stays warm (recovery path).
        let again = cache.estimate(1, key, || dummy_estimate(9.0)).expect("ok");
        assert_eq!(again.latency, a.latency);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn errors_are_memoized_too() {
        let cache = EvalCache::new();
        let key = ScheduleConfig::Rra(RraConfig::new(1, 1, TpConfig::none()));
        let mut evals = 0;
        for _ in 0..2 {
            let r = cache.estimate(7, key, || {
                evals += 1;
                Err(SimError::InvalidConfig { what: "b_e", why: "test".into() })
            });
            assert!(r.is_err());
        }
        assert_eq!(evals, 1);
    }

    #[test]
    fn completion_info_is_shared_per_nd() {
        let cache = EvalCache::new();
        let out = LengthDist::truncated_normal(16.0, 8.0, 64).expect("valid");
        let a = cache.completion(&out, 8).expect("ok");
        let b = cache.completion(&out, 8).expect("ok");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.survival.len(), 8);
        assert_eq!(a.survival[0], 1.0);
        for u in 1..=8 {
            assert_eq!(a.survival[u - 1], a.dist.survival(u), "u={u}");
        }
    }
}
