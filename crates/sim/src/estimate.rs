//! Simulation results.

use exegpt_model::MemoryFootprint;
use exegpt_units::Secs;
use serde::{Deserialize, Serialize};

/// Per-GPU memory accounting of a schedule (drives Figure 9 and the
/// feasibility check).
///
/// For WAA the encoder- and decoder-group GPUs differ; for RRA (and the
/// baselines) the two entries are identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Footprint of one encoding-group GPU.
    pub encoder_gpu: MemoryFootprint,
    /// Footprint of one decoding-group GPU.
    pub decoder_gpu: MemoryFootprint,
    /// Usable capacity per GPU in bytes (after the workspace reserve).
    pub capacity: u64,
}

impl MemoryReport {
    /// The larger of the two per-GPU totals.
    pub fn peak(&self) -> u64 {
        self.encoder_gpu.total().max(self.decoder_gpu.total())
    }
}

/// Timeline decomposition of an estimate, useful for debugging schedules
/// and for the trade-off case study (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Time of one encoding phase / encode-pipeline period.
    pub encode_time: Secs,
    /// Time of one full decoding phase (RRA: `N_D` iterations; WAA: one
    /// pool iteration).
    pub decode_time: Secs,
    /// Steady-state period between consecutive batch completions.
    pub period: Secs,
    /// Number of pipeline stages (WAA: decoding-group stages).
    pub stages: usize,
    /// Derived decoding batch size `B_D`.
    pub decode_batch: usize,
}

/// The simulator's verdict on one schedule configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Time to generate the 99th-percentile-length output, including the
    /// query's own encoding (the paper's constrained quantity, §7.1).
    pub latency: Secs,
    /// Completed queries per second in steady state.
    pub throughput: f64,
    /// Per-GPU memory accounting.
    pub memory: MemoryReport,
    /// Timeline decomposition.
    pub breakdown: Breakdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_picks_the_larger_side() {
        let small = MemoryFootprint { param_bytes: 10, kv_bytes: 0, activation_bytes: 0 };
        let large = MemoryFootprint { param_bytes: 10, kv_bytes: 90, activation_bytes: 0 };
        let r = MemoryReport { encoder_gpu: small, decoder_gpu: large, capacity: 1000 };
        assert_eq!(r.peak(), 100);
    }
}
