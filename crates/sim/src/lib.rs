//! XSimulator: analytic timeline simulation of ExeGPT schedules (paper §6).
//!
//! Given a [`LayerProfile`](exegpt_profiler::LayerProfile) (per-layer times),
//! a [`Workload`] (input/output sequence-length distributions `P_E(S)` and
//! `P_D(S)`), and a schedule configuration, the simulator constructs the
//! steady-state execution timeline and reports an [`Estimate`]:
//!
//! * **throughput** — completed queries per second in steady state;
//! * **latency** — time to generate the 99th-percentile-length output
//!   sequence, the quantity the paper's latency bounds constrain (§7.1);
//! * **memory** — per-GPU parameter/KV/activation footprints, checked
//!   against device capacity (infeasible schedules are errors, which is how
//!   the paper's "NS" — not satisfiable — cases arise).
//!
//! Two schedule families are simulated:
//!
//! * [`RraConfig`] — Round-Robin Allocation: every GPU owns a slice of both
//!   encoders and decoders; the system alternates one encoding phase with
//!   `N_D` decoding iterations (paper §4.1, Figure 4a). Batch-size
//!   consistency across phases comes from the completion distribution
//!   `P_D(U)` (`exegpt_dist::CompletionDist`).
//! * [`WaaConfig`] — Workload-Aware Allocation: GPUs are split into a
//!   dedicated encoding group and a decoding group, sized by computation
//!   time (WAA-C) or memory (WAA-M); the two pipelines run asynchronously,
//!   coupled by the KV-cache handover (paper §4.1, Figures 3 and 4b–d).
//!
//! # Example
//!
//! ```
//! use exegpt_cluster::ClusterSpec;
//! use exegpt_dist::LengthDist;
//! use exegpt_model::ModelConfig;
//! use exegpt_profiler::{ProfileOptions, Profiler};
//! use exegpt_sim::{RraConfig, Simulator, TpConfig, Workload};
//! use exegpt_units::Secs;
//!
//! let model = ModelConfig::opt_13b();
//! let cluster = ClusterSpec::a40_cluster().subcluster(4)?;
//! let profile = Profiler::new(model.clone(), cluster.clone())
//!     .run(&ProfileOptions::default())?;
//! let workload = Workload::new(
//!     LengthDist::truncated_normal(128.0, 81.0, 256)?,  // task T inputs
//!     LengthDist::truncated_normal(128.0, 68.0, 320)?,  // task T outputs
//! );
//! let sim = Simulator::new(model, cluster, profile.into(), workload);
//! let est = sim.evaluate_rra(&RraConfig::new(32, 16, TpConfig::none()))?;
//! assert!(est.throughput > 0.0 && est.latency > Secs::ZERO);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod config;
mod error;
mod estimate;
mod layout;
pub mod rra;
mod simulator;
pub mod waa;

pub use cache::EvalCacheStats;
pub use config::{RraConfig, ScheduleConfig, TpConfig, WaaConfig, WaaVariant, Workload};
pub use error::SimError;
pub use estimate::{Breakdown, Estimate, MemoryReport};
pub use layout::PipelineLayout;
pub use rra::RraPlan;
pub use simulator::Simulator;
pub use waa::WaaPlan;
