//! Closed-form timeline of the WAA (Workload-Aware Allocation) schedule
//! (paper §4.1 Figures 3 and 4b–d, §6 "Simulating WAA Schedule").
//!
//! GPUs are partitioned into an *encoding group* and a *decoding group*
//! that run asynchronously as two coupled pipelines. One encoder batch
//! `B_E` is handed over (with its KV cache, via CPU staging) per decoding
//! iteration, and joins the decode pool of `B_D = B_E · S_D` queries. The
//! group split is sized by computation time (WAA-C) or by memory (WAA-M).

use exegpt_dist::convert::{
    ceil_usize, lossless_f64, round_usize, trunc_u64, trunc_usize, widen_u64,
};
use exegpt_model::{MemoryFootprint, ModelKind};
use exegpt_units::Secs;

use crate::config::{WaaConfig, WaaVariant};
use crate::error::SimError;
use crate::estimate::{Breakdown, Estimate, MemoryReport};
use crate::layout::PipelineLayout;
use crate::simulator::Simulator;

/// Fraction of the KV handover that cannot be hidden behind compute
/// (the paper overlaps the staged copies with computation, §3).
const KV_TRANSFER_EXPOSED: f64 = 0.3;

/// Latency margin for the runtime's dynamic workload adjustment buffers
/// (paper §5.2, §6 "including buffer time for dynamic adjustments").
const ADJUSTMENT_BUFFER: f64 = 1.05;

/// The resolved structure of a WAA schedule: the encode/decode GPU split,
/// both pipelines' layouts and layer allocations, and the decode pool size.
#[derive(Debug, Clone, PartialEq)]
pub struct WaaPlan {
    /// GPUs dedicated to encoding.
    pub n_enc: usize,
    /// Encoding pipeline layout (single-GPU stages).
    pub enc_layout: PipelineLayout,
    /// Layers per encoding stage.
    pub enc_alloc: Vec<usize>,
    /// Decoding pipeline layout (partial TP applied).
    pub dec_layout: PipelineLayout,
    /// Layers per decoding stage.
    pub dec_alloc: Vec<usize>,
    /// Steady-state decode pool size `B_D = B_E · S_D`.
    pub b_d: usize,
    /// Layers whose KV entries cross the encode→decode handover.
    pub kv_layers: usize,
}

/// Validates a WAA configuration and resolves its group split and layouts.
pub(crate) fn plan(sim: &Simulator, cfg: &WaaConfig) -> Result<WaaPlan, SimError> {
    if cfg.b_e == 0 {
        return Err(SimError::InvalidConfig { what: "b_e", why: "must be at least 1".into() });
    }
    if cfg.b_m == 0 {
        return Err(SimError::InvalidConfig { what: "b_m", why: "must be at least 1".into() });
    }
    let n = sim.cluster().total_gpus();
    if n < 2 {
        return Err(SimError::InvalidConfig {
            what: "cluster",
            why: "WAA needs at least one encoding and one decoding gpu".into(),
        });
    }
    let w = sim.workload();
    let profile = sim.profile();
    let s_e = w.input().mean();
    let s_d = w.output().mean();
    let ctx = w.mean_decode_context().as_f64();

    // Decode pool sized for steady state: B_D = B_E * S_D (paper §4.1).
    let b_d = round_usize(lossless_f64(cfg.b_e) * s_d).max(1);
    if b_d > profile.max_batch() {
        return Err(SimError::InvalidConfig {
            what: "b_e",
            why: format!(
                "derived decode pool {b_d} exceeds the profiled maximum {}",
                profile.max_batch()
            ),
        });
    }
    if cfg.b_m > b_d {
        return Err(SimError::InvalidConfig {
            what: "b_m",
            why: format!("cannot split a pool of {b_d} into {} micro-batches", cfg.b_m),
        });
    }

    // --- Group split -----------------------------------------------------
    let enc_layers = sim.enc_layers_total();
    let dec_layers = sim.dec_layers_total();
    let c_e = profile.encode_layer_time(lossless_f64(cfg.b_e), s_e, 1)? * lossless_f64(enc_layers);
    let c_d = profile.decode_layer_time(lossless_f64(b_d), ctx, s_e, 1)? * lossless_f64(dec_layers);
    let n_e = match cfg.variant {
        WaaVariant::Compute => split_by_ratio(n, c_e / (c_e + c_d)),
        WaaVariant::Memory => {
            let m_e = lossless_f64(enc_side_param_bytes(sim));
            let m_d =
                lossless_f64(dec_side_param_bytes(sim)) + lossless_f64(kv_pool_bytes(sim, b_d));
            split_by_ratio(n, m_e / (m_e + m_d))
        }
    };
    let n_dec = n - n_e;

    let enc_stages = n_e.min(enc_layers);
    let enc_layout = PipelineLayout::build(
        enc_stages,
        crate::config::TpConfig::none(),
        1.0,
        sim.cluster().gpus_per_node(),
    )?;
    let enc_alloc = enc_layout.allocate_layers(enc_layers)?;

    if cfg.tp.gpus > n_dec {
        return Err(SimError::InvalidConfig {
            what: "tp",
            why: format!("tp covers {} gpus but the decode group has {n_dec}", cfg.tp.gpus),
        });
    }
    let micro = lossless_f64(b_d) / lossless_f64(cfg.b_m);
    let speedup = sim.tp_speedup(cfg.tp, lossless_f64(cfg.b_e), micro)?;
    let dec_layout = PipelineLayout::build(n_dec, cfg.tp, speedup, sim.cluster().gpus_per_node())?;
    let dec_alloc = dec_layout.allocate_layers(dec_layers)?;

    // Decoder-only models hand over the full prefill KV (all layers);
    // encoder-decoder models hand over the cross-attention KV.
    let kv_layers = match sim.model().kind() {
        ModelKind::DecoderOnly => sim.model().num_layers(),
        ModelKind::EncoderDecoder => dec_layers,
    };
    Ok(WaaPlan { n_enc: n_e, enc_layout, enc_alloc, dec_layout, dec_alloc, b_d, kv_layers })
}

pub(crate) fn evaluate(sim: &Simulator, cfg: &WaaConfig) -> Result<Estimate, SimError> {
    // The group split and both layouts depend only on the config, so they
    // come from the simulator's evaluation cache.
    let plan = sim.cache().waa_plan(sim.cluster_key(), *cfg, || self::plan(sim, cfg))?;
    let (enc_layout, enc_alloc) = (&plan.enc_layout, &plan.enc_alloc);
    let (dec_layout, dec_alloc) = (&plan.dec_layout, &plan.dec_alloc);
    let (b_d, kv_layers) = (plan.b_d, plan.kv_layers);
    let w = sim.workload();
    let profile = sim.profile();
    let s_e = w.input().mean();
    let ctx = w.mean_decode_context().as_f64();

    // --- Encoding pipeline (single-GPU stages) ---------------------------
    let t_layer = profile.encode_layer_time(lossless_f64(cfg.b_e), s_e, 1)?;
    let mut enc_stage_times = Vec::with_capacity(enc_layout.num_stages());
    for (i, _) in enc_layout.stages().iter().enumerate() {
        let handoff =
            profile.handoff_time(lossless_f64(cfg.b_e) * s_e, enc_layout.boundary_intra_node(i));
        enc_stage_times.push(t_layer * lossless_f64(enc_alloc[i]) + handoff);
    }
    let p_enc = enc_stage_times.iter().copied().fold(Secs::ZERO, |acc, t| acc.max(t));
    let enc_latency: Secs = enc_stage_times.iter().sum();

    // --- Decoding pipeline (partial TP allowed) --------------------------
    let micro = lossless_f64(b_d) / lossless_f64(cfg.b_m);
    let stages_d = dec_layout.num_stages();
    let mut t_dstage = Secs::ZERO;
    for (i, stage) in dec_layout.stages().iter().enumerate() {
        let t_layer = profile.decode_layer_time(micro, ctx, s_e, stage.tp)?;
        let handoff = profile.handoff_time(micro, dec_layout.boundary_intra_node(i));
        t_dstage = t_dstage.max(t_layer * lossless_f64(dec_alloc[i]) + handoff);
    }
    // Micro-batches circulate the stage ring: the period of one decoding
    // iteration of the full pool is bounded by stage occupancy (m per
    // stage) or ring traversal (stages_d), whichever is longer.
    let p_dec = t_dstage * lossless_f64(cfg.b_m.max(stages_d));

    // --- KV handover ------------------------------------------------------
    let t_kv = profile.kv_transfer_time(lossless_f64(cfg.b_e) * s_e, kv_layers);

    // --- Steady state ------------------------------------------------------
    let period = p_enc.max(p_dec).max(t_kv * KV_TRANSFER_EXPOSED);
    let throughput = lossless_f64(cfg.b_e) / period.as_secs();
    let fill = t_dstage * lossless_f64(stages_d);
    let latency = (enc_latency + t_kv + fill + period * (lossless_f64(w.l99()) - 1.0).max(0.0))
        * ADJUSTMENT_BUFFER;

    let memory = memory_report(sim, cfg, enc_alloc, dec_layout, dec_alloc, b_d)?;
    check_memory(&memory)?;

    Ok(Estimate {
        latency,
        throughput,
        memory,
        breakdown: Breakdown {
            encode_time: p_enc,
            decode_time: p_dec,
            period,
            stages: stages_d,
            decode_batch: b_d,
        },
    })
}

/// Rounded GPU split with both sides kept non-empty.
fn split_by_ratio(n: usize, enc_fraction: f64) -> usize {
    round_usize(lossless_f64(n) * enc_fraction).clamp(1, n - 1)
}

/// Parameter bytes the encoding group must hold in total: the encoder stack
/// for encoder-decoder models, a full replica for decoder-only models (the
/// paper's WAA memory overhead, §4.1).
fn enc_side_param_bytes(sim: &Simulator) -> u64 {
    widen_u64(sim.enc_layers_total()) * sim.enc_layer_bytes()
}

/// Parameter bytes the decoding group must hold in total.
fn dec_side_param_bytes(sim: &Simulator) -> u64 {
    widen_u64(sim.dec_layers_total()) * sim.dec_layer_bytes()
}

/// Total self+cross KV bytes of the decode pool.
fn kv_pool_bytes(sim: &Simulator, b_d: usize) -> u64 {
    let m = sim.model();
    let kv_self = trunc_u64(
        lossless_f64(b_d)
            * sim.kv_ctx_tokens().as_f64()
            * lossless_f64(m.kv_bytes_per_token_per_layer())
            * lossless_f64(sim.dec_layers_total()),
    );
    let kv_cross = m.cross_kv_cache_bytes(
        b_d,
        trunc_usize(sim.workload().input().mean()),
        sim.dec_layers_total(),
    );
    kv_self + kv_cross
}

fn memory_report(
    sim: &Simulator,
    cfg: &WaaConfig,
    enc_alloc: &[usize],
    dec_layout: &PipelineLayout,
    dec_alloc: &[usize],
    b_d: usize,
) -> Result<MemoryReport, SimError> {
    let m = sim.model();
    let s_e = sim.workload().input().mean();
    // Encoder GPU: its layer slice, prefill activations, and the in-flight
    // KV it produces before handover (double-buffered).
    let enc_worst_layers = widen_u64(enc_alloc.iter().copied().max().unwrap_or(0));
    let enc_params = enc_worst_layers * sim.enc_layer_bytes();
    let enc_tokens = ceil_usize(lossless_f64(cfg.b_e) * s_e);
    let enc_kv = 2 * m.kv_cache_bytes(cfg.b_e, ceil_usize(s_e), enc_alloc.len().max(1))
        / widen_u64(enc_alloc.len().max(1));
    let encoder_gpu = MemoryFootprint {
        param_bytes: enc_params,
        kv_bytes: enc_kv,
        activation_bytes: m.activation_bytes(1, enc_tokens),
    };

    // Decoder GPU: its layer slice (TP-sharded) plus its share of the pool.
    let kv_ctx = sim.kv_ctx_tokens();
    let mut decoder_gpu = MemoryFootprint::default();
    for (i, stage) in dec_layout.stages().iter().enumerate() {
        let params = widen_u64(dec_alloc[i]) * sim.dec_layer_bytes() / widen_u64(stage.tp);
        let kv_self = trunc_u64(
            lossless_f64(b_d)
                * kv_ctx.as_f64()
                * lossless_f64(m.kv_bytes_per_token_per_layer())
                * lossless_f64(dec_alloc[i])
                / lossless_f64(stage.tp),
        );
        let kv_cross = trunc_u64(
            lossless_f64(m.cross_kv_cache_bytes(b_d, trunc_usize(s_e), 1))
                * lossless_f64(dec_alloc[i])
                / lossless_f64(stage.tp),
        );
        let act = m.activation_bytes((b_d / cfg.b_m).max(1), 1);
        let fp = MemoryFootprint {
            param_bytes: params,
            kv_bytes: kv_self + kv_cross,
            activation_bytes: act,
        };
        if fp.total() > decoder_gpu.total() {
            decoder_gpu = fp;
        }
    }

    Ok(MemoryReport { encoder_gpu, decoder_gpu, capacity: sim.usable_capacity() })
}

fn check_memory(report: &MemoryReport) -> Result<(), SimError> {
    if report.encoder_gpu.total() > report.capacity {
        return Err(SimError::OutOfMemory {
            role: "encoder",
            needed: report.encoder_gpu.total(),
            capacity: report.capacity,
        });
    }
    if report.decoder_gpu.total() > report.capacity {
        return Err(SimError::OutOfMemory {
            role: "decoder",
            needed: report.decoder_gpu.total(),
            capacity: report.capacity,
        });
    }
    Ok(())
}
