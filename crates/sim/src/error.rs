//! Error types for the simulator crate.

use exegpt_dist::convert::lossless_f64;
use exegpt_profiler::ProfileError;

/// Errors produced when evaluating a schedule configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration is structurally invalid (bad batch sizes, TP degree
    /// not dividing the GPU count, …).
    InvalidConfig {
        /// Which part of the configuration was rejected.
        what: &'static str,
        /// Why it was rejected.
        why: String,
    },
    /// The schedule cannot run on the cluster: a GPU's memory capacity is
    /// exceeded. This is how the paper's "NS" (not-satisfiable) entries and
    /// WAA's large-model failures (§7.4) arise.
    OutOfMemory {
        /// Which GPU role overflowed ("encoder" / "decoder" / "worker").
        role: &'static str,
        /// Bytes the schedule needs on that GPU.
        needed: u64,
        /// Usable bytes on that GPU.
        capacity: u64,
    },
    /// The schedule cannot reach a steady state (e.g. no query can complete
    /// within the decode-phase support).
    NoSteadyState {
        /// Human-readable explanation.
        why: String,
    },
    /// An underlying profile lookup failed.
    Profile(ProfileError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfig { what, why } => {
                write!(f, "invalid schedule configuration `{what}`: {why}")
            }
            SimError::OutOfMemory { role, needed, capacity } => write!(
                f,
                "{role} gpu out of memory: schedule needs {:.1} GiB of {:.1} GiB usable",
                lossless_f64(*needed) / lossless_f64(1u64 << 30),
                lossless_f64(*capacity) / lossless_f64(1u64 << 30)
            ),
            SimError::NoSteadyState { why } => write!(f, "no steady state: {why}"),
            SimError::Profile(e) => write!(f, "profile lookup failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Profile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProfileError> for SimError {
    fn from(e: ProfileError) -> Self {
        SimError::Profile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_display_shows_gib() {
        let e = SimError::OutOfMemory { role: "decoder", needed: 3 << 30, capacity: 2 << 30 };
        let s = e.to_string();
        assert!(s.contains("decoder") && s.contains("3.0") && s.contains("2.0"));
    }

    #[test]
    fn profile_error_chains_as_source() {
        use std::error::Error;
        let e = SimError::from(ProfileError::OutOfRange { what: "batch", value: 1.0 });
        assert!(e.source().is_some());
    }
}
