//! Schedule configurations and workload description.
//!
//! These are the paper's four control variables (§4.2): batch size (`B_E`),
//! encoding frequency (`N_D`, RRA only), decoder micro-batch (`B_m`, WAA
//! only), and partial tensor parallelism (`T_P` degree plus the number of
//! GPUs it is applied to).

use exegpt_dist::LengthDist;
use exegpt_units::Tokens;
use serde::{Deserialize, Serialize};

/// Partial tensor parallelism: a fixed degree applied to a subset of the
/// pipeline's GPUs (paper §4.2, Figure 4d).
///
/// `degree` GPUs are fused into one faster pipeline stage; `gpus` GPUs in
/// total participate in such groups (so `gpus / degree` stages are fused and
/// the remaining GPUs form single-GPU stages). The scheduler holds `degree`
/// fixed and varies `gpus` to preserve monotonicity (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TpConfig {
    /// Tensor-parallel degree of each fused group (1 = no TP).
    pub degree: usize,
    /// Number of GPUs running inside TP groups (a multiple of `degree`).
    pub gpus: usize,
}

impl TpConfig {
    /// No tensor parallelism: every GPU is its own pipeline stage.
    pub fn none() -> Self {
        Self { degree: 1, gpus: 0 }
    }

    /// Full tensor parallelism at `degree` across all `total` GPUs.
    pub fn full(degree: usize, total: usize) -> Self {
        Self { degree, gpus: total }
    }

    /// Whether this configuration uses any tensor parallelism.
    pub fn is_none(&self) -> bool {
        self.degree <= 1 || self.gpus == 0
    }
}

impl Default for TpConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// Configuration of an RRA (Round-Robin Allocation) schedule: encoder batch
/// size `B_E`, decoding iterations per phase `N_D`, and partial TP.
///
/// The decoding batch size `B_D` is *derived* (not set): the simulator sizes
/// it so that the expected completions per phase equal `B_E` (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RraConfig {
    /// Encoder batch size `B_E`.
    pub b_e: usize,
    /// Decoding iterations between encoding phases `N_D` (the inverse of the
    /// paper's encoding frequency `F_E`).
    pub n_d: usize,
    /// Partial tensor parallelism applied to the pipeline.
    pub tp: TpConfig,
}

impl RraConfig {
    /// Creates an RRA configuration.
    pub fn new(b_e: usize, n_d: usize, tp: TpConfig) -> Self {
        Self { b_e, n_d, tp }
    }
}

/// Which workload estimate WAA uses to split GPUs between encoding and
/// decoding (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WaaVariant {
    /// Balance estimated *computation* time (`WAA-C`).
    Compute,
    /// Balance *memory* consumption (`WAA-M`), useful when decoder KV
    /// caches are the bottleneck.
    Memory,
}

/// Configuration of a WAA (Workload-Aware Allocation) schedule: encoder
/// batch size `B_E`, decoder micro-batch count `B_m`, partial TP on the
/// decoding group, and the allocation variant.
///
/// The decoding batch size is derived as `B_D = B_E · S_D` where `S_D` is
/// the mean output length (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WaaConfig {
    /// Encoder batch size `B_E`.
    pub b_e: usize,
    /// Number of decoder micro-batches `B_m` the decode pool is split into.
    pub b_m: usize,
    /// Partial tensor parallelism applied to the decoding group.
    pub tp: TpConfig,
    /// Allocation variant (compute- or memory-balanced).
    pub variant: WaaVariant,
}

impl WaaConfig {
    /// Creates a WAA configuration.
    pub fn new(b_e: usize, b_m: usize, tp: TpConfig, variant: WaaVariant) -> Self {
        Self { b_e, b_m, tp, variant }
    }
}

/// Either schedule family, for APIs that evaluate both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleConfig {
    /// A Round-Robin Allocation schedule.
    Rra(RraConfig),
    /// A Workload-Aware Allocation schedule.
    Waa(WaaConfig),
}

impl ScheduleConfig {
    /// Short human-readable form, e.g. `RRA(B_E=32, N_D=16, TP=1x0)`.
    pub fn describe(&self) -> String {
        match self {
            ScheduleConfig::Rra(c) => {
                format!("RRA(B_E={}, N_D={}, TP={}x{})", c.b_e, c.n_d, c.tp.degree, c.tp.gpus)
            }
            ScheduleConfig::Waa(c) => format!(
                "WAA-{}(B_E={}, B_m={}, TP={}x{})",
                match c.variant {
                    WaaVariant::Compute => "C",
                    WaaVariant::Memory => "M",
                },
                c.b_e,
                c.b_m,
                c.tp.degree,
                c.tp.gpus
            ),
        }
    }
}

/// The sequence-length workload an NLP service presents: the distributions
/// `P_E(S)` of input lengths and `P_D(S)` of output lengths (paper §6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    input: LengthDist,
    output: LengthDist,
}

impl Workload {
    /// Creates a workload from input and output length distributions.
    pub fn new(input: LengthDist, output: LengthDist) -> Self {
        Self { input, output }
    }

    /// Input-length distribution `P_E(S)`.
    pub fn input(&self) -> &LengthDist {
        &self.input
    }

    /// Output-length distribution `P_D(S)`.
    pub fn output(&self) -> &LengthDist {
        &self.output
    }

    /// 99th-percentile output length, the paper's latency-bound reference
    /// sequence (§7.1).
    pub fn l99(&self) -> usize {
        self.output.quantile(0.99)
    }

    /// Expected progress (generated tokens so far) of a uniformly-random
    /// in-flight query in steady state: `(E[S²] − E[S]) / (2·E[S])`.
    ///
    /// A query of output length `S` is observed in `S` iterations with
    /// progress `0..S−1`; averaging over the renewal process gives the
    /// formula. Used to size the mean decode context.
    pub fn stationary_progress(&self) -> Tokens {
        let m = self.output.mean();
        if m <= 0.0 {
            return Tokens::ZERO;
        }
        Tokens::new(((self.output.mean_sq() - m) / (2.0 * m)).max(0.0))
    }

    /// Expected total context length (input + generated) of an in-flight
    /// query in steady state, the operand of decode-attention lookups.
    pub fn mean_decode_context(&self) -> Tokens {
        Tokens::new(self.input.mean()) + self.stationary_progress()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        Workload::new(
            LengthDist::truncated_normal(128.0, 81.0, 256).expect("valid"),
            LengthDist::truncated_normal(128.0, 68.0, 320).expect("valid"),
        )
    }

    #[test]
    fn tp_none_is_inert() {
        assert!(TpConfig::none().is_none());
        assert!(!TpConfig::full(4, 8).is_none());
        assert_eq!(TpConfig::default(), TpConfig::none());
    }

    #[test]
    fn l99_matches_quantile() {
        let w = workload();
        assert_eq!(w.l99(), w.output().quantile(0.99));
        assert!(w.l99() > 128);
    }

    #[test]
    fn stationary_progress_for_point_mass() {
        // All outputs length 11: ages 0..10 uniformly -> mean 5.
        let w = Workload::new(
            LengthDist::point_mass(100, 128).expect("valid"),
            LengthDist::point_mass(11, 16).expect("valid"),
        );
        assert!((w.stationary_progress().as_f64() - 5.0).abs() < 1e-9);
        assert!((w.mean_decode_context().as_f64() - 105.0).abs() < 1e-9);
    }

    #[test]
    fn describe_is_informative() {
        let r = ScheduleConfig::Rra(RraConfig::new(32, 16, TpConfig::none()));
        assert!(r.describe().contains("B_E=32"));
        let w = ScheduleConfig::Waa(WaaConfig::new(8, 3, TpConfig::full(2, 2), WaaVariant::Memory));
        assert!(w.describe().contains("WAA-M"));
    }
}
