//! `exegpt-units`: zero-cost units of measure for the ExeGPT cost model.
//!
//! Every figure this reproduction emits flows through roofline arithmetic
//! that mixes seconds, bytes, FLOPs, token counts and bandwidths. As bare
//! `f64`s those quantities are indistinguishable, so a single unit slip
//! (GB where bytes were meant, milliseconds where seconds were meant)
//! silently skews every downstream number while all tests keep passing.
//! This crate makes the dimension part of the type:
//!
//! * Each quantity is a `#[repr(transparent)]` newtype over `f64` — the
//!   same machine representation, registers and codegen as the raw float,
//!   so the safety layer costs nothing at runtime.
//! * Arithmetic is *dimensional*: same-unit addition/subtraction, scalar
//!   scaling, and the physically meaningful cross-type operations
//!   (`Flops / FlopsPerSec -> Secs`, `Bytes / BytesPerSec -> Secs`,
//!   `BytesPerSec * Secs -> Bytes`, …). Nonsensical combinations such as
//!   `Secs + Bytes` simply do not compile.
//! * Ordering uses [`f64::total_cmp`], so the newtypes are [`Ord`] and can
//!   key deterministic `BTreeMap`s and drive `max`/`min` folds without the
//!   partial-order escape hatches raw floats need.
//! * [`serde::Serialize`]/[`serde::Deserialize`] pass the inner `f64`
//!   straight through, so serialized reports and event logs are
//!   byte-identical to their pre-typed form.
//!
//! The xlint rules **U1** (no raw `f64` in public cost-model signatures)
//! and **U2** (identifier-suffix consistency) keep the cost-model crates on
//! this vocabulary; see DESIGN.md §6.
//!
//! # Example
//!
//! ```
//! use exegpt_units::{Bytes, BytesPerSec, Flops, FlopsPerSec, Secs};
//!
//! let work = Flops::new(2.0e12);
//! let rate = FlopsPerSec::new(1.0e12);
//! let compute: Secs = work / rate;
//! assert_eq!(compute, Secs::new(2.0));
//!
//! let traffic = Bytes::new(1.0e9);
//! let bw = BytesPerSec::new(5.0e8);
//! let memory: Secs = traffic / bw;
//! // A roofline takes the slower of the two and both sides are `Secs`.
//! assert_eq!(compute.max(memory), compute);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Largest integer magnitude an `f64` represents exactly (2^53).
const MAX_EXACT_F64_INT: u64 = 1 << 53;

/// Converts an integer count to `f64`, asserting exactness in debug builds
/// (mirrors `exegpt_dist::convert::lossless_f64`; duplicated so this crate
/// stays dependency-free below the whole workspace).
#[inline]
fn exact_f64(v: u64) -> f64 {
    debug_assert!(v <= MAX_EXACT_F64_INT, "{v} exceeds 2^53 and would lose precision as f64");
    // Saturating `as` semantics; exactness is debug-asserted above.
    v as f64
}

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $unit_str:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        #[repr(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);
            /// Positive infinity (used for "unconstrained" bounds and
            /// infeasible sentinels).
            pub const INFINITY: $name = $name(f64::INFINITY);

            /// Wraps a raw magnitude expressed in this type's base unit.
            #[inline]
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The magnitude in this type's base unit.
            ///
            /// This is the *only* exit back to raw floats; keep it at
            /// genuine boundaries (serialization, human-readable output,
            /// dimensionless ratios).
            #[inline]
            #[must_use]
            pub const fn as_f64(self) -> f64 {
                self.0
            }

            /// Whether the magnitude is neither infinite nor NaN.
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// The larger of two quantities (`total_cmp` order, so NaN
            /// sorts above +∞ rather than poisoning the fold).
            #[inline]
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                if self >= other { self } else { other }
            }

            /// The smaller of two quantities (`total_cmp` order).
            #[inline]
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                if self <= other { self } else { other }
            }

            /// Clamps the magnitude below by zero (negative → `ZERO`).
            #[inline]
            #[must_use]
            pub fn max_zero(self) -> Self {
                Self(self.0.max(0.0))
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.0.total_cmp(&other.0).is_eq()
            }
        }
        impl Eq for $name {}
        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for $name {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl std::ops::Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }
        impl std::ops::Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }
        impl std::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }
        impl std::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }
        impl std::ops::Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }
        impl std::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }
        impl std::ops::Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }
        /// Same-unit ratio: the dimensions cancel.
        impl std::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }
        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }
        impl<'a> std::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.0.fmt(f)?;
                if !$unit_str.is_empty() {
                    write!(f, " {}", $unit_str)?;
                }
                Ok(())
            }
        }

        impl Serialize for $name {
            fn to_value(&self) -> Value {
                Value::F64(self.0)
            }
        }
        impl Deserialize for $name {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                f64::from_value(v).map($name)
            }
        }
    };
}

macro_rules! cross_ops {
    // amount / rate = time, rate * time = amount, amount / time = rate
    ($amount:ident, $rate:ident) => {
        impl std::ops::Div<$rate> for $amount {
            type Output = Secs;
            #[inline]
            fn div(self, rhs: $rate) -> Secs {
                Secs::new(self.as_f64() / rhs.as_f64())
            }
        }
        impl std::ops::Mul<Secs> for $rate {
            type Output = $amount;
            #[inline]
            fn mul(self, rhs: Secs) -> $amount {
                $amount::new(self.as_f64() * rhs.as_f64())
            }
        }
        impl std::ops::Mul<$rate> for Secs {
            type Output = $amount;
            #[inline]
            fn mul(self, rhs: $rate) -> $amount {
                $amount::new(self.as_f64() * rhs.as_f64())
            }
        }
        impl std::ops::Div<Secs> for $amount {
            type Output = $rate;
            #[inline]
            fn div(self, rhs: Secs) -> $rate {
                $rate::new(self.as_f64() / rhs.as_f64())
            }
        }
    };
}

unit!(
    /// A duration in seconds — the cost model's single time unit.
    Secs,
    "s"
);
unit!(
    /// An amount of data in bytes (continuous: fractional bytes arise from
    /// expectations over length distributions).
    Bytes,
    "B"
);
unit!(
    /// An amount of floating-point work in FLOPs.
    Flops,
    "FLOP"
);
unit!(
    /// A number of tokens (continuous: means and expectations over length
    /// distributions are fractional).
    Tokens,
    "tok"
);
unit!(
    /// A data rate in bytes per second.
    BytesPerSec,
    "B/s"
);
unit!(
    /// A compute rate in FLOP/s.
    FlopsPerSec,
    "FLOP/s"
);

cross_ops!(Bytes, BytesPerSec);
cross_ops!(Flops, FlopsPerSec);

impl Secs {
    /// A duration given in seconds (alias of [`Secs::new`] that reads
    /// better at call sites mixing units).
    #[inline]
    #[must_use]
    pub const fn from_secs(s: f64) -> Self {
        Self::new(s)
    }

    /// A duration given in milliseconds.
    #[inline]
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// A duration given in microseconds.
    #[inline]
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// The duration in seconds (alias of [`Secs::as_f64`]).
    #[inline]
    #[must_use]
    pub const fn as_secs(self) -> f64 {
        self.as_f64()
    }

    /// The duration in milliseconds.
    #[inline]
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.as_f64() * 1e3
    }

    /// The duration in microseconds.
    #[inline]
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.as_f64() * 1e6
    }
}

impl Bytes {
    /// An exact integer byte count (debug-asserts the count fits in the
    /// `f64` mantissa, i.e. is at most 2^53).
    #[inline]
    #[must_use]
    pub fn from_u64(bytes: u64) -> Self {
        Self::new(exact_f64(bytes))
    }

    /// An amount given in binary gibibytes.
    #[inline]
    #[must_use]
    pub fn from_gib(gib: f64) -> Self {
        Self::new(gib * (1u64 << 30) as f64)
    }
}

impl Tokens {
    /// An exact integer token count (debug-asserts representability).
    #[inline]
    #[must_use]
    pub fn from_count(tokens: u64) -> Self {
        Self::new(exact_f64(tokens))
    }
}

impl BytesPerSec {
    /// A rate given in decimal gigabytes per second.
    #[inline]
    #[must_use]
    pub fn from_gb_per_sec(gb: f64) -> Self {
        Self::new(gb * 1e9)
    }
}

impl FlopsPerSec {
    /// A rate given in teraFLOP/s.
    #[inline]
    #[must_use]
    pub fn from_tflops(tflops: f64) -> Self {
        Self::new(tflops * 1e12)
    }
}

/// Tokens scale per-token amounts: `Tokens * Bytes` is the total traffic of
/// moving that many tokens at a per-token size.
impl std::ops::Mul<Bytes> for Tokens {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: Bytes) -> Bytes {
        Bytes::new(self.as_f64() * rhs.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_are_transparent() {
        assert_eq!(std::mem::size_of::<Secs>(), std::mem::size_of::<f64>());
        assert_eq!(std::mem::align_of::<Bytes>(), std::mem::align_of::<f64>());
    }

    #[test]
    fn roofline_algebra() {
        let t1: Secs = Flops::new(4.0e12) / FlopsPerSec::from_tflops(2.0);
        assert_eq!(t1, Secs::new(2.0));
        let t2: Secs = Bytes::from_gib(1.0) / BytesPerSec::new((1u64 << 30) as f64);
        assert_eq!(t2, Secs::new(1.0));
        let back: Bytes = BytesPerSec::new(10.0) * Secs::new(3.0);
        assert_eq!(back, Bytes::new(30.0));
        let rate: FlopsPerSec = Flops::new(10.0) / Secs::new(2.0);
        assert_eq!(rate, FlopsPerSec::new(5.0));
    }

    #[test]
    fn same_unit_arithmetic_and_ratio() {
        let a = Secs::new(1.5) + Secs::new(0.5) - Secs::new(1.0);
        assert_eq!(a, Secs::new(1.0));
        let mut acc = Secs::ZERO;
        acc += Secs::new(2.0);
        acc -= Secs::new(0.5);
        assert_eq!(acc, Secs::new(1.5));
        let ratio: f64 = Bytes::new(6.0) / Bytes::new(3.0);
        assert!((ratio - 2.0).abs() < 1e-15);
        let scaled = 3.0 * Tokens::new(2.0) / 2.0;
        assert_eq!(scaled, Tokens::new(3.0));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [Secs::new(2.0), Secs::INFINITY, Secs::new(-1.0), Secs::new(f64::NAN)];
        v.sort();
        assert_eq!(v[0], Secs::new(-1.0));
        assert_eq!(v[1], Secs::new(2.0));
        assert_eq!(v[2], Secs::INFINITY);
        assert!(!v[3].is_finite());
        assert_eq!(Secs::new(1.0).max(Secs::new(2.0)), Secs::new(2.0));
        assert_eq!(Secs::new(1.0).min(Secs::new(2.0)), Secs::new(1.0));
        assert_eq!(Secs::new(-3.0).max_zero(), Secs::ZERO);
    }

    #[test]
    fn time_conversions() {
        assert_eq!(Secs::from_millis(1500.0), Secs::new(1.5));
        assert_eq!(Secs::from_micros(12.0), Secs::new(12.0e-6));
        assert!((Secs::new(0.25).as_millis() - 250.0).abs() < 1e-12);
        assert!((Secs::new(0.25).as_micros() - 250_000.0).abs() < 1e-9);
    }

    #[test]
    fn sums_and_token_scaling() {
        let total: Secs = [Secs::new(1.0), Secs::new(2.0)].iter().sum();
        assert_eq!(total, Secs::new(3.0));
        let traffic = Tokens::new(128.0) * Bytes::new(2.0);
        assert_eq!(traffic, Bytes::new(256.0));
        assert_eq!(Tokens::from_count(7), Tokens::new(7.0));
    }

    #[test]
    fn serde_round_trip_is_plain_f64() {
        let v = Secs::new(1.25).to_value();
        assert_eq!(v, Value::F64(1.25));
        let back = Secs::from_value(&v).expect("number deserializes");
        assert_eq!(back, Secs::new(1.25));
        assert!(Bytes::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn display_appends_the_unit() {
        assert_eq!(format!("{}", Secs::new(1.5)), "1.5 s");
        assert_eq!(format!("{:.2}", BytesPerSec::new(3.0)), "3.00 B/s");
        assert_eq!(format!("{}", Flops::new(1.0)), "1 FLOP");
    }
}
