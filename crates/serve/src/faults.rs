//! Online fault handling: detection, dilation and degradation policy.
//!
//! The [`FaultDriver`] sits between a replayed
//! [`exegpt_faults::FaultSchedule`] and the serving loop. It advances the
//! fault state on the loop's *virtual* clock (never the wall clock), and
//! answers the three questions the loop asks at every phase boundary:
//!
//! 1. **What just broke?** Fired events are logged; a `GpuFail` matures
//!    into a *detection* only after [`FaultOptions::detection_delay`] of
//!    virtual time — the heartbeat-timeout model — at which point the
//!    in-flight pool is aborted into the retry queue and the loop replans
//!    onto the surviving topology.
//! 2. **How slow are we right now?** [`FaultDriver::factors`] gives the
//!    compute dilation (worst live straggler) and link factors the loop
//!    multiplies into phase timings. Stragglers are *tolerated* below
//!    [`FaultOptions::evict_slowdown`] and evicted (removed from the
//!    topology, plan recomputed) at or above it, once the
//!    [`StragglerDetector`] has confirmed the slowdown from observed phase
//!    timings.
//! 3. **When should an idle loop wake up?** [`FaultDriver::next_wake`]
//!    folds pending fault activations and maturing detections into the
//!    idle-jump target.
//!
//! With an empty schedule every answer is the identity (dilation exactly
//! `1.0`, no wakes, no detections), so enabling the fault layer on a
//! healthy run is a byte-exact no-op — the differential test pins this.

use std::collections::BTreeSet;

use exegpt_faults::{FaultEvent, FaultKind, FaultSchedule, FaultState, GpuStatus};

use crate::error::ServeError;

/// Configuration of the serving loop's fault handling.
#[derive(Debug, Clone)]
pub struct FaultOptions {
    /// The scenario to replay (empty = no-op).
    pub schedule: FaultSchedule,
    /// Virtual seconds between a `GpuFail` becoming active and the loop
    /// *detecting* it (heartbeat timeout). The pool stalls for the
    /// remainder of this window when a failure is noticed mid-phase.
    pub detection_delay: f64,
    /// Slowdown factor at or above which a confirmed straggler is evicted
    /// from the topology (and the plan recomputed on the survivors) rather
    /// than tolerated via time dilation.
    pub evict_slowdown: f64,
    /// Straggler-confirmation tuning.
    pub straggler: StragglerOptions,
    /// Retry budget per request: a request aborted by failures more than
    /// this many times is dropped and counted as lost.
    pub max_retries: usize,
    /// Base of the exponential retry backoff: attempt `k` becomes eligible
    /// `backoff_base * 2^(k-1)` virtual seconds after the abort.
    pub backoff_base: f64,
}

impl Default for FaultOptions {
    fn default() -> Self {
        Self {
            schedule: FaultSchedule::empty(),
            detection_delay: 0.5,
            evict_slowdown: 2.0,
            straggler: StragglerOptions::default(),
            max_retries: 5,
            backoff_base: 0.25,
        }
    }
}

impl FaultOptions {
    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if !(self.detection_delay.is_finite() && self.detection_delay >= 0.0) {
            return Err(ServeError::InvalidOption {
                what: "faults.detection_delay",
                why: format!("must be finite and non-negative, got {}", self.detection_delay),
            });
        }
        if !(self.evict_slowdown.is_finite() && self.evict_slowdown > 1.0) {
            return Err(ServeError::InvalidOption {
                what: "faults.evict_slowdown",
                why: format!("must be finite and > 1, got {}", self.evict_slowdown),
            });
        }
        if !(self.backoff_base.is_finite() && self.backoff_base >= 0.0) {
            return Err(ServeError::InvalidOption {
                what: "faults.backoff_base",
                why: format!("must be finite and non-negative, got {}", self.backoff_base),
            });
        }
        if !(self.straggler.rel_threshold.is_finite() && self.straggler.rel_threshold > 1.0) {
            return Err(ServeError::InvalidOption {
                what: "faults.straggler.rel_threshold",
                why: format!("must be finite and > 1, got {}", self.straggler.rel_threshold),
            });
        }
        if self.straggler.consecutive == 0 {
            return Err(ServeError::InvalidOption {
                what: "faults.straggler.consecutive",
                why: "must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Tuning of the [`StragglerDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerOptions {
    /// Observed/expected phase-time ratio that counts as a straggler hit.
    pub rel_threshold: f64,
    /// Consecutive hits required to confirm a straggler (debouncing).
    pub consecutive: usize,
}

impl Default for StragglerOptions {
    fn default() -> Self {
        Self { rel_threshold: 1.25, consecutive: 3 }
    }
}

/// Confirms stragglers from *observed* phase timings.
///
/// The loop feeds every executed phase's observed duration together with
/// the duration its plan predicted; a sustained ratio above the threshold
/// confirms a straggler. The confirmation latches — once declared it stays
/// silent until the ratio falls back below the threshold — so a tolerated
/// (non-evictable) straggler is reported once, not every phase.
#[derive(Debug, Clone)]
pub struct StragglerDetector {
    opts: StragglerOptions,
    hits: usize,
    latched: bool,
}

impl StragglerDetector {
    /// Creates a detector.
    pub fn new(opts: StragglerOptions) -> Self {
        Self { opts, hits: 0, latched: false }
    }

    /// Feeds one executed phase. Returns the observed/expected ratio when
    /// this observation *confirms* a straggler (threshold held for
    /// `consecutive` phases, not already latched).
    pub fn observe(&mut self, observed: f64, expected: f64) -> Option<f64> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(expected > 0.0) {
            return None;
        }
        let ratio = observed / expected;
        if ratio >= self.opts.rel_threshold {
            self.hits += 1;
        } else {
            self.hits = 0;
            self.latched = false;
        }
        if self.hits >= self.opts.consecutive && !self.latched {
            self.latched = true;
            return Some(ratio);
        }
        None
    }
}

/// Compute and link multipliers the loop applies to phase timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultFactors {
    /// Phase-time multiplier from the worst live, non-evicted straggler
    /// (exactly `1.0` when nominal).
    pub dilation: f64,
    /// KV-handover multiplier from link bandwidth degradation (exactly
    /// `1.0` when nominal).
    pub link_time: f64,
    /// Added per-handover latency in virtual seconds (exactly `0.0` when
    /// nominal).
    pub link_latency: f64,
}

impl FaultFactors {
    /// The identity: nominal cluster, no dilation.
    pub fn nominal() -> Self {
        Self { dilation: 1.0, link_time: 1.0, link_latency: 0.0 }
    }
}

/// Replays a fault scenario against the serving loop's virtual clock and
/// tracks the degradation policy's bookkeeping (detections pending the
/// heartbeat timeout, stragglers evicted from the topology).
#[derive(Debug, Clone)]
pub struct FaultDriver {
    state: FaultState,
    detection_delay: f64,
    /// Failures that fired but have not yet matured through the heartbeat
    /// timeout: `(gpu, detection time)`, in firing order.
    undetected: Vec<(usize, f64)>,
    /// Failures the loop has detected and removed from the topology.
    detected: BTreeSet<usize>,
    /// Stragglers the loop evicted from the topology.
    evicted: BTreeSet<usize>,
}

impl FaultDriver {
    /// Builds the driver for a cluster of `total_gpus` devices.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Fault`] when the schedule targets a device
    /// outside the cluster.
    pub fn new(schedule: FaultSchedule, total_gpus: usize) -> Result<Self, ServeError> {
        let state = FaultState::new(schedule, total_gpus).map_err(ServeError::Fault)?;
        Ok(Self {
            state,
            detection_delay: FaultOptions::default().detection_delay,
            undetected: Vec::new(),
            detected: BTreeSet::new(),
            evicted: BTreeSet::new(),
        })
    }

    /// Overrides the heartbeat timeout (virtual seconds).
    pub fn with_detection_delay(mut self, delay: f64) -> Self {
        self.detection_delay = delay;
        self
    }

    /// Applies every fault event with activation time `<= t`, updating the
    /// detection and eviction bookkeeping, and returns the fired events in
    /// order.
    pub fn advance(&mut self, t: f64) -> Vec<FaultEvent> {
        let fired = self.state.advance(t);
        for e in &fired {
            match e.kind {
                FaultKind::GpuFail { gpu } => {
                    self.undetected.push((gpu, e.t + self.detection_delay));
                }
                FaultKind::GpuRecover { gpu } => {
                    // A recovered device rejoins the topology: clear any
                    // pending detection (the flap healed before the
                    // heartbeat timed out) and any standing removal.
                    self.undetected.retain(|&(g, _)| g != gpu);
                    self.detected.remove(&gpu);
                    self.evicted.remove(&gpu);
                }
                FaultKind::GpuSlowdown { .. } | FaultKind::LinkDegrade { .. } => {}
            }
        }
        fired
    }

    /// Drains failures whose heartbeat timeout has matured by time `t`,
    /// marking them detected (removed from the topology). Returns
    /// `(gpu, detection time)` pairs in firing order.
    pub fn mature_detections(&mut self, t: f64) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.undetected.len() {
            let (gpu, t_d) = self.undetected[i];
            if t_d <= t {
                self.undetected.remove(i);
                self.detected.insert(gpu);
                out.push((gpu, t_d));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Evicts a confirmed straggler from the topology.
    pub fn evict(&mut self, gpu: usize) {
        self.evicted.insert(gpu);
    }

    /// Devices currently removed from the topology (detected failures plus
    /// evicted stragglers).
    pub fn removed(&self) -> usize {
        self.detected.len() + self.evicted.len()
    }

    /// Current runtime multipliers. Failed and evicted devices do not
    /// dilate (they no longer run work); link factors come straight from
    /// the fault state.
    pub fn factors(&self) -> FaultFactors {
        let mut dilation = 1.0f64;
        for g in 0..self.state.total_gpus() {
            if self.evicted.contains(&g) {
                continue;
            }
            if let GpuStatus::Slowed(f) = self.state.status(g) {
                dilation = dilation.max(f);
            }
        }
        let link = self.state.link();
        FaultFactors { dilation, link_time: link.time_factor(), link_latency: link.latency_add }
    }

    /// The most-slowed live, non-evicted device, if any.
    pub fn worst_slowed_gpu(&self) -> Option<(usize, f64)> {
        let mut worst: Option<(usize, f64)> = None;
        for g in 0..self.state.total_gpus() {
            if self.evicted.contains(&g) {
                continue;
            }
            if let GpuStatus::Slowed(f) = self.state.status(g) {
                let beat = match worst {
                    Some((_, wf)) => f > wf,
                    None => true,
                };
                if beat {
                    worst = Some((g, f));
                }
            }
        }
        worst
    }

    /// The earliest virtual time at which the fault world changes: the
    /// next scheduled event or the next maturing detection. The idle loop
    /// folds this into its wake-up target so failures are detected (and
    /// replans installed) even across idle gaps.
    pub fn next_wake(&self) -> Option<f64> {
        let next_event = self.state.next_event_time();
        let next_detect = self.undetected.iter().map(|&(_, t_d)| t_d).fold(None, |acc, t| {
            Some(match acc {
                None => t,
                Some(a) => {
                    if t < a {
                        t
                    } else {
                        a
                    }
                }
            })
        });
        match (next_event, next_detect) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exegpt_faults::{FaultEvent, FaultKind};

    fn schedule(events: Vec<FaultEvent>) -> FaultSchedule {
        FaultSchedule::new(events).expect("valid")
    }

    #[test]
    fn failure_matures_through_detection_delay() {
        let s = schedule(vec![FaultEvent { t: 10.0, kind: FaultKind::GpuFail { gpu: 1 } }]);
        let mut d = FaultDriver::new(s, 4).expect("in range").with_detection_delay(0.5);
        assert_eq!(d.advance(10.0).len(), 1);
        assert!(d.mature_detections(10.2).is_empty(), "heartbeat not yet timed out");
        assert_eq!(d.next_wake(), Some(10.5));
        assert_eq!(d.mature_detections(10.5), vec![(1, 10.5)]);
        assert_eq!(d.removed(), 1);
        assert_eq!(d.next_wake(), None);
    }

    #[test]
    fn recovery_clears_detection_and_eviction() {
        let s = schedule(vec![
            FaultEvent { t: 1.0, kind: FaultKind::GpuFail { gpu: 0 } },
            FaultEvent { t: 5.0, kind: FaultKind::GpuRecover { gpu: 0 } },
            FaultEvent { t: 5.0, kind: FaultKind::GpuRecover { gpu: 2 } },
        ]);
        let mut d = FaultDriver::new(s, 4).expect("in range").with_detection_delay(0.5);
        d.advance(1.0);
        d.mature_detections(2.0);
        d.evict(2);
        assert_eq!(d.removed(), 2);
        d.advance(5.0);
        assert_eq!(d.removed(), 0, "recovery restores the whole topology");
    }

    #[test]
    fn flapping_failure_heals_before_detection() {
        let s = schedule(vec![
            FaultEvent { t: 1.0, kind: FaultKind::GpuFail { gpu: 0 } },
            FaultEvent { t: 1.1, kind: FaultKind::GpuRecover { gpu: 0 } },
        ]);
        let mut d = FaultDriver::new(s, 4).expect("in range").with_detection_delay(0.5);
        d.advance(2.0);
        assert!(d.mature_detections(2.0).is_empty(), "flap healed within the heartbeat window");
        assert_eq!(d.removed(), 0);
    }

    #[test]
    fn factors_exclude_failed_and_evicted_devices() {
        let s = schedule(vec![
            FaultEvent { t: 1.0, kind: FaultKind::GpuSlowdown { gpu: 0, factor: 3.0 } },
            FaultEvent { t: 1.0, kind: FaultKind::GpuSlowdown { gpu: 1, factor: 1.5 } },
            FaultEvent {
                t: 1.0,
                kind: FaultKind::LinkDegrade { bw_factor: 0.5, latency_add: 0.002 },
            },
        ]);
        let mut d = FaultDriver::new(s, 4).expect("in range");
        d.advance(1.0);
        assert_eq!(d.worst_slowed_gpu(), Some((0, 3.0)));
        assert!(d.factors().dilation >= 3.0);
        d.evict(0);
        let f = d.factors();
        assert!(f.dilation < 3.0 && f.dilation >= 1.5, "evicted straggler stops dilating");
        assert_eq!(d.worst_slowed_gpu(), Some((1, 1.5)));
        assert!(f.link_time > 1.9 && f.link_latency > 0.0);
    }

    #[test]
    fn empty_schedule_is_identity() {
        let mut d = FaultDriver::new(FaultSchedule::empty(), 4).expect("empty ok");
        assert!(d.advance(1e9).is_empty());
        assert_eq!(d.factors(), FaultFactors::nominal());
        assert_eq!(d.next_wake(), None);
        assert_eq!(d.removed(), 0);
    }

    #[test]
    fn straggler_detector_debounces_and_latches() {
        let mut det =
            StragglerDetector::new(StragglerOptions { rel_threshold: 1.25, consecutive: 3 });
        assert!(det.observe(2.0, 1.0).is_none());
        assert!(det.observe(2.0, 1.0).is_none());
        let declared = det.observe(2.0, 1.0);
        assert!(declared.is_some_and(|r| r >= 2.0), "third consecutive hit confirms");
        assert!(det.observe(2.0, 1.0).is_none(), "latched: no repeat declaration");
        assert!(det.observe(1.0, 1.0).is_none(), "ratio back to nominal unlatches");
        assert!(det.observe(2.0, 1.0).is_none());
        assert!(det.observe(2.0, 1.0).is_none());
        assert!(det.observe(2.0, 1.0).is_some(), "re-declares after unlatching");
    }

    #[test]
    fn zero_expected_phase_is_skipped() {
        let mut det =
            StragglerDetector::new(StragglerOptions { rel_threshold: 1.25, consecutive: 1 });
        assert!(det.observe(1.0, 0.0).is_none());
    }

    #[test]
    fn default_options_validate() {
        assert!(FaultOptions::default().validate().is_ok());
        let bad = FaultOptions { evict_slowdown: 1.0, ..FaultOptions::default() };
        assert!(bad.validate().is_err());
        let bad = FaultOptions { detection_delay: f64::NAN, ..FaultOptions::default() };
        assert!(bad.validate().is_err());
    }
}
