//! Structured event log of a serving run.
//!
//! Every externally observable action of the loop — arrivals, phases,
//! completions, drift checks, reschedules, plan swaps — is appended as a
//! typed event. The JSONL rendering is byte-deterministic for a fixed seed
//! (virtual time only, map-free payloads, stable float formatting), which
//! is what the determinism acceptance test compares.

use serde::Serialize;

/// One serving-loop event, stamped with virtual time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Event {
    /// A request entered the admission queue.
    Arrival {
        /// Arrival time.
        t: f64,
        /// Request id.
        id: u64,
        /// Input tokens.
        input_len: usize,
        /// Output tokens (enforced).
        output_len: usize,
    },
    /// Nothing in flight and nothing arrived: the loop jumped to the next
    /// arrival.
    Idle {
        /// When the server went idle.
        from: f64,
        /// Next arrival it woke at.
        until: f64,
    },
    /// An RRA encoding phase.
    Encode {
        /// Phase start.
        t_start: f64,
        /// Phase end.
        t_end: f64,
        /// Queries admitted into the pipeline.
        admitted: usize,
        /// Queue depth after admission.
        queue_depth: usize,
    },
    /// An RRA decoding phase (up to `N_D` iterations).
    Decode {
        /// Phase start.
        t_start: f64,
        /// Phase end.
        t_end: f64,
        /// Iterations executed.
        iters: usize,
        /// Queries completed during the phase.
        completed: usize,
    },
    /// One WAA coupled round (encode ∥ decode ∥ KV handover).
    Round {
        /// Round start.
        t_start: f64,
        /// Round end.
        t_end: f64,
        /// Queries admitted to the encoder group.
        admitted: usize,
        /// Decoder-pool size during the round.
        pool: usize,
    },
    /// A request finished all its output tokens.
    Completion {
        /// Completion time.
        t: f64,
        /// Request id.
        id: u64,
        /// Time to first token (from arrival).
        ttft: f64,
        /// End-to-end latency (from arrival).
        e2e: f64,
        /// Whether any SLO target was violated.
        violated: bool,
    },
    /// The drift detector compared its window to the scheduled
    /// distribution.
    DriftCheck {
        /// Check time.
        t: f64,
        /// Observed window mean output length.
        window_mean: f64,
        /// Output mean the current schedule was optimized for.
        scheduled_mean: f64,
        /// Relative shift `|window − scheduled| / scheduled`.
        rel_shift: f64,
        /// Whether drift was declared (threshold held for enough
        /// consecutive checks).
        drifted: bool,
    },
    /// Drift triggered a live reschedule on the warm engine.
    Reschedule {
        /// Decision time.
        t: f64,
        /// Schedule being replaced.
        from: String,
        /// Schedule chosen for the refitted workload.
        to: String,
        /// Refitted output-distribution mean handed to the scheduler.
        refit_mean: f64,
    },
    /// A reschedule attempt found no feasible schedule; serving continues
    /// on the old plan.
    RescheduleFailed {
        /// Decision time.
        t: f64,
        /// Scheduler error.
        why: String,
    },
    /// The new plan was installed at a phase boundary.
    PlanSwap {
        /// Swap time (after paying `cost`).
        t: f64,
        /// Virtual seconds spent redeploying (0 for compatible plans).
        cost: f64,
        /// In-flight queries whose KV entries migrated to the new plan.
        migrated: usize,
    },
    /// An injected fault event became active (stamped with its scheduled
    /// activation time, which may precede the phase boundary that logs it).
    Fault {
        /// Scheduled activation time.
        t: f64,
        /// Human-readable description of the fault.
        desc: String,
    },
    /// A device failure matured through the heartbeat timeout; the failed
    /// device is removed from the topology and in-flight work is aborted
    /// into the retry queue.
    FaultDetected {
        /// Detection time (failure activation + detection delay, or the
        /// phase boundary that noticed it, whichever is later).
        t: f64,
        /// The failed device.
        gpu: usize,
        /// In-flight queries aborted for retry.
        aborted: usize,
    },
    /// Observed phase timings confirmed a straggling device.
    StragglerDetected {
        /// Confirmation time.
        t: f64,
        /// The straggling device.
        gpu: usize,
        /// Its injected slowdown factor.
        factor: f64,
        /// Whether the policy evicts it from the topology (vs tolerating
        /// the dilation).
        evicted: bool,
    },
    /// An aborted request was queued for retry with exponential backoff.
    RequestRetry {
        /// Abort time.
        t: f64,
        /// Request id.
        id: u64,
        /// Retry attempt number (1 = first retry).
        attempt: usize,
        /// Virtual time at which the request re-enters admission.
        eligible_at: f64,
    },
    /// An aborted request exhausted its retry budget and was dropped.
    RequestLost {
        /// Drop time.
        t: f64,
        /// Request id.
        id: u64,
        /// Abort count at the drop.
        attempts: usize,
    },
    /// A fault-driven replan chose a plan for the changed topology.
    Replan {
        /// Decision time.
        t: f64,
        /// Why: `failover` (devices lost) or `recovery` (devices back).
        reason: String,
        /// Devices in the new topology.
        gpus: usize,
        /// Schedule chosen for it.
        to: String,
        /// Whether the pre-fault plan was reinstalled verbatim (full
        /// recovery with no interleaved workload refit).
        restored: bool,
    },
    /// A fault-driven replan found no feasible schedule.
    ReplanFailed {
        /// Decision time.
        t: f64,
        /// Scheduler error.
        why: String,
    },
}

/// Append-only event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the log as JSON Lines (one event per line). Deterministic
    /// for a deterministic run; the acceptance test compares runs
    /// byte-for-byte on this output.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            // xlint::allow(P1, Event is a plain data struct; serialization cannot fail)
            out.push_str(&serde_json::to_string(e).expect("events serialize"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_is_one_line_per_event_and_stable() {
        let mut log = EventLog::new();
        log.push(Event::Arrival { t: 0.25, id: 1, input_len: 128, output_len: 64 });
        log.push(Event::Idle { from: 0.25, until: 1.5 });
        let a = log.to_jsonl();
        let b = log.to_jsonl();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 2);
        assert!(a.lines().next().unwrap().contains("Arrival"));
    }
}
