//! The serving loop's metrics registry.
//!
//! Counters, gauges and latency histograms keyed by name, with summaries
//! (mean/p50/p95/p99/max) computed through the shared
//! [`exegpt_dist::stats::summary`] helper — the same percentile code the
//! offline runner reports use, so online and offline numbers agree by
//! construction.

use std::collections::BTreeMap;

use exegpt_dist::stats::{self, Summary};
use serde::Serialize;

/// In-memory metrics registry: monotonic counters, last-write-wins gauges
/// and raw-sample histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Vec<f64>>,
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by 1.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `n`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records one sample into histogram `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_owned()).or_default().push(value);
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Raw samples of histogram `name`.
    pub fn samples(&self, name: &str) -> &[f64] {
        self.histograms.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Summary statistics of histogram `name` (`None` if empty/absent).
    pub fn summary(&self, name: &str) -> Option<Summary> {
        stats::summary(self.samples(name))
    }

    /// An immutable, serializable snapshot: histograms are collapsed to
    /// their summaries. Map-backed, so the rendering order (and the JSON
    /// byte stream) is deterministic.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            summaries: self
                .histograms
                .iter()
                .filter_map(|(k, v)| stats::summary(v).map(|s| (k.clone(), s)))
                .collect(),
        }
    }
}

/// Point-in-time view of a [`Metrics`] registry.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries (count/mean/p50/p95/p99/max).
    pub summaries: BTreeMap<String, Summary>,
}

impl MetricsSnapshot {
    /// Renders a fixed-width text table (for CLI output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<28} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k:<28} {v:.6}\n"));
        }
        for (k, s) in &self.summaries {
            out.push_str(&format!(
                "{k:<28} n={} mean={:.4}s p50={:.4}s p95={:.4}s p99={:.4}s max={:.4}s\n",
                s.count, s.mean, s.p50, s.p95, s.p99, s.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut m = Metrics::new();
        m.inc("completions");
        m.add("completions", 2);
        m.gauge("queue_depth", 7.0);
        for i in 1..=100 {
            m.observe("e2e", i as f64);
        }
        assert_eq!(m.counter("completions"), 3);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge_value("queue_depth"), Some(7.0));
        let s = m.summary("e2e").expect("non-empty");
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert!(m.summary("missing").is_none());
    }

    #[test]
    fn snapshot_is_deterministic_and_serializable() {
        let mut m = Metrics::new();
        m.inc("b");
        m.inc("a");
        m.observe("lat", 1.0);
        let snap = m.snapshot();
        let j1 = serde_json::to_string(&snap).expect("serializes");
        let j2 = serde_json::to_string(&m.snapshot()).expect("serializes");
        assert_eq!(j1, j2, "snapshot serialization is stable");
        // BTreeMap ordering: "a" before "b" in the rendered table.
        let table = snap.render();
        assert!(table.find("a ").unwrap() < table.find("b ").unwrap());
        assert!(table.contains("p99"));
    }
}
