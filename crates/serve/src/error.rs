//! Serving-loop errors.

use exegpt::ScheduleError;
use exegpt_cluster::ClusterError;
use exegpt_dist::DistError;
use exegpt_faults::FaultError;
use exegpt_runner::RunError;

/// Errors raised by the serving loop.
#[derive(Debug)]
pub enum ServeError {
    /// Execution failed (infeasible schedule, out-of-range batch, stall).
    Run(RunError),
    /// The initial schedule could not be built.
    Schedule(ScheduleError),
    /// Online distribution refitting failed.
    Dist(DistError),
    /// The fault schedule was invalid for this deployment.
    Fault(FaultError),
    /// The degraded topology could not be built (e.g. every device failed).
    Cluster(ClusterError),
    /// A device failure left no feasible schedule on the survivors; the
    /// run cannot continue.
    Failover {
        /// Devices remaining.
        survivors: usize,
        /// Scheduler error on the surviving topology.
        why: String,
    },
    /// An option was invalid.
    InvalidOption {
        /// Which option.
        what: &'static str,
        /// Why it was rejected.
        why: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Run(e) => write!(f, "serving run failed: {e}"),
            ServeError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            ServeError::Dist(e) => write!(f, "distribution refit failed: {e}"),
            ServeError::Fault(e) => write!(f, "invalid fault schedule: {e}"),
            ServeError::Cluster(e) => write!(f, "degraded topology is invalid: {e}"),
            ServeError::Failover { survivors, why } => {
                write!(f, "no feasible schedule on the {survivors} surviving devices: {why}")
            }
            ServeError::InvalidOption { what, why } => {
                write!(f, "invalid serve option `{what}`: {why}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Run(e) => Some(e),
            ServeError::Schedule(e) => Some(e),
            ServeError::Dist(e) => Some(e),
            ServeError::Fault(e) => Some(e),
            ServeError::Cluster(e) => Some(e),
            ServeError::Failover { .. } | ServeError::InvalidOption { .. } => None,
        }
    }
}

impl From<RunError> for ServeError {
    fn from(e: RunError) -> Self {
        ServeError::Run(e)
    }
}

impl From<ScheduleError> for ServeError {
    fn from(e: ScheduleError) -> Self {
        ServeError::Schedule(e)
    }
}

impl From<DistError> for ServeError {
    fn from(e: DistError) -> Self {
        ServeError::Dist(e)
    }
}

impl From<FaultError> for ServeError {
    fn from(e: FaultError) -> Self {
        ServeError::Fault(e)
    }
}

impl From<ClusterError> for ServeError {
    fn from(e: ClusterError) -> Self {
        ServeError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::InvalidOption { what: "drift.window", why: "must be > 0".into() };
        assert!(e.to_string().contains("drift.window"));
        let e: ServeError = DistError::EmptySamples.into();
        assert!(e.to_string().contains("refit"));
    }
}
