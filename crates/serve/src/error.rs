//! Serving-loop errors.

use exegpt::ScheduleError;
use exegpt_dist::DistError;
use exegpt_runner::RunError;

/// Errors raised by the serving loop.
#[derive(Debug)]
pub enum ServeError {
    /// Execution failed (infeasible schedule, out-of-range batch, stall).
    Run(RunError),
    /// The initial schedule could not be built.
    Schedule(ScheduleError),
    /// Online distribution refitting failed.
    Dist(DistError),
    /// An option was invalid.
    InvalidOption {
        /// Which option.
        what: &'static str,
        /// Why it was rejected.
        why: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Run(e) => write!(f, "serving run failed: {e}"),
            ServeError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            ServeError::Dist(e) => write!(f, "distribution refit failed: {e}"),
            ServeError::InvalidOption { what, why } => {
                write!(f, "invalid serve option `{what}`: {why}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Run(e) => Some(e),
            ServeError::Schedule(e) => Some(e),
            ServeError::Dist(e) => Some(e),
            ServeError::InvalidOption { .. } => None,
        }
    }
}

impl From<RunError> for ServeError {
    fn from(e: RunError) -> Self {
        ServeError::Run(e)
    }
}

impl From<ScheduleError> for ServeError {
    fn from(e: ScheduleError) -> Self {
        ServeError::Schedule(e)
    }
}

impl From<DistError> for ServeError {
    fn from(e: DistError) -> Self {
        ServeError::Dist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::InvalidOption { what: "drift.window", why: "must be > 0".into() };
        assert!(e.to_string().contains("drift.window"));
        let e: ServeError = DistError::EmptySamples.into();
        assert!(e.to_string().contains("refit"));
    }
}
