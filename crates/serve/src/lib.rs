//! exegpt-serve: the online serving loop for ExeGPT schedules.
//!
//! The scheduler ([`exegpt::Scheduler`]) picks the throughput-optimal
//! schedule for an *assumed* output-length distribution; this crate closes
//! the loop at serving time. A [`ServeLoop`] plays a timed arrival stream
//! (Poisson, bursty, or trace-driven — see [`exegpt_workload`]) through the
//! same discrete-event phase machinery the offline runner uses
//! ([`exegpt_runner::PhaseExecutor`]), while a control loop
//!
//! 1. tracks per-request TTFT, per-token and end-to-end latency against
//!    [`SloTargets`],
//! 2. re-estimates the output-length distribution online over a sliding
//!    window of completions ([`DriftDetector`]),
//! 3. detects drift away from the distribution the schedule was optimized
//!    for (paper §7.6, Figure 11), and
//! 4. reschedules on the warm engine ([`exegpt::Engine::reschedule`]) and
//!    swaps the plan in at a phase boundary, charging a redeployment cost
//!    when the GPU allocation changed (§7.7), and
//! 5. optionally replays a deterministic fault scenario
//!    ([`FaultOptions`] / [`exegpt_faults::FaultSchedule`]): stragglers
//!    dilate phase timings until confirmed and evicted, failed devices
//!    abort in-flight work into a bounded-backoff retry queue, and the
//!    loop replans onto the surviving topology — reinstalling the original
//!    plan verbatim once the cluster heals.
//!
//! Counters, gauges and latency histograms live in a [`Metrics`] registry;
//! every externally observable action lands in a structured [`EventLog`]
//! whose JSONL rendering is byte-deterministic for a fixed seed.
//!
//! # Example
//!
//! ```no_run
//! use exegpt::Engine;
//! use exegpt_cluster::ClusterSpec;
//! use exegpt_model::ModelConfig;
//! use exegpt_serve::{ServeLoop, ServeOptions, SloTargets};
//! use exegpt_units::Secs;
//! use exegpt_workload::{PoissonStream, Task};
//!
//! let workload = Task::Translation.workload()?;
//! let engine = Engine::builder()
//!     .model(ModelConfig::opt_13b())
//!     .cluster(ClusterSpec::a40_cluster().subcluster(4)?)
//!     .workload(workload.clone())
//!     .build()?;
//! let schedule = engine.schedule(Secs::INFINITY)?;
//!
//! let opts = ServeOptions { slo: SloTargets::e2e(Secs::new(60.0)), ..ServeOptions::default() };
//! let arrivals: Vec<_> = PoissonStream::new(&workload, 10.0, 7).take(500).collect();
//! let report = ServeLoop::new(engine, &schedule.config, opts)?.run(arrivals)?;
//! println!("p99 e2e = {:.2}s", report.e2e.unwrap().p99);
//! println!("SLO violation rate = {:.1}%", report.slo.violation_rate() * 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod drift;
mod error;
mod events;
mod faults;
mod metrics;
mod server;
mod slo;
mod traffic;

pub use drift::{DriftCheck, DriftDetector, DriftOptions};
pub use error::ServeError;
pub use events::{Event, EventLog};
pub use faults::{FaultDriver, FaultFactors, FaultOptions, StragglerDetector, StragglerOptions};
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::{
    Completion, ReplicaSession, ReplicaStep, ServeLoop, ServeOptions, ServeReport, StepOutcome,
};
pub use slo::{SloCheck, SloOutcome, SloTargets};
pub use traffic::poisson_with_shift;
