//! CI smoke run for fault injection and graceful degradation.
//!
//! Serves a Poisson stream through the adaptive loop while a seeded
//! [`exegpt_faults::FaultSchedule`] kills a device mid-run, slows another,
//! and recovers both. Asserts the degradation invariants (failure detected,
//! replan onto survivors, zero lost requests, recovery restores the
//! original plan) and prints a deterministic digest of the event log so CI
//! can pin byte-determinism across runs. Exits non-zero on any violation.

use exegpt::Engine;
use exegpt_cluster::ClusterSpec;
use exegpt_faults::{FaultEvent, FaultKind, FaultSchedule};
use exegpt_model::ModelConfig;
use exegpt_serve::{
    FaultOptions, ServeLoop, ServeOptions, ServeReport, SloTargets, StragglerOptions,
};
use exegpt_units::Secs;
use exegpt_workload::{PoissonStream, Task, TimedRequest};

/// FNV-1a over the JSONL event log: a stable, dependency-free digest two
/// runs (or two CI machines) can compare.
fn digest(jsonl: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in jsonl.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn serve(
    engine: &Engine,
    cfg: &exegpt::ScheduleConfig,
    arrivals: &[TimedRequest],
    opts: &ServeOptions,
) -> Result<ServeReport, Box<dyn std::error::Error>> {
    Ok(ServeLoop::new(engine.clone(), cfg, opts.clone())?.run(arrivals.to_vec())?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let total: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("usage: faults-smoke [num_requests]"))
        .unwrap_or(800);

    let workload = Task::Translation.workload()?;
    let engine = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4)?)
        .workload(workload.clone())
        .build()?;
    let schedule = engine.schedule(Secs::new(30.0))?;
    println!("schedule: {}", schedule.config.describe());

    let rate = 0.6 * schedule.estimate.throughput;
    let arrivals: Vec<TimedRequest> = PoissonStream::new(&workload, rate, 7).take(total).collect();
    let horizon = arrivals.last().map(|r| r.arrival).unwrap_or(0.0);

    // One device dies a quarter into the arrival window; another straggles
    // at 3x (above the eviction threshold) from 40% in. Both recover
    // during the backlog drain (the degraded cluster runs well past the
    // last arrival), so the smoke exercises failover, straggler eviction,
    // staged recovery and the verbatim plan restore.
    let faults = FaultSchedule::new(vec![
        FaultEvent { t: 0.25 * horizon, kind: FaultKind::GpuFail { gpu: 3 } },
        FaultEvent { t: 0.40 * horizon, kind: FaultKind::GpuSlowdown { gpu: 1, factor: 3.0 } },
        FaultEvent { t: 1.20 * horizon, kind: FaultKind::GpuRecover { gpu: 1 } },
        FaultEvent { t: 1.40 * horizon, kind: FaultKind::GpuRecover { gpu: 3 } },
    ])?;
    let opts = ServeOptions {
        slo: SloTargets { ttft: None, per_token: None, e2e: Some(schedule.estimate.latency * 4.0) },
        faults: Some(FaultOptions {
            schedule: faults,
            // Backlogged phases are long; two dilated phases are enough
            // evidence here (the default debounce of 3 suits short phases).
            straggler: StragglerOptions { rel_threshold: 1.25, consecutive: 2 },
            ..FaultOptions::default()
        }),
        // Drift adaptation off: the degraded period builds a backlog whose
        // drain is output-length-biased, which would trigger drift
        // reschedules and obscure the fault path this smoke pins down.
        adaptive: false,
        ..ServeOptions::default()
    };

    let report = serve(&engine, &schedule.config, &arrivals, &opts)?;
    let replay = serve(&engine, &schedule.config, &arrivals, &opts)?;

    println!(
        "completed={} events={} faults={} detected={} stragglers={} replans={} retries={} lost={} final={}",
        report.completed,
        report.events.len(),
        report.faults_injected,
        report.faults_detected,
        report.stragglers_detected,
        report.replans,
        report.retries,
        report.requests_lost,
        report.final_schedule,
    );

    // Archive the log first (even a failing run is worth diffing in CI).
    let jsonl = report.events.to_jsonl();
    if let Some(path) = std::env::var_os("FAULTS_SMOKE_LOG") {
        std::fs::write(&path, &jsonl)?;
        println!("event log written to {}", std::path::Path::new(&path).display());
    }

    // Degradation invariants (the point of this smoke run).
    assert_eq!(report.faults_injected, 4, "every scheduled fault fires");
    assert_eq!(report.faults_detected, 1, "the failure is detected exactly once");
    assert_eq!(report.stragglers_detected, 1, "the straggler is confirmed exactly once");
    assert!(report.replans >= 3, "failover, eviction and recovery all replan");
    assert_eq!(report.requests_lost, 0, "graceful degradation loses nothing");
    assert_eq!(report.completed, total, "every request completes");
    assert_eq!(
        report.final_schedule,
        schedule.config.describe(),
        "recovery restores the original plan"
    );
    assert!(report.slo.is_consistent(), "SLO accounting inconsistent: {:?}", report.slo);

    // Byte-determinism: an identical replay produces an identical log.
    assert_eq!(jsonl, replay.events.to_jsonl(), "replay must be byte-identical");
    println!("event-log digest: {:016x} ({} events)", digest(&jsonl), report.events.len());
    println!("faults-smoke OK");
    Ok(())
}
