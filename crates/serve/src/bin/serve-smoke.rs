//! CI smoke run for the serving loop.
//!
//! Serves a mid-run distribution shift (§7.6) through the adaptive loop on
//! a small deployment and asserts the SLO accounting invariants hold over
//! a few thousand events. Exits non-zero on any violated invariant.

use exegpt::Engine;
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_serve::{poisson_with_shift, ServeLoop, ServeOptions, SloTargets};
use exegpt_sim::Workload;
use exegpt_units::Secs;
use exegpt_workload::Task;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let total: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("usage: serve-smoke [num_requests]"))
        .unwrap_or(1000);

    let base = Task::Translation.workload()?;
    let shifted = Workload::new(base.input().clone(), base.output().with_scaled_mean(1.5)?);
    let engine = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4)?)
        .workload(base.clone())
        .build()?;
    let schedule = engine.schedule(Secs::new(30.0))?;
    println!("schedule: {}", schedule.config.describe());
    println!("estimated throughput: {:.2} q/s", schedule.estimate.throughput);

    // Load at 60% of the scheduled capacity, generous SLOs: violations are
    // possible (post-shift) but accounting must stay consistent either way.
    let rate = 0.6 * schedule.estimate.throughput;
    let arrivals = poisson_with_shift(&base, &shifted, rate, total / 2, total, 7);
    let opts = ServeOptions {
        slo: SloTargets { ttft: None, per_token: None, e2e: Some(schedule.estimate.latency * 2.0) },
        ..ServeOptions::default()
    };
    let report = ServeLoop::new(engine, &schedule.config, opts)?.run(arrivals)?;

    println!("{}", report.metrics.render());
    println!(
        "completed={} events={} violations={} ({:.2}%) reschedules={} swaps={} final={}",
        report.completed,
        report.events.len(),
        report.slo.violations,
        report.slo.violation_rate() * 100.0,
        report.reschedules,
        report.plan_swaps,
        report.final_schedule,
    );

    // SLO-accounting invariants (the point of this smoke run).
    assert!(report.slo.is_consistent(), "SLO accounting inconsistent: {:?}", report.slo);
    assert_eq!(report.slo.checked, report.completed, "every completion is SLO-checked");
    assert_eq!(report.completed, total, "every request completes");
    assert!(report.events.len() >= 2000, "expected >= 2000 events, got {}", report.events.len());
    assert!(report.makespan > 0.0 && report.throughput > 0.0);
    if let (Some(ttft), Some(e2e)) = (&report.ttft, &report.e2e) {
        assert!(ttft.mean <= e2e.mean, "TTFT cannot exceed end-to-end latency on average");
    }
    println!("serve-smoke OK");
    Ok(())
}
