//! Service-level objectives and per-request violation accounting.
//!
//! The paper's SLA discussion (§7.6) frames constraints as "99% of all
//! queries completed within a given timeframe"; an online server checks the
//! underlying per-request quantities directly: time to first token (TTFT),
//! time per generated token after the first, and end-to-end latency — all
//! measured from *arrival*, so queueing delay counts.

use exegpt_units::Secs;
use serde::Serialize;

/// Per-request latency targets, each optional (`None` = unconstrained).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SloTargets {
    /// Max time from arrival to the first generated token.
    pub ttft: Option<Secs>,
    /// Max time per generated token after the first (decode cadence).
    pub per_token: Option<Secs>,
    /// Max time from arrival to the last generated token.
    pub e2e: Option<Secs>,
}

impl Default for SloTargets {
    fn default() -> Self {
        Self::unconstrained()
    }
}

impl SloTargets {
    /// No constraints: every request trivially meets its SLO.
    pub fn unconstrained() -> Self {
        Self { ttft: None, per_token: None, e2e: None }
    }

    /// Only an end-to-end bound.
    pub fn e2e(bound: Secs) -> Self {
        Self { ttft: None, per_token: None, e2e: Some(bound) }
    }

    /// Checks one completed request. `per_token` is `None` for
    /// single-token outputs (no decode cadence to measure).
    pub fn check(&self, ttft: Secs, per_token: Option<Secs>, e2e: Secs) -> SloCheck {
        let exceeded = |target: Option<Secs>, got: Option<Secs>| match (target, got) {
            (Some(t), Some(g)) => g > t,
            _ => false,
        };
        SloCheck {
            ttft_violated: exceeded(self.ttft, Some(ttft)),
            per_token_violated: exceeded(self.per_token, per_token),
            e2e_violated: exceeded(self.e2e, Some(e2e)),
        }
    }
}

/// Outcome of checking one request against [`SloTargets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloCheck {
    /// TTFT target exceeded.
    pub ttft_violated: bool,
    /// Per-token target exceeded.
    pub per_token_violated: bool,
    /// End-to-end target exceeded.
    pub e2e_violated: bool,
}

impl SloCheck {
    /// Whether any target was exceeded.
    pub fn violated(&self) -> bool {
        self.ttft_violated || self.per_token_violated || self.e2e_violated
    }
}

/// Aggregated SLO accounting over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct SloOutcome {
    /// Requests checked (== completions).
    pub checked: usize,
    /// Requests violating the TTFT target.
    pub ttft_violations: usize,
    /// Requests violating the per-token target.
    pub per_token_violations: usize,
    /// Requests violating the end-to-end target.
    pub e2e_violations: usize,
    /// Requests violating *any* target (≤ sum of the per-target counts).
    pub violations: usize,
}

impl SloOutcome {
    /// Folds one per-request check into the totals.
    pub fn record(&mut self, check: SloCheck) {
        self.checked += 1;
        self.ttft_violations += usize::from(check.ttft_violated);
        self.per_token_violations += usize::from(check.per_token_violated);
        self.e2e_violations += usize::from(check.e2e_violated);
        self.violations += usize::from(check.violated());
    }

    /// Fraction of checked requests violating any target (0 when none
    /// checked).
    pub fn violation_rate(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.violations as f64 / self.checked as f64
        }
    }

    /// Internal-consistency invariants; the CI smoke run asserts these.
    pub fn is_consistent(&self) -> bool {
        self.violations <= self.checked
            && self.ttft_violations <= self.violations
            && self.per_token_violations <= self.violations
            && self.e2e_violations <= self.violations
            && self.violations
                <= self.ttft_violations + self.per_token_violations + self.e2e_violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_never_violates() {
        let slo = SloTargets::unconstrained();
        assert!(!slo.check(Secs::new(1e9), Some(Secs::new(1e9)), Secs::new(1e9)).violated());
    }

    #[test]
    fn each_target_is_checked_independently() {
        let slo = SloTargets {
            ttft: Some(Secs::new(1.0)),
            per_token: Some(Secs::new(0.1)),
            e2e: Some(Secs::new(10.0)),
        };
        let c = slo.check(Secs::new(2.0), Some(Secs::new(0.05)), Secs::new(5.0));
        assert!(c.ttft_violated && !c.per_token_violated && !c.e2e_violated);
        let c = slo.check(Secs::new(0.5), Some(Secs::new(0.2)), Secs::new(5.0));
        assert!(!c.ttft_violated && c.per_token_violated && !c.e2e_violated);
        let c = slo.check(Secs::new(0.5), None, Secs::new(20.0));
        assert!(!c.ttft_violated && !c.per_token_violated && c.e2e_violated);
    }

    #[test]
    fn outcome_accounting_is_consistent() {
        let slo =
            SloTargets { ttft: Some(Secs::new(1.0)), per_token: None, e2e: Some(Secs::new(4.0)) };
        let mut out = SloOutcome::default();
        out.record(slo.check(Secs::new(0.5), None, Secs::new(2.0))); // ok
        out.record(slo.check(Secs::new(2.0), None, Secs::new(5.0))); // both
        out.record(slo.check(Secs::new(0.5), None, Secs::new(5.0))); // e2e only
        assert_eq!(out.checked, 3);
        assert_eq!(out.violations, 2);
        assert_eq!(out.ttft_violations, 1);
        assert_eq!(out.e2e_violations, 2);
        assert!((out.violation_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!(out.is_consistent());
    }
}
