//! Online output-length drift detection (§5.2 / §7.6).
//!
//! The scheduler optimizes for an output-length distribution; when live
//! traffic drifts away from it, the schedule's encode/decode balance is
//! wrong and throughput/latency degrade (paper Figure 11). The detector
//! keeps a sliding window of *completed* output lengths, periodically
//! compares the window mean to the scheduled mean, and — after the
//! relative shift exceeds a threshold for several consecutive checks —
//! declares drift. The serving loop then refits a distribution to the
//! window ([`exegpt_dist::fit::best_fit`]) and reschedules on the warm
//! engine.

use exegpt_dist::fit::{best_fit, Fit};
use exegpt_dist::DistError;

/// Tuning knobs of the [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftOptions {
    /// Sliding-window capacity in completed requests.
    pub window: usize,
    /// Minimum window occupancy before any check fires.
    pub min_samples: usize,
    /// Completions between consecutive checks.
    pub check_every: usize,
    /// Relative mean shift `|window − scheduled| / scheduled` that counts
    /// as a hit.
    pub rel_threshold: f64,
    /// Consecutive hits required to declare drift (debouncing).
    pub consecutive: usize,
}

impl Default for DriftOptions {
    fn default() -> Self {
        Self { window: 256, min_samples: 64, check_every: 32, rel_threshold: 0.2, consecutive: 2 }
    }
}

/// Result of one drift check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftCheck {
    /// Mean output length over the window.
    pub window_mean: f64,
    /// Output mean the current schedule was optimized for.
    pub scheduled_mean: f64,
    /// `|window_mean − scheduled_mean| / scheduled_mean`.
    pub rel_shift: f64,
    /// Whether drift is declared as of this check.
    pub drifted: bool,
}

/// Sliding-window drift detector over completed output lengths.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    opts: DriftOptions,
    window: std::collections::VecDeque<usize>,
    since_check: usize,
    hits: usize,
    checks: usize,
}

impl DriftDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `window`, `check_every` or `consecutive` is zero, or
    /// `min_samples > window`.
    pub fn new(opts: DriftOptions) -> Self {
        assert!(opts.window > 0, "window must be positive");
        assert!(opts.check_every > 0, "check_every must be positive");
        assert!(opts.consecutive > 0, "consecutive must be positive");
        assert!(opts.min_samples <= opts.window, "min_samples cannot exceed window");
        Self {
            opts,
            window: std::collections::VecDeque::with_capacity(opts.window),
            since_check: 0,
            hits: 0,
            checks: 0,
        }
    }

    /// Feeds one completed output length; every `check_every` completions
    /// (once `min_samples` are buffered) returns a [`DriftCheck`] against
    /// `scheduled_mean`.
    pub fn observe(&mut self, output_len: usize, scheduled_mean: f64) -> Option<DriftCheck> {
        if self.window.len() == self.opts.window {
            self.window.pop_front();
        }
        self.window.push_back(output_len);
        self.since_check += 1;
        if self.window.len() < self.opts.min_samples || self.since_check < self.opts.check_every {
            return None;
        }
        self.since_check = 0;
        self.checks += 1;
        let window_mean =
            self.window.iter().map(|&l| l as f64).sum::<f64>() / self.window.len() as f64;
        let rel_shift = if scheduled_mean > 0.0 {
            (window_mean - scheduled_mean).abs() / scheduled_mean
        } else {
            f64::INFINITY
        };
        if rel_shift > self.opts.rel_threshold {
            self.hits += 1;
        } else {
            self.hits = 0;
        }
        Some(DriftCheck {
            window_mean,
            scheduled_mean,
            rel_shift,
            drifted: self.hits >= self.opts.consecutive,
        })
    }

    /// Fits a fresh output-length distribution to the current window
    /// (best family by penalized log-likelihood).
    ///
    /// # Errors
    ///
    /// Returns a [`DistError`] if the window is empty or degenerate for
    /// every family.
    pub fn refit(&self) -> Result<Fit, DistError> {
        let samples: Vec<usize> = self.window.iter().copied().collect();
        best_fit(&samples)
    }

    /// Clears the window and hit counters — called after a reschedule so
    /// the detector restarts against the *new* scheduled distribution.
    pub fn reset(&mut self) {
        self.window.clear();
        self.since_check = 0;
        self.hits = 0;
    }

    /// Buffered completions.
    pub fn samples(&self) -> usize {
        self.window.len()
    }

    /// Checks performed so far (not reset by [`reset`](Self::reset)).
    pub fn checks(&self) -> usize {
        self.checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> DriftOptions {
        DriftOptions {
            window: 64,
            min_samples: 16,
            check_every: 8,
            rel_threshold: 0.2,
            consecutive: 2,
        }
    }

    #[test]
    fn stable_traffic_never_drifts() {
        let mut d = DriftDetector::new(opts());
        let mut drifted = false;
        for i in 0..200 {
            if let Some(c) = d.observe(100 + (i % 5), 102.0) {
                assert!(c.rel_shift < 0.2);
                drifted |= c.drifted;
            }
        }
        assert!(!drifted);
        assert!(d.checks() > 0, "checks did fire");
    }

    #[test]
    fn sustained_shift_is_declared_after_debounce() {
        let mut d = DriftDetector::new(opts());
        // Scheduled mean 100, actual 160: rel shift ramps up as the window
        // fills with shifted lengths.
        let mut first_drift_check = None;
        for i in 0..200 {
            if let Some(c) = d.observe(160, 100.0) {
                if c.drifted && first_drift_check.is_none() {
                    first_drift_check = Some(d.checks());
                }
                if first_drift_check.is_none() {
                    // Not yet debounced: needs `consecutive` threshold hits.
                    assert!(d.checks() < 2 || c.rel_shift <= 0.2 || i < 32);
                }
            }
        }
        let at = first_drift_check.expect("drift declared");
        assert!(at >= 2, "debounce requires at least `consecutive` checks, got {at}");
    }

    #[test]
    fn transient_spike_is_debounced_away() {
        let mut d = DriftDetector::new(DriftOptions {
            window: 8,
            min_samples: 4,
            check_every: 4,
            rel_threshold: 0.2,
            consecutive: 2,
        });
        // A short spike, washed out of the window before a second
        // consecutive hit can accumulate.
        let lens = [160, 160, 100, 100, 100, 100, 100, 100];
        let mut drifted = false;
        for &l in &lens {
            if let Some(c) = d.observe(l, 100.0) {
                drifted |= c.drifted;
            }
        }
        assert!(!drifted, "single-hit spike must not declare drift");
    }

    #[test]
    fn refit_recovers_window_mean_and_reset_clears() {
        let mut d = DriftDetector::new(opts());
        for _ in 0..64 {
            d.observe(150, 100.0);
        }
        let fit = d.refit().expect("fits");
        assert!((fit.dist.mean() - 150.0).abs() < 15.0, "refit mean near window mean");
        d.reset();
        assert_eq!(d.samples(), 0);
        assert!(d.refit().is_err(), "empty window cannot be fitted");
    }
}
