//! Arrival-stream constructors for serving experiments.

use exegpt_sim::Workload;
use exegpt_workload::{PoissonStream, TimedRequest};

/// A Poisson arrival stream whose request population switches from `base`
/// to `shifted` after `shift_after` requests — the paper's §7.6
/// distribution-shift experiment (Figure 11) expressed as live traffic.
///
/// The rate is held constant across the shift; only the sampled
/// input/output lengths change. Ids are reassigned sequentially so the
/// combined stream has unique ids, and the second segment's clock is
/// offset to continue where the first left off. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `shift_after > total` or `rate_qps` is not positive.
///
/// # Example
///
/// ```
/// use exegpt_serve::poisson_with_shift;
/// use exegpt_workload::Task;
///
/// let base = Task::Translation.workload()?;
/// let shifted = exegpt_sim::Workload::new(
///     base.input().clone(),
///     base.output().with_scaled_mean(1.5)?,
/// );
/// let arrivals = poisson_with_shift(&base, &shifted, 10.0, 50, 100, 7);
/// assert_eq!(arrivals.len(), 100);
/// assert!(arrivals.windows(2).all(|p| p[0].arrival <= p[1].arrival));
/// assert!(arrivals.iter().enumerate().all(|(i, r)| r.request.id == i as u64));
/// # Ok::<(), exegpt_dist::DistError>(())
/// ```
pub fn poisson_with_shift(
    base: &Workload,
    shifted: &Workload,
    rate_qps: f64,
    shift_after: usize,
    total: usize,
    seed: u64,
) -> Vec<TimedRequest> {
    assert!(shift_after <= total, "shift point beyond stream length");
    let mut out: Vec<TimedRequest> =
        PoissonStream::new(base, rate_qps, seed).take(shift_after).collect();
    let offset = out.last().map_or(0.0, |r| r.arrival);
    out.extend(
        PoissonStream::new(shifted, rate_qps, seed ^ 0xd1f7_65aa_20c3_9e4b)
            .take(total - shift_after)
            .map(|mut r| {
                r.arrival += offset;
                r
            }),
    );
    for (i, r) in out.iter_mut().enumerate() {
        r.request.id = i as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exegpt_workload::Task;

    #[test]
    fn shift_changes_the_sampled_population() {
        let base = Task::Translation.workload().expect("valid");
        let shifted = Workload::new(
            base.input().clone(),
            base.output().with_scaled_mean(2.0).expect("valid"),
        );
        let arrivals = poisson_with_shift(&base, &shifted, 20.0, 300, 600, 11);
        assert_eq!(arrivals.len(), 600);
        let mean = |rs: &[TimedRequest]| {
            rs.iter().map(|r| r.request.output_len as f64).sum::<f64>() / rs.len() as f64
        };
        let before = mean(&arrivals[..300]);
        let after = mean(&arrivals[300..]);
        assert!(after > before * 1.5, "post-shift outputs are much longer ({before} → {after})");
        // Arrival clock is monotone across the splice point.
        assert!(arrivals.windows(2).all(|p| p[0].arrival <= p[1].arrival));
    }

    #[test]
    fn deterministic_in_seed() {
        let base = Task::Translation.workload().expect("valid");
        let shifted = Workload::new(
            base.input().clone(),
            base.output().with_scaled_mean(1.5).expect("valid"),
        );
        let a = poisson_with_shift(&base, &shifted, 10.0, 50, 120, 3);
        let b = poisson_with_shift(&base, &shifted, 10.0, 50, 120, 3);
        let c = poisson_with_shift(&base, &shifted, 10.0, 50, 120, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
