//! The online serving loop: discrete-event execution of an arrival stream
//! against a live, swappable schedule.
//!
//! The loop body lives in [`ReplicaSession::step`]: one call performs one
//! phase boundary (fault replay, plan-swap install, admission, one
//! phase/round, completion accounting). [`ServeLoop::run`] drives a session
//! to completion over its own arrival stream — the classic single-replica
//! mode — while [`ServeLoop::into_replica`] yields the same session in
//! *fleet* mode ([`ReplicaStep`]): arrivals are injected by an external
//! router, the session never jumps its own clock past a parked point, and
//! a fleet event loop interleaves many sessions on one virtual clock.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use exegpt::{
    DynamicAdjuster, Engine, Replan, ReplanDelta, Schedule, ScheduleConfig, SchedulerOptions,
};
use exegpt_cluster::{ClusterSpec, LoadSource};
use exegpt_dist::stats::Summary;
use exegpt_runner::{KvTracker, PhaseExecutor, RunError};
use exegpt_sim::Workload;
use exegpt_units::Secs;
use exegpt_workload::{Request, TimedRequest};
use serde::Serialize;

use crate::drift::{DriftDetector, DriftOptions};
use crate::error::ServeError;
use crate::events::{Event, EventLog};
use crate::faults::{FaultDriver, FaultFactors, FaultOptions, StragglerDetector};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::slo::{SloOutcome, SloTargets};

/// Configuration of a [`ServeLoop`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Per-request latency targets.
    pub slo: SloTargets,
    /// §5.2 dynamic-adjustment threshold (fraction of the encoder-workload
    /// target; matches the offline runner's default).
    pub adjust_threshold: f64,
    /// Drift-detector tuning.
    pub drift: DriftOptions,
    /// Whether drift triggers a live reschedule (`false` = static plan,
    /// the Figure 11 "w/o re-optimization" arm).
    pub adaptive: bool,
    /// Scheduler options used for live reschedules (latency bound,
    /// policies, tolerances).
    pub scheduler: SchedulerOptions,
    /// Fault injection and graceful degradation (`None` = fault layer off;
    /// `Some` with an empty schedule behaves identically to `None`).
    pub faults: Option<FaultOptions>,
    /// Replan incrementally from the plan being served (warm-started
    /// neighborhood search with a verified fallback) instead of running the
    /// full search on every drift or fault replan. The chosen plans — and
    /// therefore the event log — are identical either way; only the replan
    /// latency differs.
    pub incremental_replan: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            slo: SloTargets::unconstrained(),
            adjust_threshold: 0.15,
            drift: DriftOptions::default(),
            adaptive: true,
            scheduler: SchedulerOptions::bounded(Secs::INFINITY),
            faults: None,
            incremental_replan: true,
        }
    }
}

impl ServeOptions {
    fn validate(&self) -> Result<(), ServeError> {
        if self.adjust_threshold.is_nan() || self.adjust_threshold < 0.0 {
            return Err(ServeError::InvalidOption {
                what: "adjust_threshold",
                why: format!("must be non-negative, got {}", self.adjust_threshold),
            });
        }
        let d = &self.drift;
        if d.window == 0 || d.check_every == 0 || d.consecutive == 0 {
            return Err(ServeError::InvalidOption {
                what: "drift",
                why: "window, check_every and consecutive must be positive".into(),
            });
        }
        if d.min_samples > d.window {
            return Err(ServeError::InvalidOption {
                what: "drift.min_samples",
                why: format!("cannot exceed window ({} > {})", d.min_samples, d.window),
            });
        }
        if d.rel_threshold.is_nan() || d.rel_threshold < 0.0 {
            return Err(ServeError::InvalidOption {
                what: "drift.rel_threshold",
                why: format!("must be non-negative, got {}", d.rel_threshold),
            });
        }
        if let Some(f) = &self.faults {
            f.validate()?;
        }
        Ok(())
    }
}

/// Everything a finished serving run reports.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Requests served to completion.
    pub completed: usize,
    /// Output tokens generated.
    pub tokens_generated: u64,
    /// Virtual time of the last completion.
    pub makespan: f64,
    /// Completions per virtual second over the whole run.
    pub throughput: f64,
    /// Time-to-first-token summary (seconds from arrival).
    pub ttft: Option<Summary>,
    /// Per-generated-token latency summary (seconds, outputs > 1 token).
    pub per_token: Option<Summary>,
    /// End-to-end latency summary (seconds from arrival).
    pub e2e: Option<Summary>,
    /// Queueing-delay summary (arrival → encode start).
    pub queue_wait: Option<Summary>,
    /// SLO accounting.
    pub slo: SloOutcome,
    /// Drift checks performed.
    pub drift_checks: usize,
    /// Live reschedules performed.
    pub reschedules: usize,
    /// Plan swaps installed (≤ reschedules).
    pub plan_swaps: usize,
    /// Total virtual seconds spent redeploying across swaps.
    pub swap_cost: f64,
    /// Fault events that became active during the run.
    pub faults_injected: usize,
    /// Device failures detected (after the heartbeat timeout).
    pub faults_detected: usize,
    /// Stragglers confirmed from observed phase timings.
    pub stragglers_detected: usize,
    /// Fault-driven replans (failover onto survivors, or recovery).
    pub replans: usize,
    /// Replans (drift or fault) answered by the incremental path without
    /// falling back to the full search.
    pub incremental_replans: usize,
    /// Incremental replans that took the verified full-search fallback.
    pub replan_fallbacks: usize,
    /// Request abort-and-retry episodes caused by failures.
    pub retries: usize,
    /// Requests dropped after exhausting the retry budget.
    pub requests_lost: usize,
    /// Schedule in force when the run ended.
    pub final_schedule: String,
    /// Full metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Structured event log (byte-deterministic for a fixed seed).
    pub events: EventLog,
}

/// A query in flight through the pipeline.
struct InFlight {
    req: Request,
    progress: usize,
    arrival: f64,
    t_encoded: f64,
    t_first: Option<f64>,
}

/// A query that finished during the current phase.
struct Done {
    id: u64,
    out_len: usize,
    ttft: f64,
    e2e: f64,
    per_token: Option<f64>,
    queue_wait: f64,
    t: f64,
}

/// An aborted request waiting out its retry backoff.
///
/// Ordered as a *min*-heap key on `(eligible_at, id)` (reversed, since
/// [`BinaryHeap`] pops the maximum), so popping yields the same
/// deterministic re-admission order a fully sorted queue would.
struct Retry {
    eligible_at: f64,
    req: TimedRequest,
}

impl PartialEq for Retry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Retry {}

impl PartialOrd for Retry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Retry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .eligible_at
            .total_cmp(&self.eligible_at)
            .then_with(|| other.req.request.id.cmp(&self.req.request.id))
    }
}

/// Reusable per-round buffers of the serving loop. Every round used to
/// allocate these afresh; at thousands of rounds per run the churn showed
/// up in the simulated-requests-per-wall-second numbers.
#[derive(Default)]
struct Scratch {
    /// Input lengths of the pending queue (admission) or admitted batch
    /// (encode timing).
    lens: Vec<usize>,
    /// Indices selected by the dynamic adjuster.
    selected: Vec<usize>,
    /// Which pending indices were admitted this round.
    taken: Vec<bool>,
    /// Requests admitted this round (drained into the pool).
    admitted: Vec<TimedRequest>,
    /// Completions harvested this round.
    done: Vec<Done>,
    /// Ids released in one batch on aborts/extractions.
    ids: Vec<u64>,
}

/// The online serving engine.
///
/// Owns a warm [`Engine`] (profile + evaluation caches) and the
/// [`PhaseExecutor`] of the currently installed schedule. [`run`] consumes
/// the loop and a timed arrival stream and plays the stream to completion:
/// admission is dynamic (§5.2), per-request latencies are checked against
/// the SLO, completed output lengths feed a drift detector, and — in
/// adaptive mode — detected drift refits the output distribution, invokes
/// [`Engine::reschedule`] on the warm engine, and installs the new plan at
/// the next phase boundary (paying a redeployment cost if the plan's GPU
/// allocation changed).
///
/// Everything runs in virtual time; for a fixed arrival stream and options
/// the run (including the serialized event log) is byte-deterministic.
///
/// When the fault layer is enabled ([`ServeOptions::faults`]), the loop
/// additionally replays a [`exegpt_faults::FaultSchedule`] on its virtual
/// clock: stragglers dilate phase timings until a [`StragglerDetector`]
/// confirms them (severe ones are evicted and the plan recomputed), device
/// failures mature through a heartbeat timeout, abort in-flight work into
/// a bounded-backoff retry queue and trigger a replan onto the surviving
/// topology, and a fully recovered cluster gets its pre-fault plan back
/// verbatim (unless a drift refit happened in between).
///
/// [`run`]: ServeLoop::run
pub struct ServeLoop {
    engine: Engine,
    exec: PhaseExecutor,
    opts: ServeOptions,
    /// The fault-free deployment, kept for failover (`survivors`) and
    /// recovery replans.
    healthy: ClusterSpec,
    /// The initially installed plan, reinstalled verbatim on full
    /// recovery when no drift refit happened in between.
    original: ScheduleConfig,
    /// The most recently planned schedule with its estimate — the incumbent
    /// that incremental replans warm-start from. `None` only when the
    /// installed config cannot be evaluated, which disables the incremental
    /// path (replans then run the full search, as before).
    last_plan: Option<Schedule>,
}

/// A plan waiting to be installed at the next phase boundary.
struct PendingSwap {
    cfg: ScheduleConfig,
    /// `Some` when the swap also moves to a different topology (failover /
    /// recovery): the engine to commit. `None` for same-topology drift
    /// swaps.
    engine: Option<Engine>,
}

impl ServeLoop {
    /// Creates a serving loop executing `schedule` on `engine`'s
    /// deployment.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Run`] when the schedule is infeasible on the
    /// deployment, or [`ServeError::InvalidOption`] for bad options.
    pub fn new(
        engine: Engine,
        schedule: &ScheduleConfig,
        opts: ServeOptions,
    ) -> Result<Self, ServeError> {
        opts.validate()?;
        let exec = PhaseExecutor::new(engine.simulator(), schedule)?;
        let healthy = engine.simulator().cluster().clone();
        let original = exec.schedule();
        let last_plan = engine.simulator().evaluate(&original).ok().map(|estimate| Schedule {
            config: original,
            estimate,
            evals: 0,
            cache_hits: 0,
        });
        Ok(Self { engine, exec, opts, healthy, original, last_plan })
    }

    /// The schedule currently installed.
    pub fn schedule(&self) -> ScheduleConfig {
        self.exec.schedule()
    }

    /// Serves `arrivals` (must be sorted by arrival time) to completion.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Run`] if execution stalls (a query can never
    /// fit in the KV cache) or a batch falls outside the profiled range.
    pub fn run(
        self,
        arrivals: impl IntoIterator<Item = TimedRequest>,
    ) -> Result<ServeReport, ServeError> {
        let stream: Vec<TimedRequest> = arrivals.into_iter().collect();
        let mut session = self.into_session(Some(stream), false)?;
        // `Parked` never occurs in stream mode (the session jumps its own
        // clock); anything but `Progressed` ends the run, so a logic error
        // cannot spin forever.
        while let StepOutcome::Progressed = session.step()? {}
        Ok(session.finish())
    }

    /// Converts the loop into a fleet-mode [`ReplicaSession`]: arrivals
    /// come from [`ReplicaSession::inject`] instead of an owned stream, and
    /// an external event loop drives [`ReplicaSession::step`], waking the
    /// session with [`ReplicaSession::wake_to`]. Completed requests are
    /// exposed through [`ReplicaSession::take_completions`] for fleet-level
    /// (per-tenant) SLO accounting.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Fault`] when the configured fault schedule is
    /// invalid for the deployment.
    pub fn into_replica(self) -> Result<ReplicaSession, ServeError> {
        self.into_session(None, true)
    }

    /// Builds the run-state session. `stream` is `Some` for single-replica
    /// mode (the session owns its future arrivals) and `None` for fleet
    /// mode (arrivals are injected).
    fn into_session(
        self,
        stream: Option<Vec<TimedRequest>>,
        collect_completions: bool,
    ) -> Result<ReplicaSession, ServeError> {
        let fault_opts = self.opts.faults.clone();
        let driver = match &fault_opts {
            Some(f) => Some(
                FaultDriver::new(f.schedule.clone(), self.healthy.total_gpus())?
                    .with_detection_delay(f.detection_delay),
            ),
            None => None,
        };
        let straggler = fault_opts.as_ref().map(|f| StragglerDetector::new(f.straggler));
        let adjuster = self.exec.adjuster(self.opts.adjust_threshold);
        let kv = self.exec.kv_tracker();
        let scheduled_b_d = self.exec.scheduled_decode_batch();
        let detector = DriftDetector::new(self.opts.drift);
        Ok(ReplicaSession {
            engine: self.engine,
            exec: self.exec,
            opts: self.opts,
            healthy: self.healthy,
            original: self.original,
            workload_refit: false,
            planned_removed: 0,
            last_plan: self.last_plan,
            scratch: Scratch::default(),
            stream: stream.map(|v| v.into_iter().peekable()),
            inbox: VecDeque::new(),
            pending: Vec::new(),
            pool: Vec::new(),
            t: 0.0,
            metrics: Metrics::new(),
            events: EventLog::new(),
            slo_out: SloOutcome::default(),
            detector,
            adjuster,
            kv,
            scheduled_b_d,
            pending_swap: None,
            tokens: 0,
            swap_cost_total: 0.0,
            peak_kv: 0,
            last_completion: 0.0,
            fault_opts,
            driver,
            straggler,
            retry: BinaryHeap::new(),
            attempts: BTreeMap::new(),
            collect_completions,
            outbox: Vec::new(),
        })
    }
}

/// Outcome of one [`ReplicaSession::step`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// Work was performed (a phase ran, a swap was installed, or the
    /// single-replica loop jumped its clock to the next wake point); step
    /// again at the session's current time.
    Progressed,
    /// Nothing can run at the current time. `until` is the next virtual
    /// time the session can make progress on its own (a retry backoff
    /// elapsing, or an already injected future arrival); `None` means the
    /// session is quiescent and only a new injection can create work.
    /// Fleet mode only — in stream mode the session jumps its own clock.
    Parked {
        /// Self-wake time, if the session has future work queued.
        until: Option<f64>,
    },
    /// Stream mode only: arrivals, retries and the pool are all drained —
    /// the run is complete.
    Done,
}

/// A completed request as surfaced to a fleet router for per-tenant SLO
/// accounting (all latencies in virtual seconds from the request's
/// original arrival — a rerouted request keeps its first arrival stamp).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// Completion time.
    pub t: f64,
    /// Time to first token.
    pub ttft: f64,
    /// Per-generated-token latency (outputs > 1 token).
    pub per_token: Option<f64>,
    /// End-to-end latency.
    pub e2e: f64,
    /// Queueing delay (arrival → encode start).
    pub queue_wait: f64,
}

/// The per-step interface a fleet event loop drives a replica through.
///
/// [`ReplicaSession`] implements this; the single-replica
/// [`ServeLoop::run`] drives the same `step` internally, so fleet-of-one
/// execution reproduces the single-replica event log byte-for-byte.
pub trait ReplicaStep {
    /// The session's current virtual time.
    fn now(&self) -> f64;
    /// Advances the session's clock to `t`, logging the idle gap exactly as
    /// the single-replica loop would. A no-op when `t` is not ahead of
    /// [`now`](Self::now).
    fn wake_to(&mut self, t: f64);
    /// Runs one loop iteration (phase boundary) at the current time.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Run`] if execution stalls or a batch falls
    /// outside the profiled range (same failure modes as
    /// [`ServeLoop::run`]).
    fn step(&mut self) -> Result<StepOutcome, ServeError>;
    /// Queues an externally routed arrival; it is ingested at the first
    /// step whose time has reached `req.arrival`.
    fn inject(&mut self, req: TimedRequest);
    /// Requests queued or in flight (pending + pool + retries + inbox).
    fn outstanding(&self) -> usize;
    /// Unreserved KV-cache bytes on the bottleneck GPU — the router signal
    /// for KV-aware dispatch.
    fn kv_headroom_bytes(&self) -> u64;
    /// The installed plan's estimated per-request latency (seconds) — the
    /// router signal for SLO-aware dispatch.
    fn plan_latency(&self) -> f64;
    /// Drains completions recorded since the last call.
    fn take_completions(&mut self) -> Vec<Completion>;
    /// Drains every queued and in-flight request (for rerouting when the
    /// replica is lost): pending queue, pool (KV released; generation
    /// restarts elsewhere), retry queue, then inbox. Original arrival
    /// stamps are kept so rerouted latencies honestly include the loss.
    fn extract_queued(&mut self) -> Vec<TimedRequest>;
    /// Consumes the session into its final [`ServeReport`].
    fn finish(self) -> ServeReport
    where
        Self: Sized;
}

/// Run state of one serving replica, stepped one phase boundary at a time.
///
/// Created by [`ServeLoop::run`] (stream mode, driven internally) or
/// [`ServeLoop::into_replica`] (fleet mode, driven by an external event
/// loop through the [`ReplicaStep`] interface).
pub struct ReplicaSession {
    engine: Engine,
    exec: PhaseExecutor,
    opts: ServeOptions,
    healthy: ClusterSpec,
    original: ScheduleConfig,
    /// Whether a drift reschedule refit the workload (invalidates the
    /// verbatim-restore shortcut).
    workload_refit: bool,
    /// Devices removed from the topology by the currently planned-for
    /// degradation (0 = plan assumes the full cluster).
    planned_removed: usize,
    last_plan: Option<Schedule>,
    scratch: Scratch,
    /// `Some` in stream mode: the session knows its future arrivals and
    /// jumps its own clock. `None` in fleet mode: arrivals land in `inbox`.
    stream: Option<std::iter::Peekable<std::vec::IntoIter<TimedRequest>>>,
    /// Externally injected arrivals (fleet mode; always empty in stream
    /// mode).
    inbox: VecDeque<TimedRequest>,
    pending: Vec<TimedRequest>,
    pool: Vec<InFlight>,
    t: f64,
    metrics: Metrics,
    events: EventLog,
    slo_out: SloOutcome,
    detector: DriftDetector,
    adjuster: DynamicAdjuster,
    kv: KvTracker,
    scheduled_b_d: usize,
    pending_swap: Option<PendingSwap>,
    tokens: u64,
    swap_cost_total: f64,
    peak_kv: u64,
    last_completion: f64,
    fault_opts: Option<FaultOptions>,
    driver: Option<FaultDriver>,
    straggler: Option<StragglerDetector>,
    retry: BinaryHeap<Retry>,
    attempts: BTreeMap<u64, usize>,
    /// Whether completions are copied into `outbox` for a fleet router.
    collect_completions: bool,
    outbox: Vec<Completion>,
}

impl ReplicaSession {
    /// The session's current virtual time.
    pub fn now(&self) -> f64 {
        self.t
    }

    /// The schedule currently installed.
    pub fn schedule(&self) -> ScheduleConfig {
        self.exec.schedule()
    }

    /// Advances the clock to `t`, logging the idle gap the single-replica
    /// loop would log before its own jump. No-op unless `t > now()`.
    pub fn wake_to(&mut self, t: f64) {
        if t > self.t {
            self.events.push(Event::Idle { from: self.t, until: t });
            self.t = t;
        }
    }

    /// Moves the clock forward *without* logging, for replicas spawned
    /// mid-run (deploy completion): the session's life starts at `t`
    /// rather than recording a fictitious idle period since time zero.
    /// Intended before the first step; never moves the clock backwards.
    pub fn skip_to(&mut self, t: f64) {
        self.t = self.t.max(t);
    }

    /// Queues an externally routed arrival (fleet mode).
    pub fn inject(&mut self, req: TimedRequest) {
        self.inbox.push_back(req);
    }

    /// Requests queued or in flight (pending + pool + retries + inbox).
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.pool.len() + self.retry.len() + self.inbox.len()
    }

    /// Unreserved KV-cache bytes on the bottleneck GPU.
    pub fn kv_headroom_bytes(&self) -> u64 {
        self.kv.capacity_bytes().saturating_sub(self.kv.used_bytes())
    }

    /// The installed plan's estimated per-request latency in seconds.
    pub fn plan_latency(&self) -> f64 {
        self.exec.estimate().latency.as_secs()
    }

    /// Drains completions recorded since the last call (fleet mode; empty
    /// unless the session was created by [`ServeLoop::into_replica`]).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.outbox)
    }

    /// Drains every queued and in-flight request for rerouting: pending,
    /// pool (KV entries released in one batch; generation restarts on the
    /// target replica), retries in eligibility order, then the inbox.
    pub fn extract_queued(&mut self) -> Vec<TimedRequest> {
        let mut out: Vec<TimedRequest> = Vec::new();
        out.append(&mut self.pending);
        self.scratch.ids.clear();
        self.scratch.ids.extend(self.pool.iter().map(|a| a.req.id));
        for a in self.pool.drain(..) {
            out.push(TimedRequest { request: a.req, arrival: a.arrival });
        }
        let ids = std::mem::take(&mut self.scratch.ids);
        self.kv.release_batch(&ids);
        self.scratch.ids = ids;
        while let Some(r) = self.retry.pop() {
            out.push(r.req);
        }
        out.extend(self.inbox.drain(..));
        out
    }

    /// Runs one loop iteration (phase boundary) at the current time: fault
    /// replay, pending-swap install, retry re-admission, arrival ingestion,
    /// §5.2 admission, one phase/round, straggler confirmation, completion
    /// accounting, and (adaptive mode) a drift reschedule.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Run`] if execution stalls (a query can never
    /// fit in the KV cache) or a batch falls outside the profiled range.
    pub fn step(&mut self) -> Result<StepOutcome, ServeError> {
        // ---- Fault replay: activations, detections, replans -------------
        if self.fault_opts.is_some() {
            let fired = match self.driver.as_mut() {
                Some(d) => d.advance(self.t),
                None => Vec::new(),
            };
            for e in fired {
                self.metrics.inc("faults_injected");
                self.events.push(Event::Fault { t: e.t, desc: e.kind.to_string() });
            }
            let matured = match self.driver.as_mut() {
                Some(d) => d.mature_detections(self.t),
                None => Vec::new(),
            };
            for (gpu, t_d) in matured {
                // Pay the rest of the heartbeat window if the phase
                // boundary arrived before the timeout elapsed.
                self.t = self.t.max(t_d);
                self.metrics.inc("faults_detected");
                self.events.push(Event::FaultDetected { t: self.t, gpu, aborted: self.pool.len() });
                // The failed device held a KV shard for every in-flight
                // query: abort them all into the retry queue.
                if let Some(fo) = &self.fault_opts {
                    abort_pool(
                        &mut self.pool,
                        &mut self.kv,
                        &mut self.retry,
                        &mut self.attempts,
                        fo,
                        self.t,
                        &mut self.metrics,
                        &mut self.events,
                    );
                }
            }
            let removed = self.driver.as_ref().map_or(self.planned_removed, |d| d.removed());
            if removed != self.planned_removed {
                self.pending_swap = self.fault_replan(removed)?;
                self.planned_removed = removed;
            }
        }

        // ---- Install a pending plan swap at the phase boundary ----------
        if let Some(swap) = self.pending_swap.take() {
            let topology_change = swap.engine.is_some();
            if let Some(engine) = swap.engine {
                self.engine = engine;
            }
            let cfg = swap.cfg;
            let new_exec = PhaseExecutor::new(self.engine.simulator(), &cfg)?;
            let cost = if topology_change {
                // A topology change always redeploys from DRAM and
                // re-migrates the resident KV cache across the new
                // layout (zero when the pool was aborted).
                self.engine.deploy_time(LoadSource::Dram).as_secs()
                    + new_exec.kv_migration_time(self.kv.used_bytes()).as_secs()
            } else {
                swap_cost(&self.engine, &self.exec.schedule(), &cfg)
            };
            self.t += cost;
            self.peak_kv = self.peak_kv.max(self.kv.peak_bytes());
            let mut new_kv = new_exec.kv_tracker();
            for a in &self.pool {
                // In-flight KV entries move to the new plan's tracker
                // unconditionally: evicting live queries would violate
                // their SLO by construction.
                new_kv.admit_unchecked(a.req.id, a.req.input_len + a.progress);
            }
            self.events.push(Event::PlanSwap { t: self.t, cost, migrated: self.pool.len() });
            self.metrics.inc("plan_swaps");
            self.swap_cost_total += cost;
            self.exec = new_exec;
            self.kv = new_kv;
            self.adjuster = self.exec.adjuster(self.opts.adjust_threshold);
            self.scheduled_b_d = self.exec.scheduled_decode_batch();
        }

        // ---- Re-admit retries whose backoff has elapsed -----------------
        while self.retry.peek().is_some_and(|r| r.eligible_at <= self.t) {
            if let Some(r) = self.retry.pop() {
                self.pending.push(r.req);
            }
        }

        // ---- Ingest arrivals up to the current virtual time -------------
        if let Some(upcoming) = self.stream.as_mut() {
            while let Some(r) = upcoming.peek() {
                if r.arrival > self.t {
                    break;
                }
                self.events.push(Event::Arrival {
                    t: r.arrival,
                    id: r.request.id,
                    input_len: r.request.input_len,
                    output_len: r.request.output_len,
                });
                self.metrics.inc("arrivals");
                self.pending.push(*r);
                upcoming.next();
            }
        }
        while self.inbox.front().is_some_and(|r| r.arrival <= self.t) {
            if let Some(r) = self.inbox.pop_front() {
                self.events.push(Event::Arrival {
                    t: r.arrival,
                    id: r.request.id,
                    input_len: r.request.input_len,
                    output_len: r.request.output_len,
                });
                self.metrics.inc("arrivals");
                self.pending.push(r);
            }
        }

        // ---- Dynamic admission (§5.2) -----------------------------------
        self.scratch.lens.clear();
        self.scratch.lens.extend(self.pending.iter().map(|r| r.request.input_len));
        self.adjuster.select_batch_into(
            &self.scratch.lens,
            self.pool.len(),
            self.scheduled_b_d,
            &mut self.scratch.selected,
        );
        self.scratch.admitted.clear();
        self.scratch.taken.clear();
        self.scratch.taken.resize(self.pending.len(), false);
        for &idx in &self.scratch.selected {
            let r = self.pending[idx];
            if !self.kv.try_admit(r.request.id, r.request.input_len, 0) {
                break; // cache full: stop admitting this phase
            }
            self.scratch.taken[idx] = true;
            self.scratch.admitted.push(r);
        }
        if !self.scratch.admitted.is_empty() {
            let taken = &self.scratch.taken;
            let mut i = 0;
            self.pending.retain(|_| {
                let keep = !taken[i];
                i += 1;
                keep
            });
            self.metrics.add("admitted", self.scratch.admitted.len() as u64);
        }

        if self.scratch.admitted.is_empty() && self.pool.is_empty() {
            if self.pending.is_empty() {
                let next_retry = self.retry.peek().map(|r| r.eligible_at);
                match self.stream.as_mut() {
                    Some(upcoming) => {
                        let next_arrival = upcoming.peek().map(|r| r.arrival);
                        if next_arrival.is_none() && next_retry.is_none() {
                            // Stream and retry queue drained, nothing in
                            // flight: the run is complete.
                            return Ok(StepOutcome::Done);
                        }
                        // Wake at whichever comes first: an arrival, a
                        // retry becoming eligible, or the fault world
                        // changing (an event firing or a failure detection
                        // maturing — otherwise a mid-idle failure would go
                        // unnoticed until the next arrival and the first
                        // phase after it would run on the dead topology).
                        let next_fault = self
                            .driver
                            .as_ref()
                            .and_then(|d| d.next_wake())
                            .filter(|&w| w > self.t);
                        let mut wake = f64::INFINITY;
                        for c in [next_arrival, next_retry, next_fault].into_iter().flatten() {
                            wake = wake.min(c);
                        }
                        self.events.push(Event::Idle { from: self.t, until: wake });
                        self.t = wake;
                        return Ok(StepOutcome::Progressed);
                    }
                    None => {
                        // Fleet mode: park instead of jumping — the fleet
                        // clock owns inter-replica ordering. A future-dated
                        // injection also counts as self-owned work. With no
                        // queued work at all the session is quiescent and
                        // — mirroring the single-replica termination rule —
                        // does not ask to be woken for fault events alone;
                        // the fault world catches up at the next injection.
                        let next_inbox =
                            self.inbox.iter().map(|r| r.arrival).fold(f64::INFINITY, f64::min);
                        let next_inbox =
                            if next_inbox.is_finite() { Some(next_inbox) } else { None };
                        if next_retry.is_none() && next_inbox.is_none() {
                            return Ok(StepOutcome::Parked { until: None });
                        }
                        let next_fault = self
                            .driver
                            .as_ref()
                            .and_then(|d| d.next_wake())
                            .filter(|&w| w > self.t);
                        let mut wake = f64::INFINITY;
                        for c in [next_retry, next_inbox, next_fault].into_iter().flatten() {
                            wake = wake.min(c);
                        }
                        return Ok(StepOutcome::Parked { until: Some(wake) });
                    }
                }
            }
            return Err(RunError::Stalled {
                why: format!(
                    "query {} ({} input tokens) cannot fit in the kv cache",
                    self.pending[0].request.id, self.pending[0].request.input_len
                ),
            }
            .into());
        }

        // ---- Execute one phase (RRA) or round (WAA) ---------------------
        // Active faults dilate the plan's timings at runtime: the
        // worst live straggler scales compute, link degradation scales
        // the KV handover. All factors are exactly 1 when nominal, so
        // the arithmetic below is bit-identical to the fault-free path.
        let factors = self.driver.as_ref().map_or(FaultFactors::nominal(), |d| d.factors());
        let mut phase_base = 0.0f64;
        let mut phase_actual = 0.0f64;
        self.scratch.done.clear();
        if self.exec.is_coupled() {
            let n_admitted = self.scratch.admitted.len();
            let (p_enc, enc_tokens) = if self.scratch.admitted.is_empty() {
                (0.0, 0.0)
            } else {
                self.scratch.lens.clear();
                self.scratch.lens.extend(self.scratch.admitted.iter().map(|r| r.request.input_len));
                let enc = self.exec.encode_timing(&self.scratch.lens)?;
                (enc.bottleneck.as_secs(), enc.tokens)
            };
            let p_dec = if self.pool.is_empty() {
                0.0
            } else {
                let b_m = self.exec.decode_parallelism(self.pool.len());
                let ctx = mean_context(&self.pool);
                self.exec.decode_timing(b_m, self.pool.len(), ctx, false)?.total.as_secs()
            };
            let t_kv_base = self.exec.handover_time(enc_tokens).as_secs();
            let t_kv = if t_kv_base > 0.0 {
                t_kv_base * factors.link_time + factors.link_latency
            } else {
                t_kv_base
            };
            let round = (p_enc * factors.dilation).max(p_dec * factors.dilation).max(t_kv);
            phase_base = p_enc.max(p_dec).max(t_kv_base);
            phase_actual = round;
            let t_start = self.t;
            let pool_during = self.pool.len();
            self.t += round;
            if !self.pool.is_empty() {
                self.tokens += self.pool.len() as u64;
                // The encoder group's fresh admissions are resident but not
                // pooled, so growth must stay per-id here.
                advance(&mut self.pool, &mut self.kv, self.t, &mut self.scratch.done, true);
            }
            self.metrics.inc("rounds");
            self.events.push(Event::Round {
                t_start,
                t_end: self.t,
                admitted: n_admitted,
                pool: pool_during,
            });
            for r in self.scratch.admitted.drain(..) {
                self.pool.push(InFlight {
                    req: r.request,
                    progress: 0,
                    arrival: r.arrival,
                    t_encoded: t_start,
                    t_first: None,
                });
            }
        } else {
            if !self.scratch.admitted.is_empty() {
                self.scratch.lens.clear();
                self.scratch.lens.extend(self.scratch.admitted.iter().map(|r| r.request.input_len));
                let enc = self.exec.encode_timing(&self.scratch.lens)?;
                let t_start = self.t;
                let dt = enc.total.as_secs();
                self.t += dt * factors.dilation;
                phase_base += dt;
                phase_actual += dt * factors.dilation;
                self.metrics.inc("encode_phases");
                self.events.push(Event::Encode {
                    t_start,
                    t_end: self.t,
                    admitted: self.scratch.admitted.len(),
                    queue_depth: self.pending.len(),
                });
                for r in self.scratch.admitted.drain(..) {
                    self.pool.push(InFlight {
                        req: r.request,
                        progress: 0,
                        arrival: r.arrival,
                        t_encoded: t_start,
                        t_first: None,
                    });
                }
            }
            let m_d = self.exec.decode_parallelism(self.pool.len());
            let t_start = self.t;
            let mut iters = 0usize;
            for u in 0..self.exec.decode_iters_per_phase() {
                if self.pool.is_empty() {
                    break;
                }
                let ctx = mean_context(&self.pool);
                let dec = self.exec.decode_timing(m_d, self.pool.len(), ctx, u == 0)?;
                let dt = dec.total.as_secs();
                self.t += dt * factors.dilation;
                phase_base += dt;
                phase_actual += dt * factors.dilation;
                self.tokens += self.pool.len() as u64;
                iters += 1;
                // RRA decode: the resident set is exactly the pool, so KV
                // growth is one bulk arena scan.
                self.kv.grow_all(1);
                advance(&mut self.pool, &mut self.kv, self.t, &mut self.scratch.done, false);
            }
            self.metrics.add("decode_iters", iters as u64);
            self.events.push(Event::Decode {
                t_start,
                t_end: self.t,
                iters,
                completed: self.scratch.done.len(),
            });
        }

        // ---- Straggler confirmation from observed phase timings ---------
        if let (Some(drv), Some(det), Some(fo)) =
            (self.driver.as_mut(), self.straggler.as_mut(), self.fault_opts.as_ref())
        {
            if det.observe(phase_actual, phase_base).is_some() {
                // Link degradation also inflates the ratio; only a
                // device that is actually slowed can be blamed (and
                // possibly evicted).
                if let Some((gpu, factor)) = drv.worst_slowed_gpu() {
                    let evict = factor >= fo.evict_slowdown;
                    self.metrics.inc("stragglers_detected");
                    self.events.push(Event::StragglerDetected {
                        t: self.t,
                        gpu,
                        factor,
                        evicted: evict,
                    });
                    if evict {
                        // Removing it changes `removed()`: the next
                        // step's fault replay replans onto the survivors.
                        drv.evict(gpu);
                    }
                }
            }
        }

        // ---- Account completions: SLO, metrics, drift -------------------
        let scheduled_mean = self.exec.simulator().workload().output().mean();
        let mut drift_declared = false;
        for d in &self.scratch.done {
            self.metrics.inc("completions");
            self.metrics.observe("ttft", d.ttft);
            self.metrics.observe("e2e", d.e2e);
            self.metrics.observe("queue_wait", d.queue_wait);
            if let Some(pt) = d.per_token {
                self.metrics.observe("per_token", pt);
            }
            let check = self.opts.slo.check(
                Secs::new(d.ttft),
                d.per_token.map(Secs::new),
                Secs::new(d.e2e),
            );
            self.slo_out.record(check);
            self.events.push(Event::Completion {
                t: d.t,
                id: d.id,
                ttft: d.ttft,
                e2e: d.e2e,
                violated: check.violated(),
            });
            self.last_completion = d.t;
            if self.collect_completions {
                self.outbox.push(Completion {
                    id: d.id,
                    t: d.t,
                    ttft: d.ttft,
                    per_token: d.per_token,
                    e2e: d.e2e,
                    queue_wait: d.queue_wait,
                });
            }
            if let Some(c) = self.detector.observe(d.out_len, scheduled_mean) {
                self.metrics.inc("drift_checks");
                self.events.push(Event::DriftCheck {
                    t: d.t,
                    window_mean: c.window_mean,
                    scheduled_mean: c.scheduled_mean,
                    rel_shift: c.rel_shift,
                    drifted: c.drifted,
                });
                drift_declared |= c.drifted;
            }
        }
        self.metrics.gauge("queue_depth", self.pending.len() as f64);
        self.metrics.gauge("pool_size", self.pool.len() as f64);

        // ---- Live reschedule on declared drift --------------------------
        if drift_declared && self.opts.adaptive && self.pending_swap.is_none() {
            self.pending_swap = self.reschedule().map(|cfg| PendingSwap { cfg, engine: None });
        }
        Ok(StepOutcome::Progressed)
    }

    /// Consumes the session into its final report.
    pub fn finish(mut self) -> ServeReport {
        self.peak_kv = self.peak_kv.max(self.kv.peak_bytes());
        let completed = self.slo_out.checked;
        let makespan = self.last_completion;
        let throughput = if makespan > 0.0 { completed as f64 / makespan } else { 0.0 };
        self.metrics.gauge("swap_cost_total", self.swap_cost_total);
        self.metrics.gauge("kv_peak_bytes", self.peak_kv as f64);
        ServeReport {
            completed,
            tokens_generated: self.tokens,
            makespan,
            throughput,
            ttft: self.metrics.summary("ttft"),
            per_token: self.metrics.summary("per_token"),
            e2e: self.metrics.summary("e2e"),
            queue_wait: self.metrics.summary("queue_wait"),
            slo: self.slo_out,
            drift_checks: self.metrics.counter("drift_checks") as usize,
            reschedules: self.metrics.counter("reschedules") as usize,
            plan_swaps: self.metrics.counter("plan_swaps") as usize,
            swap_cost: self.swap_cost_total,
            faults_injected: self.metrics.counter("faults_injected") as usize,
            faults_detected: self.metrics.counter("faults_detected") as usize,
            stragglers_detected: self.metrics.counter("stragglers_detected") as usize,
            replans: self.metrics.counter("replans") as usize,
            incremental_replans: self.metrics.counter("incremental_replans") as usize,
            replan_fallbacks: self.metrics.counter("replan_fallbacks") as usize,
            retries: self.metrics.counter("retries") as usize,
            requests_lost: self.metrics.counter("requests_lost") as usize,
            final_schedule: self.exec.schedule().describe(),
            metrics: self.metrics.snapshot(),
            events: self.events,
        }
    }

    /// Refits the output distribution to the drift window and re-runs the
    /// scheduler on the warm engine — incrementally from the served plan
    /// when [`ServeOptions::incremental_replan`] is on. Returns the new
    /// plan to install at the next phase boundary, or `None` if
    /// refitting/scheduling failed (the loop keeps serving on the old plan
    /// either way).
    fn reschedule(&mut self) -> Option<ScheduleConfig> {
        let result: Result<Schedule, ServeError> = match self.detector.refit() {
            Err(e) => Err(ServeError::from(e)),
            Ok(refit) => {
                let workload = Workload::new(
                    self.exec.simulator().workload().input().clone(),
                    refit.dist.clone(),
                );
                self.metrics.gauge("refit_mean", refit.dist.mean());
                match self.opts.incremental_replan.then(|| self.last_plan.clone()).flatten() {
                    Some(inc) => {
                        match self.engine.reschedule_incremental(
                            workload,
                            &inc,
                            &self.opts.scheduler,
                        ) {
                            Ok(replan) => Ok(track_replan(replan, &mut self.metrics)),
                            Err(e) => Err(ServeError::from(e)),
                        }
                    }
                    None => self
                        .engine
                        .reschedule(workload, &self.opts.scheduler)
                        .map_err(ServeError::from),
                }
            }
        };
        self.detector.reset();
        match result {
            Ok(schedule) => {
                self.workload_refit = true;
                self.last_plan = Some(schedule.clone());
                self.metrics.inc("reschedules");
                self.events.push(Event::Reschedule {
                    t: self.t,
                    from: self.exec.schedule().describe(),
                    to: schedule.config.describe(),
                    refit_mean: self.engine.simulator().workload().output().mean(),
                });
                // Install even an identical config: the executor must be
                // rebound to the refitted workload so drift is measured
                // against what the scheduler last optimized for.
                Some(schedule.config)
            }
            Err(e) => {
                self.metrics.inc("reschedule_failures");
                self.events.push(Event::RescheduleFailed { t: self.t, why: e.to_string() });
                None
            }
        }
    }

    /// Replans for a changed topology: `removed == 0` targets the healthy
    /// cluster (recovery), anything else its survivors (failover /
    /// straggler eviction). On full recovery with no interleaved workload
    /// refit, the pre-fault plan is reinstalled verbatim — no search — so
    /// recovery provably restores the original deployment.
    ///
    /// Failover searches under the configured scheduler options first —
    /// incrementally from the served plan when
    /// [`ServeOptions::incremental_replan`] is on — and falls back to an
    /// unconstrained bound (serving degraded beats not serving); a failover
    /// with no feasible plan at all is fatal.
    fn fault_replan(&mut self, removed: usize) -> Result<Option<PendingSwap>, ServeError> {
        let spec =
            if removed == 0 { self.healthy.clone() } else { self.healthy.survivors(removed)? };
        let gpus = spec.total_gpus();
        let failover = removed > self.planned_removed;
        let reason = if failover { "failover" } else { "recovery" };
        let engine = self.engine.with_cluster(spec);
        let restored = removed == 0 && !self.workload_refit;
        let chosen: Result<ScheduleConfig, exegpt::ScheduleError> = if restored {
            Ok(self.original)
        } else {
            let incumbent = self.opts.incremental_replan.then(|| self.last_plan.clone()).flatten();
            let primary = match incumbent {
                Some(inc) => {
                    let old = self.engine.simulator().cluster().total_gpus() as isize;
                    let delta =
                        ReplanDelta { gpu_delta: gpus as isize - old, workload_changed: false };
                    engine
                        .replan_from(&inc, delta, &self.opts.scheduler)
                        .map(|replan| track_replan(replan, &mut self.metrics))
                }
                None => engine.schedule_with(&self.opts.scheduler),
            };
            primary.map(|s| s.config).or_else(|_| {
                engine.schedule_with(&SchedulerOptions::bounded(Secs::INFINITY)).map(|s| s.config)
            })
        };
        match chosen {
            Ok(cfg) => {
                self.last_plan = engine.simulator().evaluate(&cfg).ok().map(|estimate| Schedule {
                    config: cfg,
                    estimate,
                    evals: 0,
                    cache_hits: 0,
                });
                self.metrics.inc("replans");
                self.events.push(Event::Replan {
                    t: self.t,
                    reason: reason.into(),
                    gpus,
                    to: cfg.describe(),
                    restored,
                });
                Ok(Some(PendingSwap { cfg, engine: Some(engine) }))
            }
            Err(e) => {
                self.metrics.inc("replan_failures");
                self.events.push(Event::ReplanFailed { t: self.t, why: e.to_string() });
                if failover {
                    Err(ServeError::Failover { survivors: gpus, why: e.to_string() })
                } else {
                    // A failed recovery replan keeps serving on the
                    // degraded (but working) plan.
                    Ok(None)
                }
            }
        }
    }
}

impl ReplicaStep for ReplicaSession {
    fn now(&self) -> f64 {
        ReplicaSession::now(self)
    }

    fn wake_to(&mut self, t: f64) {
        ReplicaSession::wake_to(self, t)
    }

    fn step(&mut self) -> Result<StepOutcome, ServeError> {
        ReplicaSession::step(self)
    }

    fn inject(&mut self, req: TimedRequest) {
        ReplicaSession::inject(self, req)
    }

    fn outstanding(&self) -> usize {
        ReplicaSession::outstanding(self)
    }

    fn kv_headroom_bytes(&self) -> u64 {
        ReplicaSession::kv_headroom_bytes(self)
    }

    fn plan_latency(&self) -> f64 {
        ReplicaSession::plan_latency(self)
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        ReplicaSession::take_completions(self)
    }

    fn extract_queued(&mut self) -> Vec<TimedRequest> {
        ReplicaSession::extract_queued(self)
    }

    fn finish(self) -> ServeReport {
        ReplicaSession::finish(self)
    }
}

/// Records whether an incremental replan held or fell back. Counters only:
/// the event log must stay byte-identical to the full-search path, and the
/// chosen plan already is.
fn track_replan(replan: Replan, metrics: &mut Metrics) -> Schedule {
    metrics.inc(if replan.fell_back { "replan_fallbacks" } else { "incremental_replans" });
    replan.schedule
}

/// Aborts every in-flight query after a device failure: its KV entry is
/// released and it re-enters admission after an exponential backoff, or is
/// dropped once its retry budget is exhausted.
#[allow(clippy::too_many_arguments)]
fn abort_pool(
    pool: &mut Vec<InFlight>,
    kv: &mut KvTracker,
    retry: &mut BinaryHeap<Retry>,
    attempts: &mut BTreeMap<u64, usize>,
    fo: &FaultOptions,
    t: f64,
    metrics: &mut Metrics,
    events: &mut EventLog,
) {
    for a in pool.drain(..) {
        kv.release(a.req.id);
        let n = attempts.entry(a.req.id).or_insert(0);
        *n += 1;
        let attempt = *n;
        if attempt > fo.max_retries {
            metrics.inc("requests_lost");
            events.push(Event::RequestLost { t, id: a.req.id, attempts: attempt });
        } else {
            metrics.inc("retries");
            let eligible_at = t + fo.backoff_base * 2.0f64.powi(attempt as i32 - 1);
            events.push(Event::RequestRetry { t, id: a.req.id, attempt, eligible_at });
            // Original arrival is kept: TTFT/E2E latency of a retried
            // request honestly includes the failure it survived.
            retry.push(Retry {
                eligible_at,
                req: TimedRequest { request: a.req, arrival: a.arrival },
            });
        }
    }
}

/// Mean context length (input + generated so far) over the pool.
fn mean_context(pool: &[InFlight]) -> f64 {
    pool.iter().map(|a| (a.req.input_len + a.progress) as f64).sum::<f64>() / pool.len() as f64
}

/// Advances every pooled query by one token at time `t`, recording first
/// tokens and harvesting completions (with KV compaction). `grow_ids`
/// selects per-id KV growth (WAA rounds, where the encoder group's fresh
/// admissions are resident but not pooled); RRA decode passes `false` after
/// a bulk [`KvTracker::grow_all`].
fn advance(
    pool: &mut Vec<InFlight>,
    kv: &mut KvTracker,
    t: f64,
    done: &mut Vec<Done>,
    grow_ids: bool,
) {
    let mut i = 0;
    while i < pool.len() {
        pool[i].progress += 1;
        if grow_ids {
            kv.grow_or_clamp(pool[i].req.id, 1);
        }
        if pool[i].t_first.is_none() {
            pool[i].t_first = Some(t);
        }
        if pool[i].progress >= pool[i].req.output_len {
            let a = pool.swap_remove(i);
            kv.release(a.req.id);
            let t_first = a.t_first.unwrap_or(t);
            let per_token = if a.req.output_len > 1 {
                Some((t - t_first) / (a.req.output_len - 1) as f64)
            } else {
                None
            };
            done.push(Done {
                id: a.req.id,
                out_len: a.req.output_len,
                ttft: t_first - a.arrival,
                e2e: t - a.arrival,
                per_token,
                queue_wait: a.t_encoded - a.arrival,
                t,
            });
        } else {
            i += 1;
        }
    }
}

/// Virtual cost of swapping from `old` to `new`.
///
/// RRA time-shares every GPU between encode and decode, so changing `B_E` /
/// `N_D` is a pure runtime adjustment; only a tensor-parallelism change
/// re-partitions the deployment. WAA physically splits GPUs into encoder
/// and decoder groups, so any config change re-allocates and pays a
/// DRAM-sourced redeployment (§7.7, Table 4).
fn swap_cost(engine: &Engine, old: &ScheduleConfig, new: &ScheduleConfig) -> f64 {
    match (old, new) {
        (ScheduleConfig::Rra(a), ScheduleConfig::Rra(b)) if a.tp == b.tp => 0.0,
        (ScheduleConfig::Waa(a), ScheduleConfig::Waa(b)) if a == b => 0.0,
        _ => engine.deploy_time(LoadSource::Dram).as_secs(),
    }
}
