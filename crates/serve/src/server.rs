//! The online serving loop: discrete-event execution of an arrival stream
//! against a live, swappable schedule.

use exegpt::{Engine, Schedule, ScheduleConfig, SchedulerOptions};
use exegpt_cluster::LoadSource;
use exegpt_dist::stats::Summary;
use exegpt_runner::{PhaseExecutor, RunError};
use exegpt_sim::Workload;
use exegpt_units::Secs;
use exegpt_workload::{Request, TimedRequest};
use serde::Serialize;

use crate::drift::{DriftDetector, DriftOptions};
use crate::error::ServeError;
use crate::events::{Event, EventLog};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::slo::{SloOutcome, SloTargets};

/// Configuration of a [`ServeLoop`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Per-request latency targets.
    pub slo: SloTargets,
    /// §5.2 dynamic-adjustment threshold (fraction of the encoder-workload
    /// target; matches the offline runner's default).
    pub adjust_threshold: f64,
    /// Drift-detector tuning.
    pub drift: DriftOptions,
    /// Whether drift triggers a live reschedule (`false` = static plan,
    /// the Figure 11 "w/o re-optimization" arm).
    pub adaptive: bool,
    /// Scheduler options used for live reschedules (latency bound,
    /// policies, tolerances).
    pub scheduler: SchedulerOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            slo: SloTargets::unconstrained(),
            adjust_threshold: 0.15,
            drift: DriftOptions::default(),
            adaptive: true,
            scheduler: SchedulerOptions::bounded(Secs::INFINITY),
        }
    }
}

impl ServeOptions {
    fn validate(&self) -> Result<(), ServeError> {
        if self.adjust_threshold.is_nan() || self.adjust_threshold < 0.0 {
            return Err(ServeError::InvalidOption {
                what: "adjust_threshold",
                why: format!("must be non-negative, got {}", self.adjust_threshold),
            });
        }
        let d = &self.drift;
        if d.window == 0 || d.check_every == 0 || d.consecutive == 0 {
            return Err(ServeError::InvalidOption {
                what: "drift",
                why: "window, check_every and consecutive must be positive".into(),
            });
        }
        if d.min_samples > d.window {
            return Err(ServeError::InvalidOption {
                what: "drift.min_samples",
                why: format!("cannot exceed window ({} > {})", d.min_samples, d.window),
            });
        }
        if d.rel_threshold.is_nan() || d.rel_threshold < 0.0 {
            return Err(ServeError::InvalidOption {
                what: "drift.rel_threshold",
                why: format!("must be non-negative, got {}", d.rel_threshold),
            });
        }
        Ok(())
    }
}

/// Everything a finished serving run reports.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Requests served to completion.
    pub completed: usize,
    /// Output tokens generated.
    pub tokens_generated: u64,
    /// Virtual time of the last completion.
    pub makespan: f64,
    /// Completions per virtual second over the whole run.
    pub throughput: f64,
    /// Time-to-first-token summary (seconds from arrival).
    pub ttft: Option<Summary>,
    /// Per-generated-token latency summary (seconds, outputs > 1 token).
    pub per_token: Option<Summary>,
    /// End-to-end latency summary (seconds from arrival).
    pub e2e: Option<Summary>,
    /// Queueing-delay summary (arrival → encode start).
    pub queue_wait: Option<Summary>,
    /// SLO accounting.
    pub slo: SloOutcome,
    /// Drift checks performed.
    pub drift_checks: usize,
    /// Live reschedules performed.
    pub reschedules: usize,
    /// Plan swaps installed (≤ reschedules).
    pub plan_swaps: usize,
    /// Total virtual seconds spent redeploying across swaps.
    pub swap_cost: f64,
    /// Schedule in force when the run ended.
    pub final_schedule: String,
    /// Full metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Structured event log (byte-deterministic for a fixed seed).
    pub events: EventLog,
}

/// A query in flight through the pipeline.
struct InFlight {
    req: Request,
    progress: usize,
    arrival: f64,
    t_encoded: f64,
    t_first: Option<f64>,
}

/// A query that finished during the current phase.
struct Done {
    id: u64,
    out_len: usize,
    ttft: f64,
    e2e: f64,
    per_token: Option<f64>,
    queue_wait: f64,
    t: f64,
}

/// The online serving engine.
///
/// Owns a warm [`Engine`] (profile + evaluation caches) and the
/// [`PhaseExecutor`] of the currently installed schedule. [`run`] consumes
/// the loop and a timed arrival stream and plays the stream to completion:
/// admission is dynamic (§5.2), per-request latencies are checked against
/// the SLO, completed output lengths feed a drift detector, and — in
/// adaptive mode — detected drift refits the output distribution, invokes
/// [`Engine::reschedule`] on the warm engine, and installs the new plan at
/// the next phase boundary (paying a redeployment cost if the plan's GPU
/// allocation changed).
///
/// Everything runs in virtual time; for a fixed arrival stream and options
/// the run (including the serialized event log) is byte-deterministic.
///
/// [`run`]: ServeLoop::run
pub struct ServeLoop {
    engine: Engine,
    exec: PhaseExecutor,
    opts: ServeOptions,
}

impl ServeLoop {
    /// Creates a serving loop executing `schedule` on `engine`'s
    /// deployment.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Run`] when the schedule is infeasible on the
    /// deployment, or [`ServeError::InvalidOption`] for bad options.
    pub fn new(
        engine: Engine,
        schedule: &ScheduleConfig,
        opts: ServeOptions,
    ) -> Result<Self, ServeError> {
        opts.validate()?;
        let exec = PhaseExecutor::new(engine.simulator(), schedule)?;
        Ok(Self { engine, exec, opts })
    }

    /// The schedule currently installed.
    pub fn schedule(&self) -> ScheduleConfig {
        self.exec.schedule()
    }

    /// Serves `arrivals` (must be sorted by arrival time) to completion.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Run`] if execution stalls (a query can never
    /// fit in the KV cache) or a batch falls outside the profiled range.
    pub fn run(
        mut self,
        arrivals: impl IntoIterator<Item = TimedRequest>,
    ) -> Result<ServeReport, ServeError> {
        let mut upcoming = arrivals.into_iter().peekable();
        let mut pending: Vec<TimedRequest> = Vec::new();
        let mut pool: Vec<InFlight> = Vec::new();
        let mut t = 0.0f64;

        let mut metrics = Metrics::new();
        let mut events = EventLog::new();
        let mut slo_out = SloOutcome::default();
        let mut detector = DriftDetector::new(self.opts.drift);
        let mut adjuster = self.exec.adjuster(self.opts.adjust_threshold);
        let mut kv = self.exec.kv_tracker();
        let mut scheduled_b_d = self.exec.scheduled_decode_batch();
        let mut pending_swap: Option<ScheduleConfig> = None;
        let mut tokens: u64 = 0;
        let mut swap_cost_total = 0.0f64;
        let mut peak_kv: u64 = 0;
        let mut last_completion = 0.0f64;

        loop {
            // ---- Install a pending plan swap at the phase boundary ------
            if let Some(cfg) = pending_swap.take() {
                let new_exec = PhaseExecutor::new(self.engine.simulator(), &cfg)?;
                let cost = swap_cost(&self.engine, &self.exec.schedule(), &cfg);
                t += cost;
                peak_kv = peak_kv.max(kv.peak_bytes());
                let mut new_kv = new_exec.kv_tracker();
                for a in &pool {
                    // In-flight KV entries move to the new plan's tracker
                    // unconditionally: evicting live queries would violate
                    // their SLO by construction.
                    new_kv.admit_unchecked(a.req.id, a.req.input_len + a.progress);
                }
                events.push(Event::PlanSwap { t, cost, migrated: pool.len() });
                metrics.inc("plan_swaps");
                swap_cost_total += cost;
                self.exec = new_exec;
                kv = new_kv;
                adjuster = self.exec.adjuster(self.opts.adjust_threshold);
                scheduled_b_d = self.exec.scheduled_decode_batch();
            }

            // ---- Ingest arrivals up to the current virtual time ---------
            while let Some(r) = upcoming.peek() {
                if r.arrival > t {
                    break;
                }
                events.push(Event::Arrival {
                    t: r.arrival,
                    id: r.request.id,
                    input_len: r.request.input_len,
                    output_len: r.request.output_len,
                });
                metrics.inc("arrivals");
                pending.push(*r);
                upcoming.next();
            }

            // ---- Dynamic admission (§5.2) -------------------------------
            let lens: Vec<usize> = pending.iter().map(|r| r.request.input_len).collect();
            let selected = adjuster.select_batch(&lens, pool.len(), scheduled_b_d);
            let mut admitted: Vec<TimedRequest> = Vec::with_capacity(selected.len());
            let mut taken = vec![false; pending.len()];
            for &idx in &selected {
                let r = pending[idx];
                if !kv.try_admit(r.request.id, r.request.input_len, 0) {
                    break; // cache full: stop admitting this phase
                }
                taken[idx] = true;
                admitted.push(r);
            }
            if !admitted.is_empty() {
                let mut keep = Vec::with_capacity(pending.len() - admitted.len());
                for (i, r) in pending.into_iter().enumerate() {
                    if !taken[i] {
                        keep.push(r);
                    }
                }
                pending = keep;
                metrics.add("admitted", admitted.len() as u64);
            }

            if admitted.is_empty() && pool.is_empty() {
                if pending.is_empty() {
                    match upcoming.peek() {
                        None => break, // stream drained, nothing in flight
                        Some(r) => {
                            events.push(Event::Idle { from: t, until: r.arrival });
                            t = r.arrival;
                            continue;
                        }
                    }
                }
                return Err(RunError::Stalled {
                    why: format!(
                        "query {} ({} input tokens) cannot fit in the kv cache",
                        pending[0].request.id, pending[0].request.input_len
                    ),
                }
                .into());
            }

            // ---- Execute one phase (RRA) or round (WAA) -----------------
            let mut done: Vec<Done> = Vec::new();
            if self.exec.is_coupled() {
                let n_admitted = admitted.len();
                let (p_enc, enc_tokens) = if admitted.is_empty() {
                    (0.0, 0.0)
                } else {
                    let lens: Vec<usize> = admitted.iter().map(|r| r.request.input_len).collect();
                    let enc = self.exec.encode_timing(&lens)?;
                    (enc.bottleneck.as_secs(), enc.tokens)
                };
                let p_dec = if pool.is_empty() {
                    0.0
                } else {
                    let b_m = self.exec.decode_parallelism(pool.len());
                    let ctx = mean_context(&pool);
                    self.exec.decode_timing(b_m, pool.len(), ctx, false)?.total.as_secs()
                };
                let t_kv = self.exec.handover_time(enc_tokens).as_secs();
                let round = p_enc.max(p_dec).max(t_kv);
                let t_start = t;
                let pool_during = pool.len();
                t += round;
                if !pool.is_empty() {
                    tokens += pool.len() as u64;
                    advance(&mut pool, &mut kv, t, &mut done);
                }
                metrics.inc("rounds");
                events.push(Event::Round {
                    t_start,
                    t_end: t,
                    admitted: n_admitted,
                    pool: pool_during,
                });
                for r in admitted {
                    pool.push(InFlight {
                        req: r.request,
                        progress: 0,
                        arrival: r.arrival,
                        t_encoded: t_start,
                        t_first: None,
                    });
                }
            } else {
                if !admitted.is_empty() {
                    let lens: Vec<usize> = admitted.iter().map(|r| r.request.input_len).collect();
                    let enc = self.exec.encode_timing(&lens)?;
                    let t_start = t;
                    t += enc.total.as_secs();
                    metrics.inc("encode_phases");
                    events.push(Event::Encode {
                        t_start,
                        t_end: t,
                        admitted: admitted.len(),
                        queue_depth: pending.len(),
                    });
                    for r in admitted {
                        pool.push(InFlight {
                            req: r.request,
                            progress: 0,
                            arrival: r.arrival,
                            t_encoded: t_start,
                            t_first: None,
                        });
                    }
                }
                let m_d = self.exec.decode_parallelism(pool.len());
                let t_start = t;
                let mut iters = 0usize;
                for u in 0..self.exec.decode_iters_per_phase() {
                    if pool.is_empty() {
                        break;
                    }
                    let ctx = mean_context(&pool);
                    let dec = self.exec.decode_timing(m_d, pool.len(), ctx, u == 0)?;
                    t += dec.total.as_secs();
                    tokens += pool.len() as u64;
                    iters += 1;
                    advance(&mut pool, &mut kv, t, &mut done);
                }
                metrics.add("decode_iters", iters as u64);
                events.push(Event::Decode { t_start, t_end: t, iters, completed: done.len() });
            }

            // ---- Account completions: SLO, metrics, drift ---------------
            let scheduled_mean = self.exec.simulator().workload().output().mean();
            let mut drift_declared = false;
            for d in &done {
                metrics.inc("completions");
                metrics.observe("ttft", d.ttft);
                metrics.observe("e2e", d.e2e);
                metrics.observe("queue_wait", d.queue_wait);
                if let Some(pt) = d.per_token {
                    metrics.observe("per_token", pt);
                }
                let check = self.opts.slo.check(
                    Secs::new(d.ttft),
                    d.per_token.map(Secs::new),
                    Secs::new(d.e2e),
                );
                slo_out.record(check);
                events.push(Event::Completion {
                    t: d.t,
                    id: d.id,
                    ttft: d.ttft,
                    e2e: d.e2e,
                    violated: check.violated(),
                });
                last_completion = d.t;
                if let Some(c) = detector.observe(d.out_len, scheduled_mean) {
                    metrics.inc("drift_checks");
                    events.push(Event::DriftCheck {
                        t: d.t,
                        window_mean: c.window_mean,
                        scheduled_mean: c.scheduled_mean,
                        rel_shift: c.rel_shift,
                        drifted: c.drifted,
                    });
                    drift_declared |= c.drifted;
                }
            }
            metrics.gauge("queue_depth", pending.len() as f64);
            metrics.gauge("pool_size", pool.len() as f64);

            // ---- Live reschedule on declared drift ----------------------
            if drift_declared && self.opts.adaptive && pending_swap.is_none() {
                pending_swap = self.reschedule(&mut detector, t, &mut metrics, &mut events);
            }
        }

        peak_kv = peak_kv.max(kv.peak_bytes());
        let completed = slo_out.checked;
        let makespan = last_completion;
        let throughput = if makespan > 0.0 { completed as f64 / makespan } else { 0.0 };
        metrics.gauge("swap_cost_total", swap_cost_total);
        metrics.gauge("kv_peak_bytes", peak_kv as f64);
        Ok(ServeReport {
            completed,
            tokens_generated: tokens,
            makespan,
            throughput,
            ttft: metrics.summary("ttft"),
            per_token: metrics.summary("per_token"),
            e2e: metrics.summary("e2e"),
            queue_wait: metrics.summary("queue_wait"),
            slo: slo_out,
            drift_checks: metrics.counter("drift_checks") as usize,
            reschedules: metrics.counter("reschedules") as usize,
            plan_swaps: metrics.counter("plan_swaps") as usize,
            swap_cost: swap_cost_total,
            final_schedule: self.exec.schedule().describe(),
            metrics: metrics.snapshot(),
            events,
        })
    }

    /// Refits the output distribution to the drift window and re-runs the
    /// scheduler on the warm engine. Returns the new plan to install at the
    /// next phase boundary, or `None` if refitting/scheduling failed (the
    /// loop keeps serving on the old plan either way).
    fn reschedule(
        &mut self,
        detector: &mut DriftDetector,
        t: f64,
        metrics: &mut Metrics,
        events: &mut EventLog,
    ) -> Option<ScheduleConfig> {
        let result: Result<Schedule, ServeError> =
            detector.refit().map_err(ServeError::from).and_then(|refit| {
                let workload = Workload::new(
                    self.exec.simulator().workload().input().clone(),
                    refit.dist.clone(),
                );
                metrics.gauge("refit_mean", refit.dist.mean());
                self.engine.reschedule(workload, &self.opts.scheduler).map_err(ServeError::from)
            });
        detector.reset();
        match result {
            Ok(schedule) => {
                metrics.inc("reschedules");
                events.push(Event::Reschedule {
                    t,
                    from: self.exec.schedule().describe(),
                    to: schedule.config.describe(),
                    refit_mean: self.engine.simulator().workload().output().mean(),
                });
                // Install even an identical config: the executor must be
                // rebound to the refitted workload so drift is measured
                // against what the scheduler last optimized for.
                Some(schedule.config)
            }
            Err(e) => {
                metrics.inc("reschedule_failures");
                events.push(Event::RescheduleFailed { t, why: e.to_string() });
                None
            }
        }
    }
}

/// Mean context length (input + generated so far) over the pool.
fn mean_context(pool: &[InFlight]) -> f64 {
    pool.iter().map(|a| (a.req.input_len + a.progress) as f64).sum::<f64>() / pool.len() as f64
}

/// Advances every pooled query by one token at time `t`, recording first
/// tokens and harvesting completions (with KV compaction).
fn advance(
    pool: &mut Vec<InFlight>,
    kv: &mut exegpt_runner::KvTracker,
    t: f64,
    done: &mut Vec<Done>,
) {
    let mut i = 0;
    while i < pool.len() {
        pool[i].progress += 1;
        let _ = kv.grow(pool[i].req.id, 1);
        if pool[i].t_first.is_none() {
            pool[i].t_first = Some(t);
        }
        if pool[i].progress >= pool[i].req.output_len {
            let a = pool.swap_remove(i);
            kv.release(a.req.id);
            let t_first = a.t_first.unwrap_or(t);
            let per_token = if a.req.output_len > 1 {
                Some((t - t_first) / (a.req.output_len - 1) as f64)
            } else {
                None
            };
            done.push(Done {
                id: a.req.id,
                out_len: a.req.output_len,
                ttft: t_first - a.arrival,
                e2e: t - a.arrival,
                per_token,
                queue_wait: a.t_encoded - a.arrival,
                t,
            });
        } else {
            i += 1;
        }
    }
}

/// Virtual cost of swapping from `old` to `new`.
///
/// RRA time-shares every GPU between encode and decode, so changing `B_E` /
/// `N_D` is a pure runtime adjustment; only a tensor-parallelism change
/// re-partitions the deployment. WAA physically splits GPUs into encoder
/// and decoder groups, so any config change re-allocates and pays a
/// DRAM-sourced redeployment (§7.7, Table 4).
fn swap_cost(engine: &Engine, old: &ScheduleConfig, new: &ScheduleConfig) -> f64 {
    match (old, new) {
        (ScheduleConfig::Rra(a), ScheduleConfig::Rra(b)) if a.tp == b.tp => 0.0,
        (ScheduleConfig::Waa(a), ScheduleConfig::Waa(b)) if a == b => 0.0,
        _ => engine.deploy_time(LoadSource::Dram).as_secs(),
    }
}
