//! Acceptance tests for fault injection and graceful degradation.
//!
//! Setup mirrors `tests/shift.rs`: OPT-13B on 4×A40 serving translation
//! traffic under a 30 s latency bound, 2000 Poisson arrivals. A fixed
//! [`FaultSchedule`] kills one device a quarter into the arrival window,
//! slows another past the eviction threshold, and recovers both during the
//! backlog drain. The acceptance criteria from the fault-model design:
//!
//! 1. replaying the same schedule twice yields byte-identical event logs,
//! 2. graceful degradation loses zero requests (aborted work retries and
//!    completes on the surviving topology),
//! 3. every fault-driven replan lands at a phase boundary — never inside an
//!    executing phase — and is installed before the next phase runs,
//! 4. with no active faults the layer is a true no-op: enabling it with an
//!    empty schedule changes neither the makespan nor a single log byte.

use std::sync::{Arc, OnceLock};

use exegpt::Engine;
use exegpt_cluster::ClusterSpec;
use exegpt_faults::{FaultEvent, FaultKind, FaultSchedule};
use exegpt_model::ModelConfig;
use exegpt_profiler::{LayerProfile, ProfileOptions, Profiler};
use exegpt_serve::{
    Event, FaultOptions, ServeLoop, ServeOptions, ServeReport, SloTargets, StragglerOptions,
};
use exegpt_units::Secs;
use exegpt_workload::{PoissonStream, Task, TimedRequest};

const LATENCY_BOUND: Secs = Secs::new(30.0);
const TOTAL: usize = 2000;
const SEED: u64 = 7;

fn profile() -> Arc<LayerProfile> {
    static PROFILE: OnceLock<Arc<LayerProfile>> = OnceLock::new();
    PROFILE
        .get_or_init(|| {
            Arc::new(
                Profiler::new(
                    ModelConfig::opt_13b(),
                    ClusterSpec::a40_cluster().subcluster(4).expect("fits"),
                )
                .run(&ProfileOptions::default())
                .expect("profiles"),
            )
        })
        .clone()
}

struct Setup {
    engine: Engine,
    schedule: exegpt::ScheduleConfig,
    original: String,
    arrivals: Vec<TimedRequest>,
    horizon: f64,
    slo_e2e: Secs,
}

fn setup() -> Setup {
    let workload = Task::Translation.workload().expect("valid");
    let engine = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4).expect("fits"))
        .workload(workload.clone())
        .profile(profile())
        .build()
        .expect("builds");
    let schedule = engine.schedule(LATENCY_BOUND).expect("schedules");
    // Headroom below scheduled capacity so the degraded cluster can drain
    // its backlog and the run reaches the recovery events.
    let rate = 0.6 * schedule.estimate.throughput;
    let arrivals: Vec<TimedRequest> =
        PoissonStream::new(&workload, rate, SEED).take(TOTAL).collect();
    let horizon = arrivals.last().map(|r| r.arrival).unwrap_or(0.0);
    Setup {
        engine,
        schedule: schedule.config,
        original: schedule.config.describe(),
        arrivals,
        horizon,
        slo_e2e: schedule.estimate.latency * 4.0,
    }
}

/// The full degradation lifecycle: hard failure, straggler past the
/// eviction threshold, staged recovery during the backlog drain.
fn lifecycle_faults(horizon: f64) -> FaultSchedule {
    FaultSchedule::new(vec![
        FaultEvent { t: 0.25 * horizon, kind: FaultKind::GpuFail { gpu: 3 } },
        FaultEvent { t: 0.40 * horizon, kind: FaultKind::GpuSlowdown { gpu: 1, factor: 3.0 } },
        FaultEvent { t: 1.05 * horizon, kind: FaultKind::GpuRecover { gpu: 1 } },
        FaultEvent { t: 1.10 * horizon, kind: FaultKind::GpuRecover { gpu: 3 } },
    ])
    .expect("valid schedule")
}

fn opts(setup: &Setup, faults: Option<FaultOptions>, adaptive: bool) -> ServeOptions {
    ServeOptions {
        slo: SloTargets::e2e(setup.slo_e2e),
        faults,
        adaptive,
        ..ServeOptions::default()
    }
}

fn serve(setup: &Setup, opts: &ServeOptions) -> ServeReport {
    ServeLoop::new(setup.engine.clone(), &setup.schedule, opts.clone())
        .expect("feasible")
        .run(setup.arrivals.clone())
        .expect("serves")
}

/// Phase intervals `(t_start, t_end)` recorded in the log.
fn phase_intervals(events: &[Event]) -> Vec<(f64, f64)> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Encode { t_start, t_end, .. }
            | Event::Decode { t_start, t_end, .. }
            | Event::Round { t_start, t_end, .. } => Some((*t_start, *t_end)),
            _ => None,
        })
        .collect()
}

#[test]
fn fault_replay_is_byte_identical_with_zero_losses() {
    let setup = setup();
    let faults = FaultOptions {
        schedule: lifecycle_faults(setup.horizon),
        // Backlogged phases are long; two dilated phases are enough
        // evidence here (the default debounce of 3 suits short phases).
        straggler: StragglerOptions { rel_threshold: 1.25, consecutive: 2 },
        ..FaultOptions::default()
    };
    // Drift adaptation off so the log isolates the fault path (the
    // degraded backlog's drain is output-length-biased and would trigger
    // unrelated drift reschedules).
    let o = opts(&setup, Some(faults), false);
    let a = serve(&setup, &o);
    let b = serve(&setup, &o);

    // Byte-determinism of the full degradation lifecycle.
    let ja = a.events.to_jsonl();
    assert!(!ja.is_empty());
    assert_eq!(ja, b.events.to_jsonl(), "fault replay must be byte-deterministic");

    // Graceful degradation: all four faults fire, the failure is detected,
    // the straggler is confirmed and evicted, and nothing is lost.
    assert_eq!(a.faults_injected, 4);
    assert_eq!(a.faults_detected, 1);
    assert_eq!(a.stragglers_detected, 1);
    assert!(a.replans >= 3, "failover, eviction and recovery all replan (got {})", a.replans);
    assert!(a.retries > 0, "aborted in-flight work is retried");
    assert_eq!(a.requests_lost, 0);
    assert_eq!(a.completed, TOTAL);
    assert!(a.slo.is_consistent(), "inconsistent SLO accounting: {:?}", a.slo);
    assert_eq!(a.final_schedule, setup.original, "recovery restores the original plan");

    // Every replan decision lands at a phase boundary: never strictly
    // inside an executed phase, and the chosen plan is installed (PlanSwap)
    // before the next phase runs.
    let events = a.events.events();
    let intervals = phase_intervals(events);
    let mut replans = 0;
    for (i, e) in events.iter().enumerate() {
        let Event::Replan { t, .. } = e else { continue };
        replans += 1;
        for &(s, end) in &intervals {
            assert!(!(*t > s && *t < end), "replan at t={t} falls inside phase ({s}, {end})");
        }
        let installed = events[i + 1..]
            .iter()
            .take_while(|e| {
                !matches!(e, Event::Encode { .. } | Event::Decode { .. } | Event::Round { .. })
            })
            .any(|e| matches!(e, Event::PlanSwap { .. }));
        assert!(installed, "replan #{replans} was not installed before the next phase");
    }
    assert_eq!(replans, a.replans, "every replan decision is logged");
    assert!(
        !events.iter().any(|e| matches!(e, Event::ReplanFailed { .. })),
        "no replan may fail in this scenario"
    );
}

#[test]
fn idle_fault_layer_is_a_true_no_op() {
    // Differential: enabling the fault layer with an empty schedule must
    // not perturb a single bit — same makespan, same log bytes, same
    // metrics — on the full adaptive loop.
    let setup = setup();
    let disabled = serve(&setup, &opts(&setup, None, true));
    let idle = serve(&setup, &opts(&setup, Some(FaultOptions::default()), true));

    assert_eq!(disabled.makespan.to_bits(), idle.makespan.to_bits(), "makespans must be bit-equal");
    assert_eq!(
        disabled.events.to_jsonl(),
        idle.events.to_jsonl(),
        "an idle fault layer must not change the event log"
    );
    assert_eq!(
        serde_json::to_string(&disabled.metrics).expect("serializes"),
        serde_json::to_string(&idle.metrics).expect("serializes"),
    );
    assert_eq!(idle.faults_injected, 0);
    assert_eq!(idle.replans, 0);
    assert_eq!(idle.retries, 0);
}

#[test]
fn single_gpu_failure_degrades_gracefully_under_default_options() {
    // The acceptance scenario: a mid-run single-GPU failure under
    // otherwise-default serving options (adaptive loop on). Detection,
    // replan onto the three survivors, zero losses, deterministic replay.
    let setup = setup();
    let faults = FaultOptions {
        schedule: FaultSchedule::new(vec![FaultEvent {
            t: 0.5 * setup.horizon,
            kind: FaultKind::GpuFail { gpu: 2 },
        }])
        .expect("valid schedule"),
        ..FaultOptions::default()
    };
    let o = opts(&setup, Some(faults), true);
    let a = serve(&setup, &o);
    let b = serve(&setup, &o);

    assert_eq!(a.faults_injected, 1);
    assert_eq!(a.faults_detected, 1, "the failure matures through the heartbeat timeout");
    assert!(a.replans >= 1, "the loop replans onto the survivors");
    assert_eq!(a.completed, TOTAL, "every request completes on the degraded cluster");
    assert_eq!(a.requests_lost, 0);
    assert!(a.slo.is_consistent(), "inconsistent SLO accounting: {:?}", a.slo);
    assert!(
        a.events.events().iter().any(
            |e| matches!(e, Event::Replan { gpus, reason, .. } if *gpus == 3 && reason == "failover")
        ),
        "the failover replan targets the 3-GPU surviving topology"
    );
    assert_eq!(
        a.events.to_jsonl(),
        b.events.to_jsonl(),
        "degraded runs must stay byte-deterministic"
    );
}
