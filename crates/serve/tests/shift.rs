//! Acceptance tests for the serving loop: the §7.6 distribution-shift
//! experiment end-to-end, and byte-determinism of the event log.
//!
//! Setup: OPT-13B on 4×A40 serving translation traffic under a 30 s
//! latency bound. After 500 requests the output-length distribution's mean
//! shifts ×1.5 (Figure 11's "Average" shift). The schedule optimized for
//! the base distribution keeps running in the *static* arm; the *adaptive*
//! arm detects the drift from completed output lengths, refits the
//! distribution, reschedules on the warm engine and swaps plans at a phase
//! boundary. The stale plan's tail latency blows through the SLO on the
//! shifted traffic (its 99th-percentile-sequence latency estimate is well
//! above the bound), so the adaptive arm must end with a strictly lower
//! SLO-violation rate on the very same arrival stream.

use std::sync::{Arc, OnceLock};

use exegpt::{Engine, SchedulerOptions};
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_profiler::{LayerProfile, ProfileOptions, Profiler};
use exegpt_serve::{
    poisson_with_shift, DriftOptions, ServeLoop, ServeOptions, ServeReport, SloTargets,
};
use exegpt_sim::Workload;
use exegpt_units::Secs;
use exegpt_workload::{Task, TimedRequest};

const LATENCY_BOUND: Secs = Secs::new(30.0);
const SHIFT_FACTOR: f64 = 1.5;
const TOTAL: usize = 2000;
const SHIFT_AT: usize = 500;
const SEED: u64 = 7;

fn profile() -> Arc<LayerProfile> {
    static PROFILE: OnceLock<Arc<LayerProfile>> = OnceLock::new();
    PROFILE
        .get_or_init(|| {
            Arc::new(
                Profiler::new(
                    ModelConfig::opt_13b(),
                    ClusterSpec::a40_cluster().subcluster(4).expect("fits"),
                )
                .run(&ProfileOptions::default())
                .expect("profiles"),
            )
        })
        .clone()
}

fn engine(workload: &Workload) -> Engine {
    Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4).expect("fits"))
        .workload(workload.clone())
        .profile(profile())
        .build()
        .expect("builds")
}

/// The shift stream, the initial schedule, and an SLO/rate pair placed so
/// the experiment discriminates: the arrival rate runs the stale plan near
/// its shifted-workload capacity, and the end-to-end SLO sits between the
/// re-optimized plan's latency estimate and the stale plan's.
struct Setup {
    engine: Engine,
    schedule: exegpt::ScheduleConfig,
    arrivals: Vec<TimedRequest>,
    slo_e2e: Secs,
}

fn setup() -> Setup {
    let base = Task::Translation.workload().expect("valid");
    let shifted = Workload::new(
        base.input().clone(),
        base.output().with_scaled_mean(SHIFT_FACTOR).expect("valid"),
    );
    let engine = engine(&base);
    let schedule = engine.schedule(LATENCY_BOUND).expect("schedules");
    let slo_e2e = LATENCY_BOUND * 1.2;

    // The stale plan on shifted traffic: still memory-feasible (the bound
    // keeps its pool small) but its tail latency exceeds the SLO, while a
    // re-optimized plan honours the bound — the gap the adaptive arm wins.
    let stale = engine
        .simulator()
        .with_workload(shifted.clone())
        .evaluate(&schedule.config)
        .expect("stale plan still runs under the bound");
    let reopt = engine.with_workload(shifted.clone()).schedule(LATENCY_BOUND).expect("schedules");
    assert!(
        stale.latency > slo_e2e && reopt.estimate.latency < slo_e2e,
        "experiment preconditions: stale L99 {:.1}s above the {:.0}s SLO, \
         re-optimized L99 {:.1}s below it",
        stale.latency.as_secs(),
        slo_e2e.as_secs(),
        reopt.estimate.latency.as_secs(),
    );

    let rate = 0.96 * stale.throughput;
    let arrivals = poisson_with_shift(&base, &shifted, rate, SHIFT_AT, TOTAL, SEED);
    Setup { engine, schedule: schedule.config, arrivals, slo_e2e }
}

fn opts(adaptive: bool, slo_e2e: Secs) -> ServeOptions {
    ServeOptions {
        slo: SloTargets::e2e(slo_e2e),
        adaptive,
        scheduler: SchedulerOptions::bounded(LATENCY_BOUND),
        drift: DriftOptions {
            window: 128,
            min_samples: 48,
            check_every: 16,
            rel_threshold: 0.15,
            consecutive: 2,
        },
        ..ServeOptions::default()
    }
}

fn serve(setup: &Setup, adaptive: bool) -> ServeReport {
    ServeLoop::new(setup.engine.clone(), &setup.schedule, opts(adaptive, setup.slo_e2e))
        .expect("feasible")
        .run(setup.arrivals.clone())
        .expect("serves")
}

#[test]
fn adaptive_loop_beats_static_plan_under_shift() {
    let setup = setup();
    let static_report = serve(&setup, false);
    let adaptive_report = serve(&setup, true);

    // Both arms served the full stream and kept their books straight.
    for r in [&static_report, &adaptive_report] {
        assert_eq!(r.completed, TOTAL);
        assert_eq!(r.slo.checked, TOTAL);
        assert!(r.slo.is_consistent(), "inconsistent SLO accounting: {:?}", r.slo);
    }
    assert_eq!(static_report.reschedules, 0, "static arm never reschedules");
    assert_eq!(static_report.plan_swaps, 0);

    // The adaptive arm detected the drift and swapped plans mid-run.
    assert!(adaptive_report.drift_checks > 0, "drift checks ran");
    assert!(adaptive_report.reschedules >= 1, "drift triggered a live reschedule");
    assert!(adaptive_report.plan_swaps >= 1, "the new plan was installed");

    // The stale plan does violate the SLO on shifted traffic...
    assert!(
        static_report.slo.violations > 0,
        "the static arm must incur SLO violations for the comparison to be meaningful"
    );
    // ...and the acceptance criterion: strictly fewer violations on the
    // same stream (Figure 11's re-optimization benefit, measured
    // end-to-end through the serving loop).
    assert!(
        adaptive_report.slo.violation_rate() < static_report.slo.violation_rate(),
        "adaptive ({:.3}) must strictly beat static ({:.3}) on SLO violation rate",
        adaptive_report.slo.violation_rate(),
        static_report.slo.violation_rate(),
    );
}

#[test]
fn static_plan_event_log_is_byte_identical_across_runs() {
    // The static path leans on the runner's KV tracker bookkeeping
    // (ordered maps only, xlint rule D1); two runs must not differ by a
    // single byte.
    let setup = setup();
    let a = serve(&setup, false);
    let b = serve(&setup, false);
    let ja = a.events.to_jsonl();
    let jb = b.events.to_jsonl();
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "static serve runs must be byte-deterministic");
}

#[test]
fn incremental_replans_leave_the_event_log_unchanged() {
    // Drift replans default to the incremental path (warm-started
    // neighborhood search); with it disabled every replan runs the full
    // search. The chosen plans are certified identical, so the two arms
    // must serve byte-identical event logs — the incremental path may only
    // change replan latency, never what is served.
    let setup = setup();
    let incremental = serve(&setup, true);
    let full = ServeLoop::new(
        setup.engine.clone(),
        &setup.schedule,
        ServeOptions { incremental_replan: false, ..opts(true, setup.slo_e2e) },
    )
    .expect("feasible")
    .run(setup.arrivals.clone())
    .expect("serves");

    assert!(incremental.reschedules >= 1, "the shift must trigger a replan");
    assert_eq!(
        incremental.incremental_replans + incremental.replan_fallbacks,
        incremental.reschedules,
        "every drift replan must go through the incremental path"
    );
    assert_eq!(
        incremental.replan_fallbacks, 0,
        "the golden drift scenario must not silently fall back to the full search"
    );
    assert_eq!(full.incremental_replans, 0, "the disabled arm must not replan incrementally");
    assert_eq!(
        incremental.events.to_jsonl(),
        full.events.to_jsonl(),
        "incremental replanning changed what was served"
    );
}

#[test]
fn event_log_is_byte_identical_across_runs() {
    let setup = setup();
    let a = serve(&setup, true);
    let b = serve(&setup, true);
    let ja = a.events.to_jsonl();
    let jb = b.events.to_jsonl();
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "adaptive serve runs must be byte-deterministic");
    // The metrics snapshot is equally deterministic.
    assert_eq!(
        serde_json::to_string(&a.metrics).expect("serializes"),
        serde_json::to_string(&b.metrics).expect("serializes"),
    );
}
