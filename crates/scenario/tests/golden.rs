//! Golden replay tests: the shipped scenario configs reproduce the
//! hand-written bench/smoke constructions byte for byte, and the committed
//! digest index stays in lockstep with the scenario files.

use std::path::{Path, PathBuf};

use exegpt::Engine;
use exegpt::SchedulerOptions;
use exegpt_cluster::ClusterSpec;
use exegpt_faults::{FaultEvent, FaultKind, FaultSchedule};
use exegpt_fleet::{
    DispatchPolicy, Fleet, FleetOptions, FleetReport, ReplicaSpec, ScaleAction, ScaleEvent,
    SloClass,
};
use exegpt_model::ModelConfig;
use exegpt_profiler::{ProfileCache, ProfileOptions};
use exegpt_scenario::{run, toml, Report, Scenario};
use exegpt_serve::{poisson_with_shift, DriftOptions, ServeLoop, ServeOptions, SloTargets};
use exegpt_sim::Workload;
use exegpt_units::Secs;
use exegpt_workload::{multi_tenant_trace, ArrivalProcess, Task, TenantSpec};
use serde::Value;

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn load(name: &str) -> Scenario {
    Scenario::load(&scenarios_dir().join(name)).expect("shipped scenario loads")
}

fn engine_for(model: &ModelConfig, cluster: &ClusterSpec, workload: Workload) -> Engine {
    // An independent profile pass (not the scenario crate's cache):
    // profiling is deterministic, so the engines must still agree.
    let cache = ProfileCache::new();
    let profile = cache
        .get_or_profile(model, cluster, &ProfileOptions::default())
        .expect("profiling succeeds");
    Engine::builder()
        .model(model.clone())
        .cluster(cluster.clone())
        .workload(workload)
        .profile(profile)
        .build()
        .expect("engine builds")
}

/// `scenarios/serve-shift.toml` is a transcription of the bench
/// serve_shift adaptive arm; its event log must match the hand-written
/// construction byte for byte.
#[test]
fn serve_shift_config_matches_code_construction() {
    let outcome = run(&load("serve-shift.toml")).expect("serve-shift runs");

    // The construction from bench serve_shift.rs, adaptive arm, verbatim.
    let total = 2000;
    let model = ModelConfig::opt_13b();
    let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("4xA40 exists");
    let base = Task::Translation.workload().expect("task statistics are valid");
    let shifted = Workload::new(
        base.input().clone(),
        base.output().with_scaled_mean(1.5).expect("valid shift"),
    );
    let engine = engine_for(&model, &cluster, base.clone());
    let schedule = engine.schedule(Secs::new(30.0)).expect("bounded schedule exists");
    let rate = engine
        .simulator()
        .with_workload(shifted.clone())
        .evaluate(&schedule.config)
        .map(|e| 0.96 * e.throughput)
        .unwrap_or(0.96 * schedule.estimate.throughput);
    let arrivals = poisson_with_shift(&base, &shifted, rate, total / 4, total, 7);
    let opts = ServeOptions {
        slo: SloTargets::e2e(Secs::new(36.0)),
        adaptive: true,
        scheduler: SchedulerOptions::bounded(Secs::new(30.0)),
        drift: DriftOptions {
            window: 128,
            min_samples: 48,
            check_every: 16,
            rel_threshold: 0.15,
            consecutive: 2,
        },
        ..ServeOptions::default()
    };
    let report = ServeLoop::new(engine, &schedule.config, opts)
        .expect("schedule is feasible")
        .run(arrivals)
        .expect("serve run completes");

    assert_eq!(outcome.log, report.events.to_jsonl(), "event logs must be byte-identical");
    let Report::Serve(from_config) = outcome.report else {
        panic!("serve scenario must yield a serve report");
    };
    assert_eq!(from_config.completed, report.completed);
    assert_eq!(from_config.final_schedule, report.final_schedule);
}

/// `scenarios/fleet-loss.toml` is a transcription of the fleet smoke
/// topology (two pools, standby scale-up, replica loss + recovery); its
/// fabric-plus-replica log must match the hand-written construction.
#[test]
fn fleet_loss_config_matches_code_construction() {
    let outcome = run(&load("fleet-loss.toml")).expect("fleet-loss runs");

    // The construction from fleet-smoke, with the shipped file's totals.
    let total = 6000;
    let model = ModelConfig::opt_13b();
    let workload = Task::Translation.workload().expect("task statistics are valid");
    let a40 = ClusterSpec::a40_cluster().subcluster(4).expect("4xA40 exists");
    let a100 = ClusterSpec::a100_cluster().subcluster(4).expect("4xA100 exists");
    let engine40 = engine_for(&model, &a40, workload.clone());
    let engine100 = engine_for(&model, &a100, workload.clone());
    let plan40 = engine40.schedule(Secs::INFINITY).expect("a40 plan exists");
    let plan100 = engine100.schedule(Secs::INFINITY).expect("a100 plan exists");

    let lat40 = plan40.estimate.latency.as_secs();
    let lat100 = plan100.estimate.latency.as_secs();
    let interactive_e2e = 0.5 * (lat40.min(lat100) + lat40.max(lat100));
    let classes = vec![
        SloClass::interactive("interactive", Secs::new(interactive_e2e)),
        SloClass::batch("batch"),
    ];

    let thr40 = plan40.estimate.throughput;
    let thr100 = plan100.estimate.throughput;
    let fast_thr = thr40.max(thr100);
    let slow_thr = thr40.min(thr100);
    let tenants = vec![
        TenantSpec {
            tenant: 0,
            class: 0,
            process: ArrivalProcess::Poisson { rate_qps: 0.20 * fast_thr },
        },
        TenantSpec {
            tenant: 1,
            class: 0,
            process: ArrivalProcess::Poisson { rate_qps: 0.15 * fast_thr },
        },
        TenantSpec {
            tenant: 2,
            class: 1,
            process: ArrivalProcess::Poisson { rate_qps: 1.80 * slow_thr },
        },
        TenantSpec {
            tenant: 3,
            class: 1,
            process: ArrivalProcess::Bursty {
                rate_burst: 1.20 * slow_thr,
                rate_lull: 0.40 * slow_thr,
                dwell_burst: 20.0,
                dwell_lull: 60.0,
            },
        },
    ];
    let trace = multi_tenant_trace(&workload, &tenants, total, 7);
    let horizon = trace.last().map(|r| r.request.arrival).unwrap_or(0.0);

    let faults = FaultSchedule::new(vec![
        FaultEvent { t: 0.50 * horizon, kind: FaultKind::GpuFail { gpu: 1 } },
        FaultEvent { t: 0.90 * horizon, kind: FaultKind::GpuRecover { gpu: 1 } },
    ])
    .expect("fault schedule is ordered");
    let scale = vec![ScaleEvent { t: 0.55 * horizon, action: ScaleAction::Up { replica: 3 } }];

    let opts = ServeOptions { adaptive: false, ..ServeOptions::default() };
    let specs = vec![
        ReplicaSpec::new("a40-0", engine40.clone(), plan40.config, opts.clone())
            .expect("replica spec"),
        ReplicaSpec::new("a40-1", engine40.clone(), plan40.config, opts.clone())
            .expect("replica spec"),
        ReplicaSpec::new("a100-0", engine100.clone(), plan100.config, opts.clone())
            .expect("replica spec"),
        ReplicaSpec::new("a40-standby", engine40.clone(), plan40.config, opts)
            .expect("replica spec")
            .standby(),
    ];
    let options =
        FleetOptions { policy: DispatchPolicy::SloAware, classes, faults: Some(faults), scale };
    let report =
        Fleet::new(specs, options).expect("fleet builds").run(trace).expect("fleet run completes");

    assert_eq!(outcome.log, fleet_log(&report), "event logs must be byte-identical");
    let Report::Fleet(from_config) = outcome.report else {
        panic!("fleet scenario must yield a fleet report");
    };
    assert_eq!(from_config.completed, report.completed);
    assert_eq!(from_config.lost, 0, "no request may be lost across the replica failure");
}

/// The same fabric + per-replica concatenation the scenario digest covers.
fn fleet_log(report: &FleetReport) -> String {
    let mut all = report.events.to_jsonl();
    for r in &report.replicas {
        for s in &r.reports {
            all.push_str(&s.events.to_jsonl());
        }
    }
    all
}

/// `GOLDENS.toml` names exactly the shipped scenario files, each with a
/// well-formed 16-hex-digit digest, and every shipped file validates.
#[test]
fn goldens_index_matches_shipped_scenarios() {
    let dir = scenarios_dir();
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .expect("scenarios dir exists")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".toml") && n != "GOLDENS.toml")
        .collect();
    files.sort();
    assert!(!files.is_empty(), "shipped scenarios must exist");

    for name in &files {
        let scenario = load(name);
        scenario.validate().expect("shipped scenario validates");
    }

    let goldens = std::fs::read_to_string(dir.join("GOLDENS.toml")).expect("goldens exist");
    let Value::Object(entries) = toml::parse(&goldens).expect("goldens parse") else {
        panic!("GOLDENS.toml must be a table");
    };
    let mut locked: Vec<String> = entries.iter().map(|(k, _)| k.clone()).collect();
    locked.sort();
    assert_eq!(locked, files, "GOLDENS.toml must lock exactly the shipped scenarios");
    for (name, digest) in &entries {
        let Value::Str(d) = digest else {
            panic!("golden `{name}` must be a string digest");
        };
        assert_eq!(d.len(), 16, "golden `{name}` must be a 64-bit hex digest");
        assert!(
            d.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()),
            "golden `{name}` must be lowercase hex"
        );
    }
}
