//! Property-based guarantees of the scenario layer.
//!
//! * Round-trips: any valid scenario survives `Scenario -> TOML ->
//!   Scenario` and `Scenario -> JSON -> Scenario` unchanged, boundary
//!   floats included.
//! * Lowering: every runnable scenario lowers to plans that pass the full
//!   runtime [`PlanInvariants`] check.
//! * Conservation: executing a runnable scenario loses no request — serve
//!   and fleet runs complete exactly `total`, replays exactly
//!   `num_queries`.
//! * Recovery: a failure plus a straggler that both heal during the
//!   backlog drain restore the original plan verbatim, with zero lost
//!   requests.

use exegpt::PlanInvariants;
use exegpt_scenario::{
    arbitrary::{arbitrary_fault_recovery, arbitrary_runnable, arbitrary_scenario},
    lower, run, Report, Scenario,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Scenario -> TOML -> Scenario` is the identity, for every mode and
    /// boundary floats (subnormals, 1e308, values with no short decimal).
    #[test]
    fn toml_round_trip_is_identity(seed in 0u64..1u64 << 32) {
        let scenario = arbitrary_scenario(&mut StdRng::seed_from_u64(seed));
        let text = scenario.to_toml_string().expect("valid scenarios render to TOML");
        let back = Scenario::from_toml_str(&text);
        prop_assert!(back.is_ok(), "re-parse failed: {:?}\n{text}", back.err());
        prop_assert_eq!(scenario, back.unwrap(), "TOML round trip must be lossless");
    }

    /// `Scenario -> JSON -> Scenario` is the identity on the same space.
    #[test]
    fn json_round_trip_is_identity(seed in 0u64..1u64 << 32) {
        let scenario = arbitrary_scenario(&mut StdRng::seed_from_u64(seed));
        let text = scenario.to_json_string();
        let back = Scenario::from_json_str(&text);
        prop_assert!(back.is_ok(), "re-parse failed: {:?}\n{text}", back.err());
        prop_assert_eq!(scenario, back.unwrap(), "JSON round trip must be lossless");
    }

    /// Every generated scenario passes its own validation (the generator's
    /// contract), and validation survives a render/parse cycle.
    #[test]
    fn generated_scenarios_validate(seed in 0u64..1u64 << 32) {
        let scenario = arbitrary_scenario(&mut StdRng::seed_from_u64(seed));
        prop_assert!(scenario.validate().is_ok(), "generator produced an invalid scenario: {:?}", scenario.validate().err());
    }
}

proptest! {
    // Each case runs a schedule search; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Lowering a runnable scenario yields plans that pass the runtime
    /// plan-invariants check on their own engines.
    #[test]
    fn lowered_plans_pass_invariants(seed in 0u64..1u64 << 32) {
        let scenario = arbitrary_runnable(&mut StdRng::seed_from_u64(seed));
        let lowered = lower(&scenario);
        prop_assert!(lowered.is_ok(), "lowering failed: {:?}", lowered.err());
        let lowered = lowered.unwrap();
        let plans = lowered.plans();
        prop_assert!(!plans.is_empty(), "a runnable scenario must produce a plan");
        for (engine, schedule) in plans {
            let check = PlanInvariants::check(engine.simulator(), schedule);
            prop_assert!(check.is_ok(), "lowered plan violates invariants: {:?}", check.err());
        }
    }

    /// Executing a runnable scenario conserves requests: nothing lost,
    /// everything offered is completed.
    #[test]
    fn runs_conserve_requests(seed in 0u64..1u64 << 32) {
        let scenario = arbitrary_runnable(&mut StdRng::seed_from_u64(seed));
        let outcome = run(&scenario);
        prop_assert!(outcome.is_ok(), "run failed: {:?}", outcome.err());
        match &outcome.unwrap().report {
            Report::Serve(r) => {
                prop_assert_eq!(r.requests_lost, 0, "serve run lost requests");
            }
            Report::Fleet(r) => {
                prop_assert_eq!(r.lost, 0, "fleet run lost requests");
                prop_assert_eq!(r.rejected, 0, "fleet run rejected requests");
                prop_assert_eq!(r.completed, r.dispatched, "fleet run dropped requests");
            }
            Report::Replay(_) => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A GPU failure and a straggler that both recover during the backlog
    /// drain leave no request behind and restore the original schedule
    /// byte for byte.
    #[test]
    fn fault_recovery_is_exact(seed in 0u64..1u64 << 32) {
        let scenario = arbitrary_fault_recovery(&mut StdRng::seed_from_u64(seed));
        let original = {
            let lowered = lower(&scenario).expect("recovery scenario lowers");
            let plans = lowered.plans();
            plans[0].1.config.describe()
        };
        let outcome = run(&scenario);
        prop_assert!(outcome.is_ok(), "run failed: {:?}", outcome.err());
        let outcome = outcome.unwrap();
        let Report::Serve(r) = &outcome.report else {
            panic!("recovery scenario must be a serve run");
        };
        prop_assert_eq!(r.requests_lost, 0, "recovery lost requests");
        prop_assert_eq!(r.faults_injected, 4, "all four fault events must fire");
        prop_assert_eq!(
            &r.final_schedule, &original,
            "full recovery must restore the original plan"
        );
    }
}
