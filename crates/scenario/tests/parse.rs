//! Negative-parse suite: malformed configs come back as structured
//! errors naming the offending key path — never as panics.

use exegpt_scenario::arbitrary::{arbitrary_scenario, mutate_invalid, overlapping_faults_tree};
use exegpt_scenario::{Scenario, ScenarioError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MINIMAL_SERVE: &str = r#"
name = "minimal"

[model]
preset = "opt-13b"

[cluster]
preset = "a40"
gpus = 4

[workload]
kind = "task"
task = "translation"

[scheduler]
latency_bound_secs = 30.0

[serve]
total = 100

[serve.arrivals]
kind = "poisson"

[serve.arrivals.rate]
kind = "qps"
qps = 5.0

[serve.slo]
e2e_secs = 60.0
"#;

fn parsed(text: &str) -> Scenario {
    Scenario::from_toml_str(text).expect("baseline config parses")
}

/// The error for `text`, asserting there is one.
fn error_of(text: &str) -> ScenarioError {
    Scenario::from_toml_str(text).expect_err("malformed config must be rejected")
}

#[test]
fn baseline_config_is_valid() {
    let s = parsed(MINIMAL_SERVE);
    assert_eq!(s.name, "minimal");
}

#[test]
fn unknown_enum_tag_names_the_kind_path() {
    let text = MINIMAL_SERVE.replace("kind = \"task\"", "kind = \"mystery\"");
    let err = error_of(&text);
    assert_eq!(err.key_path(), Some("workload.kind"));
    assert!(err.to_string().contains("mystery"), "message must quote the bad tag: {err}");
}

#[test]
fn negative_rate_names_the_rate_path() {
    let text = MINIMAL_SERVE.replace("qps = 5.0", "qps = -5.0");
    let err = error_of(&text);
    assert_eq!(err.key_path(), Some("serve.arrivals.rate.qps"));
}

#[test]
fn empty_gpu_pool_names_the_cluster_path() {
    let text = MINIMAL_SERVE.replace("gpus = 4", "gpus = 0");
    let err = error_of(&text);
    assert_eq!(err.key_path(), Some("cluster.gpus"));
}

#[test]
fn unknown_key_names_the_injected_path() {
    let text = MINIMAL_SERVE
        .replace("latency_bound_secs = 30.0", "latency_bound_secs = 30.0\nwarp_speed = true");
    let err = error_of(&text);
    assert_eq!(err.key_path(), Some("scheduler.warp_speed"));
}

#[test]
fn wrong_type_names_the_field_path() {
    let text = MINIMAL_SERVE.replace("total = 100", "total = \"lots\"");
    let err = error_of(&text);
    assert_eq!(err.key_path(), Some("serve.total"));
}

#[test]
fn missing_mode_is_reported_at_the_root() {
    let text: String = MINIMAL_SERVE
        .lines()
        .take_while(|l| !l.starts_with("[serve]"))
        .collect::<Vec<_>>()
        .join("\n");
    let err = error_of(&text);
    assert!(
        err.to_string().contains("[serve], [fleet] or [replay]"),
        "must explain the missing mode: {err}"
    );
}

#[test]
fn overlapping_fault_windows_name_the_second_event() {
    let text = format!(
        "{MINIMAL_SERVE}\n\
         [[serve.faults.events]]\n\
         t_frac = 0.2\n\
         kind = \"gpu_fail\"\n\
         gpu = 1\n\n\
         [[serve.faults.events]]\n\
         t_frac = 0.4\n\
         kind = \"gpu_slowdown\"\n\
         gpu = 1\n\
         factor = 2.0\n"
    );
    let err = error_of(&text);
    assert_eq!(err.key_path(), Some("serve.faults.events[1]"));
    assert!(
        err.to_string().contains("overlapping fault windows"),
        "message must explain the overlap: {err}"
    );
}

#[test]
fn fault_recover_without_open_window_is_rejected() {
    let text = format!(
        "{MINIMAL_SERVE}\n\
         [[serve.faults.events]]\n\
         t_frac = 0.2\n\
         kind = \"gpu_recover\"\n\
         gpu = 2\n"
    );
    let err = error_of(&text);
    assert_eq!(err.key_path(), Some("serve.faults.events[0]"));
}

#[test]
fn toml_syntax_errors_carry_the_line() {
    let err = error_of("name = \"x\"\nmodel = [unterminated");
    let ScenarioError::Syntax { line, .. } = err else {
        panic!("expected a syntax error, got {err}");
    };
    assert_eq!(line, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every documented corruption of a valid scenario is rejected with a
    /// structured error naming the expected key path — and never panics.
    #[test]
    fn mutated_configs_fail_with_the_expected_path(seed in 0u64..1u64 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scenario = arbitrary_scenario(&mut rng);
        let (tree, expected) = mutate_invalid(&mut rng, &scenario);
        let result = Scenario::decode(&tree).and_then(|s| s.validate().map(|()| s));
        match result {
            Ok(_) => panic!("corruption at `{expected}` was accepted"),
            Err(err) => {
                prop_assert_eq!(
                    err.key_path(), Some(expected.as_str()),
                    "wrong path for corruption: {}", err
                );
            }
        }
    }

    /// Overlapping fault windows injected into any serve scenario are
    /// rejected at the second event's path.
    #[test]
    fn injected_overlapping_windows_are_rejected(seed in 0u64..1u64 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scenario = arbitrary_scenario(&mut rng);
        if let Some((tree, expected)) = overlapping_faults_tree(&scenario) {
            let result = Scenario::decode(&tree).and_then(|s| s.validate().map(|()| s));
            match result {
                Ok(_) => panic!("overlapping windows were accepted"),
                Err(err) => {
                    prop_assert_eq!(err.key_path(), Some(expected.as_str()));
                    prop_assert!(
                        err.to_string().contains("overlapping fault windows"),
                        "message must explain the overlap: {}", err
                    );
                }
            }
        }
    }

    /// Rendering a corrupted tree back to TOML and re-parsing still fails
    /// with a structured error (the whole text path is panic-free: a panic
    /// anywhere here fails the test).
    #[test]
    fn corrupted_trees_never_panic_through_the_text_path(seed in 0u64..1u64 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scenario = arbitrary_scenario(&mut rng);
        let (tree, _) = mutate_invalid(&mut rng, &scenario);
        if let Ok(text) = exegpt_scenario::toml::render(&tree) {
            prop_assert!(
                Scenario::from_toml_str(&text).is_err(),
                "corrupted config must not re-parse cleanly:\n{}", text
            );
        }
    }
}
