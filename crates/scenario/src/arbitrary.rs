//! Arbitrary-style generators for the property/fuzz harness.
//!
//! Two tiers, both fully deterministic from the caller's RNG:
//!
//! * [`arbitrary_scenario`] draws from the *whole* schema — every mode,
//!   every distribution family, boundary floats (`5e-324`, `1e308`,
//!   `1.0 / 3.0`, `inf` latency bounds) — and always satisfies
//!   [`Scenario::validate`]. Round-trip and validation properties use it.
//! * [`arbitrary_runnable`] draws from a narrow, cheap corner (OPT-13B on
//!   a small A40 sub-cluster, modest request counts) so end-to-end
//!   properties can actually execute every case while reusing one profile.
//!
//! [`mutate_invalid`] takes a valid scenario and breaks it in one of the
//! documented ways (unknown tag, negative rate, empty GPU pool, unknown
//! key, overlapping fault windows, wrong type), returning the corrupted
//! value tree and the key path the error must name — the negative-parse
//! property closes the loop.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Serialize, Value};

use crate::schema::{
    ArrivalsConfig, ClassConfig, ClusterConfig, DriftConfig, E2eSpec, FaultEventConfig,
    FaultKindConfig, FaultsConfig, FleetConfig, LengthDistConfig, Mode, ModelSpec, PoolConfig,
    RateSpec, ReplayConfig, ReplicaConfig, Scenario, SchedulerConfig, ServeConfig, SloConfig,
    TenantArrivals, TenantConfig, TimeSpec, WorkloadConfig, MODEL_PRESETS, TASKS,
};

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// Floats that historically break naive serializers: subnormals, huge
/// magnitudes, and values with no short decimal form.
fn boundary_float(rng: &mut StdRng) -> f64 {
    *pick(rng, &[5e-324, 1e308, 1.0 / 3.0, 0.1 + 0.2, 1.5, 123.456789012345e-7, 2.0_f64.powi(53)])
}

fn small_f64(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let t: f64 = rng.gen();
    lo + t * (hi - lo)
}

fn arbitrary_dist(rng: &mut StdRng) -> LengthDistConfig {
    let max_len = rng.gen_range(64..1024_usize);
    let mean = small_f64(rng, 1.0, max_len as f64 * 0.5);
    let std = small_f64(rng, 0.5, mean);
    match rng.gen_range(0..4_u32) {
        0 => LengthDistConfig::TruncatedNormal { mean, std, max_len },
        1 => {
            LengthDistConfig::SkewNormal { mean, std, skewness: small_f64(rng, -8.0, 8.0), max_len }
        }
        2 => LengthDistConfig::LogNormal { mean, std, max_len },
        _ => LengthDistConfig::PointMass { len: rng.gen_range(1..=max_len), max_len },
    }
}

fn arbitrary_workload(rng: &mut StdRng) -> WorkloadConfig {
    if rng.gen_bool(0.6) {
        WorkloadConfig::Task {
            task: (*pick(rng, TASKS)).to_string(),
            scale_mean: rng.gen_bool(0.3).then(|| small_f64(rng, 0.5, 2.0)),
            scale_std: rng.gen_bool(0.2).then(|| small_f64(rng, 0.5, 2.0)),
        }
    } else {
        WorkloadConfig::Custom { input: arbitrary_dist(rng), output: arbitrary_dist(rng) }
    }
}

fn arbitrary_scheduler(rng: &mut StdRng) -> SchedulerConfig {
    SchedulerConfig {
        latency_bound_secs: if rng.gen_bool(0.2) {
            f64::INFINITY
        } else {
            small_f64(rng, 5.0, 120.0)
        },
        eps_latency_frac: rng.gen_bool(0.3).then(|| small_f64(rng, 0.01, 0.5)),
        eps_throughput_frac: rng.gen_bool(0.3).then(|| small_f64(rng, 0.01, 0.5)),
        policies: rng.gen_bool(0.3).then(|| match rng.gen_range(0..3_u32) {
            0 => vec!["rra".to_string()],
            1 => vec!["rra".to_string(), "waa_compute".to_string()],
            _ => vec!["rra".to_string(), "waa_compute".to_string(), "waa_memory".to_string()],
        }),
    }
}

fn arbitrary_rate(rng: &mut StdRng) -> RateSpec {
    if rng.gen_bool(0.5) {
        RateSpec::Qps { qps: small_f64(rng, 0.1, 50.0) }
    } else {
        RateSpec::CapacityFrac { frac: small_f64(rng, 0.1, 1.0), of: "base".to_string() }
    }
}

fn arbitrary_slo(rng: &mut StdRng) -> SloConfig {
    SloConfig {
        ttft_secs: rng.gen_bool(0.3).then(|| small_f64(rng, 1.0, 60.0)),
        per_token_secs: rng.gen_bool(0.3).then(|| boundary_float(rng).abs().max(1e-6)),
        e2e_secs: rng.gen_bool(0.7).then(|| small_f64(rng, 10.0, 200.0)),
    }
}

fn arbitrary_drift(rng: &mut StdRng) -> DriftConfig {
    let window = rng.gen_range(16..512_usize);
    DriftConfig {
        window,
        min_samples: rng.gen_range(1..=window),
        check_every: rng.gen_range(1..64_usize),
        rel_threshold: small_f64(rng, 0.05, 0.5),
        consecutive: rng.gen_range(1..5_usize),
    }
}

/// A well-formed fault schedule: windows opened by a fail/slowdown are
/// either left open or closed by a matching recover, never overlapped.
fn arbitrary_faults(rng: &mut StdRng, gpus: usize) -> FaultsConfig {
    let mut events = Vec::new();
    let mut t = small_f64(rng, 0.05, 0.3);
    let n = rng.gen_range(1..4_usize);
    let mut open: Vec<usize> = Vec::new();
    for _ in 0..n {
        let gpu = rng.gen_range(0..gpus);
        if let Some(at) = open.iter().position(|g| *g == gpu) {
            open.remove(at);
            events.push(FaultEventConfig {
                at: TimeSpec::HorizonFrac(t),
                kind: FaultKindConfig::GpuRecover { gpu },
            });
        } else {
            open.push(gpu);
            let kind = if rng.gen_bool(0.5) {
                FaultKindConfig::GpuFail { gpu }
            } else {
                FaultKindConfig::GpuSlowdown { gpu, factor: small_f64(rng, 1.5, 4.0) }
            };
            events.push(FaultEventConfig { at: TimeSpec::HorizonFrac(t), kind });
        }
        t += small_f64(rng, 0.05, 0.3);
    }
    // Close every remaining window during the backlog drain, in open order.
    for gpu in open {
        events.push(FaultEventConfig {
            at: TimeSpec::HorizonFrac(t),
            kind: FaultKindConfig::GpuRecover { gpu },
        });
        t += small_f64(rng, 0.05, 0.2);
    }
    FaultsConfig {
        detection_delay_secs: rng.gen_bool(0.3).then(|| small_f64(rng, 0.0, 2.0)),
        evict_slowdown: rng.gen_bool(0.3).then(|| small_f64(rng, 1.0, 4.0)),
        max_retries: rng.gen_bool(0.3).then(|| rng.gen_range(1..8_usize)),
        backoff_base_secs: rng.gen_bool(0.3).then(|| small_f64(rng, 0.0, 1.0)),
        straggler_rel_threshold: rng.gen_bool(0.3).then(|| small_f64(rng, 1.05, 2.0)),
        straggler_consecutive: rng.gen_bool(0.3).then(|| rng.gen_range(1..6_usize)),
        events,
    }
}

fn arbitrary_serve(rng: &mut StdRng, gpus: usize) -> ServeConfig {
    let arrivals = match rng.gen_range(0..3_u32) {
        0 => ArrivalsConfig::Poisson { rate: arbitrary_rate(rng) },
        1 => ArrivalsConfig::Bursty {
            rate_burst: arbitrary_rate(rng),
            rate_lull: arbitrary_rate(rng),
            dwell_burst_secs: small_f64(rng, 5.0, 60.0),
            dwell_lull_secs: small_f64(rng, 5.0, 120.0),
        },
        _ => ArrivalsConfig::PoissonWithShift {
            rate: if rng.gen_bool(0.5) {
                RateSpec::Qps { qps: small_f64(rng, 0.1, 50.0) }
            } else {
                RateSpec::CapacityFrac {
                    frac: small_f64(rng, 0.1, 1.0),
                    of: (*pick(rng, &["base", "shifted"])).to_string(),
                }
            },
            shift_after_frac: small_f64(rng, 0.0, 1.0),
            scale_mean: small_f64(rng, 0.5, 2.0),
            scale_std: rng.gen_bool(0.3).then(|| small_f64(rng, 0.5, 2.0)),
        },
    };
    ServeConfig {
        total: rng.gen_range(1..5000_usize),
        adaptive: rng.gen_bool(0.5),
        adjust_threshold: rng.gen_bool(0.3).then(|| small_f64(rng, 0.05, 0.5)),
        incremental_replan: rng.gen_bool(0.3).then(|| rng.gen_bool(0.5)),
        arrivals,
        slo: arbitrary_slo(rng),
        drift: rng.gen_bool(0.4).then(|| arbitrary_drift(rng)),
        faults: rng.gen_bool(0.4).then(|| arbitrary_faults(rng, gpus)),
    }
}

fn arbitrary_fleet(rng: &mut StdRng) -> FleetConfig {
    let n_pools = rng.gen_range(1..3_usize);
    let pools: Vec<PoolConfig> = (0..n_pools)
        .map(|i| PoolConfig {
            name: format!("pool-{i}"),
            cluster: ClusterConfig {
                preset: (*pick(rng, &["a40", "a100"])).to_string(),
                gpus: Some(*pick(rng, &[2, 4_usize])),
            },
            latency_bound_secs: rng.gen_bool(0.4).then(|| small_f64(rng, 10.0, 120.0)),
        })
        .collect();
    let n_replicas = rng.gen_range(1..4_usize);
    let mut replicas: Vec<ReplicaConfig> = (0..n_replicas)
        .map(|i| ReplicaConfig {
            name: format!("r{i}"),
            pool: pools[rng.gen_range(0..pools.len())].name.clone(),
            standby: false,
        })
        .collect();
    let standby = rng.gen_bool(0.4);
    if standby {
        replicas.push(ReplicaConfig {
            name: "standby".to_string(),
            pool: pools[0].name.clone(),
            standby: true,
        });
    }
    let classes = vec![
        ClassConfig {
            name: "interactive".to_string(),
            weight: small_f64(rng, 0.5, 2.0),
            e2e: Some(if rng.gen_bool(0.5) {
                E2eSpec::PlanLatencyMidpoint
            } else {
                E2eSpec::Secs { secs: small_f64(rng, 20.0, 200.0) }
            }),
        },
        ClassConfig { name: "batch".to_string(), weight: 0.0, e2e: None },
    ];
    let tenants: Vec<TenantConfig> = (0..rng.gen_range(1..4_u32))
        .map(|i| TenantConfig {
            tenant: i,
            class: classes[rng.gen_range(0..classes.len())].name.clone(),
            arrivals: if rng.gen_bool(0.7) {
                TenantArrivals::Poisson {
                    rate: RateSpec::PoolCapacityFrac {
                        frac: small_f64(rng, 0.05, 1.0),
                        pool: (*pick(rng, &["fastest", "slowest"])).to_string(),
                    },
                }
            } else {
                TenantArrivals::Bursty {
                    rate_burst: RateSpec::Qps { qps: small_f64(rng, 0.5, 20.0) },
                    rate_lull: RateSpec::Qps { qps: small_f64(rng, 0.1, 5.0) },
                    dwell_burst_secs: small_f64(rng, 5.0, 60.0),
                    dwell_lull_secs: small_f64(rng, 10.0, 120.0),
                }
            },
        })
        .collect();
    // At most one fail/recover pair on a non-standby replica keeps the
    // generated fleets inside the fabric's supported fault envelope.
    let mut faults = Vec::new();
    let mut scale = Vec::new();
    if n_replicas > 1 && rng.gen_bool(0.4) {
        let victim = replicas[rng.gen_range(0..n_replicas)].name.clone();
        faults.push(crate::schema::FleetFaultConfig {
            at: TimeSpec::HorizonFrac(small_f64(rng, 0.3, 0.6)),
            action: "fail".to_string(),
            replica: victim,
        });
        if standby {
            scale.push(crate::schema::ScaleConfig {
                at: TimeSpec::HorizonFrac(small_f64(rng, 0.6, 0.8)),
                action: "up".to_string(),
                replica: "standby".to_string(),
            });
        }
    }
    FleetConfig {
        total: rng.gen_range(1..5000_usize),
        policy: (*pick(rng, &["round_robin", "least_outstanding", "kv_headroom", "slo_aware"]))
            .to_string(),
        pools,
        replicas,
        classes,
        tenants,
        faults,
        scale,
    }
}

/// Draws a valid scenario from the whole schema (any mode, any model,
/// boundary floats). Always passes [`Scenario::validate`]; not guaranteed
/// cheap to *run*.
pub fn arbitrary_scenario(rng: &mut StdRng) -> Scenario {
    let mode = match rng.gen_range(0..3_u32) {
        0 => Mode::Serve(arbitrary_serve(rng, 4)),
        1 => Mode::Fleet(arbitrary_fleet(rng)),
        _ => Mode::Replay(ReplayConfig {
            num_queries: rng.gen_range(1..5000_usize),
            scale_mean: rng.gen_bool(0.4).then(|| small_f64(rng, 0.5, 2.0)),
            scale_std: rng.gen_bool(0.2).then(|| small_f64(rng, 0.5, 2.0)),
        }),
    };
    let cluster = match mode {
        Mode::Fleet(_) => None,
        _ => Some(ClusterConfig {
            preset: (*pick(rng, &["a40", "a100"])).to_string(),
            gpus: rng.gen_bool(0.8).then(|| rng.gen_range(1..16_usize)),
        }),
    };
    Scenario {
        name: format!("arb-{}", rng.gen_range(0..1_000_000_u64)),
        seed: rng.gen_range(0..1_000_000_u64),
        model: ModelSpec { preset: (*pick(rng, MODEL_PRESETS)).to_string() },
        cluster,
        workload: arbitrary_workload(rng),
        scheduler: arbitrary_scheduler(rng),
        mode,
    }
}

/// Draws a scenario from the cheap runnable corner: OPT-13B on a 4-GPU A40
/// sub-cluster (one shared profile), the translation task, bounded totals.
/// Every case can execute end-to-end in test time.
pub fn arbitrary_runnable(rng: &mut StdRng) -> Scenario {
    let mode = match rng.gen_range(0..3_u32) {
        0 => {
            let mut serve = arbitrary_serve(rng, 4);
            serve.total = rng.gen_range(40..160_usize);
            // Keep offered load inside the plan so tiny runs still drain
            // fast; capacity_frac of the plan estimate is always safe.
            serve.arrivals = ArrivalsConfig::Poisson {
                rate: RateSpec::CapacityFrac {
                    frac: small_f64(rng, 0.2, 0.8),
                    of: "base".to_string(),
                },
            };
            Mode::Serve(serve)
        }
        1 => {
            let mut fleet = arbitrary_fleet(rng);
            fleet.total = rng.gen_range(100..300_usize);
            for pool in &mut fleet.pools {
                pool.cluster = ClusterConfig { preset: "a40".to_string(), gpus: Some(4) };
                pool.latency_bound_secs = None;
            }
            // Modest per-tenant load so small fleets drain quickly.
            for t in &mut fleet.tenants {
                t.arrivals = TenantArrivals::Poisson {
                    rate: RateSpec::PoolCapacityFrac {
                        frac: small_f64(rng, 0.05, 0.4),
                        pool: "slowest".to_string(),
                    },
                };
            }
            Mode::Fleet(fleet)
        }
        _ => Mode::Replay(ReplayConfig {
            num_queries: rng.gen_range(40..160_usize),
            scale_mean: rng.gen_bool(0.4).then(|| small_f64(rng, 0.8, 1.5)),
            scale_std: None,
        }),
    };
    let cluster = match mode {
        Mode::Fleet(_) => None,
        _ => Some(ClusterConfig { preset: "a40".to_string(), gpus: Some(4) }),
    };
    Scenario {
        name: format!("runnable-{}", rng.gen_range(0..1_000_000_u64)),
        seed: rng.gen_range(0..64_u64),
        model: ModelSpec { preset: "opt-13b".to_string() },
        cluster,
        workload: WorkloadConfig::Task {
            task: "translation".to_string(),
            scale_mean: None,
            scale_std: None,
        },
        scheduler: SchedulerConfig {
            latency_bound_secs: 30.0,
            eps_latency_frac: None,
            eps_throughput_frac: None,
            policies: None,
        },
        mode,
    }
}

/// A serve scenario built for the exact-recovery property: non-adaptive
/// loop, moderate load, one failure and one slowdown that both recover
/// during the backlog drain — the plan must be restored verbatim and no
/// request lost.
pub fn arbitrary_fault_recovery(rng: &mut StdRng) -> Scenario {
    let fail_gpu = rng.gen_range(1..4_usize);
    let slow_gpu = (fail_gpu + rng.gen_range(1..3_usize)) % 4;
    let events = vec![
        FaultEventConfig {
            at: TimeSpec::HorizonFrac(small_f64(rng, 0.2, 0.3)),
            kind: FaultKindConfig::GpuFail { gpu: fail_gpu },
        },
        FaultEventConfig {
            at: TimeSpec::HorizonFrac(small_f64(rng, 0.35, 0.45)),
            kind: FaultKindConfig::GpuSlowdown { gpu: slow_gpu, factor: 3.0 },
        },
        FaultEventConfig {
            at: TimeSpec::HorizonFrac(1.2),
            kind: FaultKindConfig::GpuRecover { gpu: slow_gpu },
        },
        FaultEventConfig {
            at: TimeSpec::HorizonFrac(1.4),
            kind: FaultKindConfig::GpuRecover { gpu: fail_gpu },
        },
    ];
    Scenario {
        name: format!("recovery-{}", rng.gen_range(0..1_000_000_u64)),
        seed: rng.gen_range(0..64_u64),
        model: ModelSpec { preset: "opt-13b".to_string() },
        cluster: Some(ClusterConfig { preset: "a40".to_string(), gpus: Some(4) }),
        workload: WorkloadConfig::Task {
            task: "translation".to_string(),
            scale_mean: None,
            scale_std: None,
        },
        scheduler: SchedulerConfig {
            latency_bound_secs: 30.0,
            eps_latency_frac: None,
            eps_throughput_frac: None,
            policies: None,
        },
        mode: Mode::Serve(ServeConfig {
            total: rng.gen_range(60..160_usize),
            adaptive: false,
            adjust_threshold: None,
            incremental_replan: None,
            arrivals: ArrivalsConfig::Poisson {
                rate: RateSpec::CapacityFrac {
                    frac: small_f64(rng, 0.3, 0.6),
                    of: "base".to_string(),
                },
            },
            slo: SloConfig { ttft_secs: None, per_token_secs: None, e2e_secs: None },
            drift: None,
            faults: Some(FaultsConfig {
                detection_delay_secs: None,
                evict_slowdown: None,
                max_retries: None,
                backoff_base_secs: None,
                straggler_rel_threshold: None,
                straggler_consecutive: Some(2),
                events,
            }),
        }),
    }
}

// --- invalid mutations ---------------------------------------------------

/// Replaces the value at `path` (creating the leaf key if absent) inside
/// an object tree.
fn set_path(v: &mut Value, path: &[&str], new: Value) {
    if path.is_empty() {
        *v = new;
        return;
    }
    if let Value::Object(fields) = v {
        if let Some((_, child)) = fields.iter_mut().find(|(k, _)| k == path[0]) {
            set_path(child, &path[1..], new);
            return;
        }
        if path.len() == 1 {
            fields.push((path[0].to_string(), new));
        }
    }
}

/// Breaks a valid scenario in one schema-violating way. Returns the
/// corrupted value tree and the key path the resulting
/// [`ScenarioError`](crate::ScenarioError) must name.
pub fn mutate_invalid(rng: &mut StdRng, scenario: &Scenario) -> (Value, String) {
    let mut v = scenario.to_value();
    match rng.gen_range(0..6_u32) {
        // Wrong type: seed becomes a string.
        0 => {
            set_path(&mut v, &["seed"], Value::Str("not-a-number".to_string()));
            (v, "seed".to_string())
        }
        // Unknown enum tag on the workload.
        1 => {
            set_path(&mut v, &["workload", "kind"], Value::Str("mystery".to_string()));
            (v, "workload.kind".to_string())
        }
        // Unknown model preset (structured validate error, not a panic).
        2 => {
            set_path(&mut v, &["model", "preset"], Value::Str("warp-9".to_string()));
            (v, "model.preset".to_string())
        }
        // Unknown key injected into the scheduler table.
        3 => {
            set_path(&mut v, &["scheduler", "warp_speed"], Value::Bool(true));
            (v, "scheduler.warp_speed".to_string())
        }
        // Negative / non-positive scheduler bound.
        4 => {
            set_path(&mut v, &["scheduler", "latency_bound_secs"], Value::F64(-30.0));
            (v, "scheduler.latency_bound_secs".to_string())
        }
        // Empty GPU pool: serve/replay top-level cluster, or a fleet
        // pool's cluster.
        _ => match &scenario.mode {
            Mode::Fleet(_) => {
                // The first pool's cluster loses its GPUs.
                if let Value::Object(fields) = &mut v {
                    if let Some((_, Value::Object(ff))) =
                        fields.iter_mut().find(|(k, _)| k == "fleet")
                    {
                        if let Some((_, Value::Array(items))) =
                            ff.iter_mut().find(|(k, _)| k == "pools")
                        {
                            if let Some(first) = items.first_mut() {
                                set_path(first, &["cluster", "gpus"], Value::U64(0));
                            }
                        }
                    }
                }
                (v, "fleet.pools[0].cluster.gpus".to_string())
            }
            _ => {
                set_path(&mut v, &["cluster", "gpus"], Value::U64(0));
                (v, "cluster.gpus".to_string())
            }
        },
    }
}

/// A scenario value tree whose fault events overlap (a second fail on a
/// device with no recover in between) — must be rejected with the
/// offending event's path.
pub fn overlapping_faults_tree(scenario: &Scenario) -> Option<(Value, String)> {
    if !matches!(scenario.mode, Mode::Serve(_)) {
        return None;
    }
    let mut s = scenario.clone();
    if let Mode::Serve(serve) = &mut s.mode {
        let events = vec![
            FaultEventConfig {
                at: TimeSpec::HorizonFrac(0.2),
                kind: FaultKindConfig::GpuFail { gpu: 1 },
            },
            FaultEventConfig {
                at: TimeSpec::HorizonFrac(0.4),
                kind: FaultKindConfig::GpuSlowdown { gpu: 1, factor: 2.0 },
            },
        ];
        serve.faults = Some(FaultsConfig {
            detection_delay_secs: None,
            evict_slowdown: None,
            max_retries: None,
            backoff_base_secs: None,
            straggler_rel_threshold: None,
            straggler_consecutive: None,
            events,
        });
    }
    Some((s.to_value(), "serve.faults.events[1]".to_string()))
}
