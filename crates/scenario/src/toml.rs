//! A deterministic TOML front-end over the vendored serde [`Value`] tree.
//!
//! Scenario files are TOML for humans and JSON for machines; both sides
//! meet in the same [`Value`] tree, so the schema decoder
//! ([`crate::schema`]) is format-agnostic. The subset implemented here is
//! exactly what scenario files need — tables, arrays of tables, inline
//! tables, arrays, basic and literal strings, integers, floats (including
//! `inf`), booleans, comments — and the emitter is canonical: rendering a
//! tree and re-parsing it reproduces the tree, with floats printed in
//! Rust's shortest round-trip form so every finite `f64` survives
//! bit-exactly (the TOML side of the `float_roundtrip` contract).

use serde::Value;

use crate::error::ScenarioError;

// --- parsing -------------------------------------------------------------

/// Parses TOML text into a [`Value::Object`] tree.
///
/// # Errors
///
/// Returns [`ScenarioError::Syntax`] with the 1-based line number on
/// malformed input, duplicate keys, or conflicting table headers.
pub fn parse(text: &str) -> Result<Value, ScenarioError> {
    let mut p = Parser { c: text.chars().collect(), i: 0, line: 1 };
    let mut root: Vec<(String, Value)> = Vec::new();
    // Canonical header paths already opened (array elements carry their
    // index, so `[[t]]` elements never collide but re-opening a `[t]` —
    // or addressing an array element twice via `[t]` after `[[t]]` — does.
    // Duplicate *keys* are caught structurally by `insert_value`.
    let mut seen: Vec<String> = Vec::new();
    let mut current: Vec<String> = Vec::new();
    loop {
        p.skip_trivia();
        if p.at_end() {
            break;
        }
        if p.peek() == Some('[') {
            p.bump();
            let is_array = p.peek() == Some('[');
            if is_array {
                p.bump();
            }
            let path = p.parse_dotted_key()?;
            p.consume(']')?;
            if is_array {
                p.consume(']')?;
            }
            p.expect_line_end()?;
            let canonical = open_table(&mut root, &path, is_array).map_err(|why| p.err(why))?;
            if seen.contains(&canonical) {
                return Err(p.err(format!("table `{}` already defined", path.join("."))));
            }
            seen.push(canonical);
            current = path;
        } else {
            let key = p.parse_dotted_key()?;
            p.consume('=')?;
            p.skip_inline_ws();
            let value = p.parse_value()?;
            p.expect_line_end()?;
            insert_value(&mut root, &current, &key, value).map_err(|why| p.err(why))?;
        }
    }
    Ok(Value::Object(root))
}

/// Navigates to `path` from the document root, creating tables as needed;
/// for `[[path]]`, appends a fresh element to the array at `path`. Returns
/// the canonical path of the opened table, with array elements spelled as
/// `seg[index]` so distinct `[[t]]` elements stay distinct.
fn open_table(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    is_array: bool,
) -> Result<String, String> {
    let mut cur = root;
    let mut canonical = String::new();
    for (depth, seg) in path.iter().enumerate() {
        let last = depth + 1 == path.len();
        if !canonical.is_empty() {
            canonical.push('.');
        }
        canonical.push_str(seg);
        if !cur.iter().any(|(k, _)| k == seg) {
            let fresh = if last && is_array {
                canonical.push_str("[0]");
                Value::Array(vec![Value::Object(Vec::new())])
            } else {
                Value::Object(Vec::new())
            };
            cur.push((seg.clone(), fresh));
            cur = match descend(cur, seg) {
                Some(next) => next,
                None => return Err(format!("internal: `{seg}` vanished")),
            };
            continue;
        }
        if last && is_array {
            let slot = cur.iter_mut().find(|(k, _)| k == seg).map(|(_, v)| v);
            match slot {
                Some(Value::Array(items)) => {
                    items.push(Value::Object(Vec::new()));
                }
                _ => return Err(format!("`{seg}` is not an array of tables")),
            }
        }
        // An existing segment that is an array of tables addresses its
        // *last* element; spell the index into the canonical path.
        if let Some((_, Value::Array(items))) = cur.iter().find(|(k, _)| k == seg) {
            canonical.push_str(&format!("[{}]", items.len().saturating_sub(1)));
        }
        cur = match descend(cur, seg) {
            Some(next) => next,
            None => return Err(format!("`{seg}` is not a table")),
        };
    }
    Ok(canonical)
}

/// Steps into the table named `seg`: through an object directly, or into
/// the *last* element of an array of tables.
fn descend<'v>(cur: &'v mut [(String, Value)], seg: &str) -> Option<&'v mut Vec<(String, Value)>> {
    let v = cur.iter_mut().find(|(k, _)| k == seg).map(|(_, v)| v)?;
    match v {
        Value::Object(fields) => Some(fields),
        Value::Array(items) => match items.last_mut() {
            Some(Value::Object(fields)) => Some(fields),
            _ => None,
        },
        _ => None,
    }
}

/// Inserts `value` at `table_path` + `key_path`, creating intermediate
/// tables for dotted keys.
fn insert_value(
    root: &mut Vec<(String, Value)>,
    table_path: &[String],
    key_path: &[String],
    value: Value,
) -> Result<(), String> {
    let mut cur = root;
    for seg in table_path {
        cur = match descend(cur, seg) {
            Some(next) => next,
            None => return Err(format!("`{seg}` is not a table")),
        };
    }
    let (last, intermediate) = match key_path.split_last() {
        Some(split) => split,
        None => return Err("empty key".to_string()),
    };
    for seg in intermediate {
        if !cur.iter().any(|(k, _)| k == seg) {
            cur.push((seg.clone(), Value::Object(Vec::new())));
        }
        cur = match descend(cur, seg) {
            Some(next) => next,
            None => return Err(format!("`{seg}` is not a table")),
        };
    }
    if cur.iter().any(|(k, _)| k == last) {
        return Err(format!("key `{last}` already defined"));
    }
    cur.push((last.clone(), value));
    Ok(())
}

struct Parser {
    c: Vec<char>,
    i: usize,
    line: usize,
}

impl Parser {
    fn err(&self, why: String) -> ScenarioError {
        ScenarioError::Syntax { line: self.line, why }
    }

    fn at_end(&self) -> bool {
        self.i >= self.c.len()
    }

    fn peek(&self) -> Option<char> {
        self.c.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peek();
        if ch == Some('\n') {
            self.line += 1;
        }
        if ch.is_some() {
            self.i += 1;
        }
        ch
    }

    /// Skips spaces and tabs on the current line.
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.bump();
        }
    }

    /// Skips whitespace, newlines and `#` comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(' ' | '\t' | '\r' | '\n') => {
                    self.bump();
                }
                Some('#') => {
                    while !matches!(self.peek(), None | Some('\n')) {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn consume(&mut self, want: char) -> Result<(), ScenarioError> {
        self.skip_inline_ws();
        match self.bump() {
            Some(ch) if ch == want => Ok(()),
            Some(ch) => Err(self.err(format!("expected `{want}`, found `{ch}`"))),
            None => Err(self.err(format!("expected `{want}`, found end of input"))),
        }
    }

    /// Consumes the rest of the line, allowing only trailing whitespace
    /// and a comment.
    fn expect_line_end(&mut self) -> Result<(), ScenarioError> {
        self.skip_inline_ws();
        match self.peek() {
            None | Some('\n') => Ok(()),
            Some('\r') => Ok(()),
            Some('#') => {
                while !matches!(self.peek(), None | Some('\n')) {
                    self.bump();
                }
                Ok(())
            }
            Some(ch) => Err(self.err(format!("unexpected `{ch}` after value"))),
        }
    }

    fn parse_dotted_key(&mut self) -> Result<Vec<String>, ScenarioError> {
        let mut parts = vec![self.parse_key_part()?];
        loop {
            self.skip_inline_ws();
            if self.peek() == Some('.') {
                self.bump();
                parts.push(self.parse_key_part()?);
            } else {
                return Ok(parts);
            }
        }
    }

    fn parse_key_part(&mut self) -> Result<String, ScenarioError> {
        self.skip_inline_ws();
        match self.peek() {
            Some('"') => self.parse_basic_string(),
            Some('\'') => self.parse_literal_string(),
            Some(ch) if is_bare_key_char(ch) => {
                let mut s = String::new();
                while let Some(ch) = self.peek() {
                    if is_bare_key_char(ch) {
                        s.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(s)
            }
            Some(ch) => Err(self.err(format!("expected a key, found `{ch}`"))),
            None => Err(self.err("expected a key, found end of input".to_string())),
        }
    }

    fn parse_value(&mut self) -> Result<Value, ScenarioError> {
        self.skip_inline_ws();
        match self.peek() {
            Some('"') => self.parse_basic_string().map(Value::Str),
            Some('\'') => self.parse_literal_string().map(Value::Str),
            Some('[') => self.parse_array(),
            Some('{') => self.parse_inline_table(),
            Some(_) => self.parse_scalar_word(),
            None => Err(self.err("expected a value, found end of input".to_string())),
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, ScenarioError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape".to_string()))?;
                            code = code * 16 + d;
                        }
                        let ch = char::from_u32(code)
                            .ok_or_else(|| self.err("bad \\u escape".to_string()))?;
                        s.push(ch);
                    }
                    Some(ch) => return Err(self.err(format!("unknown escape `\\{ch}`"))),
                    None => return Err(self.err("unterminated string".to_string())),
                },
                Some('\n') | None => return Err(self.err("unterminated string".to_string())),
                Some(ch) => s.push(ch),
            }
        }
    }

    fn parse_literal_string(&mut self) -> Result<String, ScenarioError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('\'') => return Ok(s),
                Some('\n') | None => return Err(self.err("unterminated string".to_string())),
                Some(ch) => s.push(ch),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ScenarioError> {
        self.bump(); // `[`
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(']') {
                self.bump();
                return Ok(Value::Array(items));
            }
            items.push(self.parse_value()?);
            self.skip_trivia();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {}
                Some(ch) => return Err(self.err(format!("expected `,` or `]`, found `{ch}`"))),
                None => return Err(self.err("unterminated array".to_string())),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, ScenarioError> {
        self.bump(); // `{`
        let mut fields: Vec<(String, Value)> = Vec::new();
        loop {
            self.skip_inline_ws();
            if self.peek() == Some('}') {
                self.bump();
                return Ok(Value::Object(fields));
            }
            let key = self.parse_key_part()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("key `{key}` already defined")));
            }
            self.consume('=')?;
            self.skip_inline_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_inline_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some('}') => {}
                Some(ch) => return Err(self.err(format!("expected `,` or `}}`, found `{ch}`"))),
                None => return Err(self.err("unterminated inline table".to_string())),
            }
        }
    }

    /// Parses a bare scalar word: boolean, integer, or float.
    fn parse_scalar_word(&mut self) -> Result<Value, ScenarioError> {
        let mut word = String::new();
        while let Some(ch) = self.peek() {
            if ch.is_ascii_alphanumeric() || matches!(ch, '+' | '-' | '.' | '_') {
                word.push(ch);
                self.bump();
            } else {
                break;
            }
        }
        match word.as_str() {
            "" => Err(self.err("expected a value".to_string())),
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            "inf" | "+inf" => Ok(Value::F64(f64::INFINITY)),
            "-inf" => Ok(Value::F64(f64::NEG_INFINITY)),
            "nan" | "+nan" | "-nan" => Ok(Value::F64(f64::NAN)),
            _ => {
                let digits: String = word.chars().filter(|&c| c != '_').collect();
                if digits.contains(['.', 'e', 'E']) {
                    digits
                        .parse::<f64>()
                        .map(Value::F64)
                        .map_err(|_| self.err(format!("bad float `{word}`")))
                } else if let Some(rest) = digits.strip_prefix('-') {
                    rest.parse::<i64>()
                        .map(|n| Value::I64(-n))
                        .map_err(|_| self.err(format!("bad integer `{word}`")))
                } else {
                    let unsigned = digits.strip_prefix('+').unwrap_or(&digits);
                    unsigned
                        .parse::<u64>()
                        .map(Value::U64)
                        .map_err(|_| self.err(format!("bad integer `{word}`")))
                }
            }
        }
    }
}

fn is_bare_key_char(ch: char) -> bool {
    ch.is_ascii_alphanumeric() || ch == '_' || ch == '-'
}

// --- rendering -----------------------------------------------------------

/// Renders a [`Value::Object`] tree as canonical TOML.
///
/// Scalars and scalar arrays render as `key = value` lines; objects whose
/// fields are all scalars render as inline tables; other nested objects
/// become `[section]` headers and arrays of objects become `[[section]]`
/// table arrays, in insertion order.
///
/// # Errors
///
/// Returns [`ScenarioError::Parse`] if the root is not an object or an
/// array mixes objects with non-objects (no TOML rendering exists).
pub fn render(v: &Value) -> Result<String, ScenarioError> {
    let fields = match v {
        Value::Object(fields) => fields,
        other => {
            return Err(ScenarioError::Parse {
                path: String::new(),
                why: format!("TOML documents are objects, found {}", other.type_name()),
            })
        }
    };
    let mut out = String::new();
    render_table(&mut out, &mut Vec::new(), fields)?;
    Ok(out)
}

/// True for values renderable on one `key = value` line.
fn is_inline(v: &Value) -> bool {
    match v {
        Value::Null
        | Value::Bool(_)
        | Value::U64(_)
        | Value::I64(_)
        | Value::F64(_)
        | Value::Str(_) => true,
        Value::Array(items) => !items.iter().any(|i| matches!(i, Value::Object(_))),
        Value::Object(fields) => fields.iter().all(|(_, f)| {
            matches!(
                f,
                Value::Null
                    | Value::Bool(_)
                    | Value::U64(_)
                    | Value::I64(_)
                    | Value::F64(_)
                    | Value::Str(_)
            )
        }),
    }
}

fn render_table(
    out: &mut String,
    path: &mut Vec<String>,
    fields: &[(String, Value)],
) -> Result<(), ScenarioError> {
    // Inline keys first (a section header would otherwise capture them).
    for (k, v) in fields {
        if is_inline(v) {
            out.push_str(&render_key(k));
            out.push_str(" = ");
            render_inline(out, v, path, k)?;
            out.push('\n');
        }
    }
    for (k, v) in fields {
        if is_inline(v) {
            continue;
        }
        match v {
            Value::Object(inner) => {
                path.push(k.clone());
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push('[');
                out.push_str(&join_path(path));
                out.push_str("]\n");
                render_table(out, path, inner)?;
                path.pop();
            }
            Value::Array(items) => {
                path.push(k.clone());
                for item in items {
                    let inner = match item {
                        Value::Object(inner) => inner,
                        other => {
                            let p = join_path(path);
                            path.pop();
                            return Err(ScenarioError::Parse {
                                path: p,
                                why: format!(
                                    "array mixes tables with {}: no TOML rendering",
                                    other.type_name()
                                ),
                            });
                        }
                    };
                    if !out.is_empty() {
                        out.push('\n');
                    }
                    out.push_str("[[");
                    out.push_str(&join_path(path));
                    out.push_str("]]\n");
                    render_table(out, path, inner)?;
                }
                path.pop();
            }
            // `is_inline` covered every other shape.
            _ => {}
        }
    }
    Ok(())
}

fn render_inline(
    out: &mut String,
    v: &Value,
    path: &[String],
    key: &str,
) -> Result<(), ScenarioError> {
    match v {
        Value::Null => Err(ScenarioError::Parse {
            path: format!("{}{}{key}", join_path(path), if path.is_empty() { "" } else { "." }),
            why: "TOML has no null; omit the key instead".to_string(),
        }),
        Value::Bool(b) => {
            out.push_str(if *b { "true" } else { "false" });
            Ok(())
        }
        Value::U64(n) => {
            out.push_str(&n.to_string());
            Ok(())
        }
        Value::I64(n) => {
            out.push_str(&n.to_string());
            Ok(())
        }
        Value::F64(x) => {
            out.push_str(&render_float(*x));
            Ok(())
        }
        Value::Str(s) => {
            render_string(out, s);
            Ok(())
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_inline(out, item, path, key)?;
            }
            out.push(']');
            Ok(())
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, f)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push(' ');
                out.push_str(&render_key(k));
                out.push_str(" = ");
                render_inline(out, f, path, k)?;
            }
            out.push_str(" }");
            Ok(())
        }
    }
}

/// Shortest round-trip float rendering, with TOML's spellings for the
/// non-finite values.
fn render_float(x: f64) -> String {
    if x.is_nan() {
        "nan".to_string()
    } else if x == f64::INFINITY {
        "inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        // `{:?}` always includes a `.` or an exponent, so the value parses
        // back as a float and reproduces the original bits.
        format!("{x:?}")
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_key(k: &str) -> String {
    if !k.is_empty() && k.chars().all(is_bare_key_char) {
        k.to_string()
    } else {
        let mut quoted = String::new();
        render_string(&mut quoted, k);
        quoted
    }
}

fn join_path(path: &[String]) -> String {
    path.iter().map(|s| render_key(s)).collect::<Vec<_>>().join(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let text = r#"
            name = "demo"   # trailing comment
            seed = 7
            ratio = 0.5
            flags = [1, 2, 3]

            [cluster]
            preset = "a40"
            gpus = 4

            [[events]]
            t = 1.5
            kind = "gpu_fail"

            [[events]]
            t = 2.5
            kind = "gpu_recover"
        "#;
        let v = parse(text).expect("parses");
        assert_eq!(v.get("name"), Some(&Value::Str("demo".into())));
        assert_eq!(v.get("seed"), Some(&Value::U64(7)));
        assert_eq!(v.get("ratio"), Some(&Value::F64(0.5)));
        let cluster = v.get("cluster").expect("cluster");
        assert_eq!(cluster.get("gpus"), Some(&Value::U64(4)));
        match v.get("events") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].get("kind"), Some(&Value::Str("gpu_recover".into())));
            }
            other => panic!("events should be an array of tables, got {other:?}"),
        }
    }

    #[test]
    fn parses_inline_tables_and_dotted_keys() {
        let text = "rate = { kind = \"qps\", qps = 12.0 }\nserve.total = 100\n";
        let v = parse(text).expect("parses");
        let rate = v.get("rate").expect("rate");
        assert_eq!(rate.get("kind"), Some(&Value::Str("qps".into())));
        assert_eq!(rate.get("qps"), Some(&Value::F64(12.0)));
        let serve = v.get("serve").expect("serve");
        assert_eq!(serve.get("total"), Some(&Value::U64(100)));
    }

    #[test]
    fn rejects_duplicates_and_reports_lines() {
        let dup = parse("a = 1\na = 2\n");
        match dup {
            Err(ScenarioError::Syntax { line, why }) => {
                assert_eq!(line, 2);
                assert!(why.contains("already defined"), "{why}");
            }
            other => panic!("expected duplicate-key error, got {other:?}"),
        }
        assert!(parse("[t]\nx = 1\n[t]\n").is_err(), "duplicate table");
        assert!(parse("x = @\n").is_err(), "bad value");
        assert!(parse("x = \"unterminated\n").is_err(), "unterminated string");
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let v = parse("a = -3\nb = 1e3\nc = -0.5\nd = inf\n").expect("parses");
        assert_eq!(v.get("a"), Some(&Value::I64(-3)));
        assert_eq!(v.get("b"), Some(&Value::F64(1000.0)));
        assert_eq!(v.get("c"), Some(&Value::F64(-0.5)));
        assert_eq!(v.get("d"), Some(&Value::F64(f64::INFINITY)));
    }

    #[test]
    fn render_then_parse_is_identity() {
        let tree = obj(vec![
            ("name", Value::Str("x \"y\"\n".into())),
            ("seed", Value::U64(7)),
            ("neg", Value::I64(-4)),
            ("bound", Value::F64(f64::INFINITY)),
            ("tiny", Value::F64(5e-324)),
            ("third", Value::F64(1.0 / 3.0)),
            ("list", Value::Array(vec![Value::U64(1), Value::U64(2)])),
            ("rate", obj(vec![("kind", Value::Str("qps".into())), ("qps", Value::F64(12.5))])),
            (
                "serve",
                obj(vec![
                    ("total", Value::U64(100)),
                    ("drift", obj(vec![("window", Value::U64(64))])),
                ]),
            ),
            (
                "events",
                Value::Array(vec![
                    obj(vec![("t", Value::F64(1.5))]),
                    obj(vec![("t", Value::F64(2.5))]),
                ]),
            ),
        ]);
        let text = render(&tree).expect("renders");
        let back = parse(&text).expect("reparses");
        assert_eq!(back, tree, "canonical text:\n{text}");
    }

    #[test]
    fn mixed_object_scalar_arrays_have_no_rendering() {
        let tree =
            obj(vec![("bad", Value::Array(vec![Value::U64(1), obj(vec![("x", Value::U64(2))])]))]);
        assert!(render(&tree).is_err());
    }
}
