//! Structured scenario errors: every parse or validation failure names the
//! offending key path (`serve.arrivals.rate.qps`), never a bare message.

use std::fmt;

/// Error raised while parsing, validating, lowering or running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The raw text is not well-formed TOML/JSON.
    Syntax {
        /// 1-based line of the first offending character (0 for JSON,
        /// whose parser reports byte offsets in `why`).
        line: usize,
        /// What went wrong.
        why: String,
    },
    /// The value tree does not match the schema (wrong type, missing or
    /// unknown key, unknown enum tag).
    Parse {
        /// Dotted key path of the offending value, e.g.
        /// `serve.arrivals.kind`; empty for the document root.
        path: String,
        /// What went wrong, including the expected shape.
        why: String,
    },
    /// The tree matches the schema but the values are semantically invalid
    /// (negative rate, empty GPU pool, overlapping fault windows, …).
    Validate {
        /// Dotted key path of the offending value.
        path: String,
        /// The violated rule.
        why: String,
    },
    /// Lowering onto the engine stack failed (profiling, scheduling, or a
    /// downstream constructor rejected the scenario).
    Lower {
        /// Which lowering step failed.
        what: &'static str,
        /// The downstream error, rendered.
        why: String,
    },
    /// Running the lowered scenario failed.
    Run {
        /// Which run step failed.
        what: &'static str,
        /// The downstream error, rendered.
        why: String,
    },
    /// A scenario file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The OS error, rendered.
        why: String,
    },
}

impl ScenarioError {
    /// The dotted key path of a [`Parse`](Self::Parse) or
    /// [`Validate`](Self::Validate) error, if this is one.
    pub fn key_path(&self) -> Option<&str> {
        match self {
            ScenarioError::Parse { path, .. } | ScenarioError::Validate { path, .. } => {
                Some(path.as_str())
            }
            _ => None,
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Syntax { line, why } if *line > 0 => {
                write!(f, "syntax error at line {line}: {why}")
            }
            ScenarioError::Syntax { why, .. } => write!(f, "syntax error: {why}"),
            ScenarioError::Parse { path, why } if path.is_empty() => {
                write!(f, "parse error at document root: {why}")
            }
            ScenarioError::Parse { path, why } => write!(f, "parse error at `{path}`: {why}"),
            ScenarioError::Validate { path, why } => {
                write!(f, "invalid scenario at `{path}`: {why}")
            }
            ScenarioError::Lower { what, why } => write!(f, "lowering {what} failed: {why}"),
            ScenarioError::Run { what, why } => write!(f, "running {what} failed: {why}"),
            ScenarioError::Io { path, why } => write!(f, "i/o error on {path}: {why}"),
        }
    }
}

impl std::error::Error for ScenarioError {}
