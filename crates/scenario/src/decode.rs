//! Path-tracked decoding from the serde [`Value`] tree.
//!
//! The vendored serde derive ignores unknown fields and reports errors
//! without location, which is the opposite of what a config front-end
//! needs. Scenario types therefore decode by hand through [`Obj`]: every
//! getter records the dotted key path it descended through, unknown keys
//! are rejected by [`Obj::finish`], and every error names the offending
//! path (`serve.arrivals.rate.qps`) so a misspelled key in a 60-line TOML
//! file is a one-line diagnosis.

use serde::Value;

use crate::error::ScenarioError;

/// Builds a [`ScenarioError::Parse`] at `path`.
pub fn parse_err(path: &str, why: impl Into<String>) -> ScenarioError {
    ScenarioError::Parse { path: path.to_string(), why: why.into() }
}

/// Builds a [`ScenarioError::Validate`] at `path`.
pub fn validate_err(path: &str, why: impl Into<String>) -> ScenarioError {
    ScenarioError::Validate { path: path.to_string(), why: why.into() }
}

/// The standard "expected X, found Y" parse error.
pub fn expected(path: &str, what: &str, found: &Value) -> ScenarioError {
    parse_err(path, format!("expected {what}, found {}", found.type_name()))
}

/// Joins a parent path and a key into `parent.key` (or `key` at the root).
pub fn join(parent: &str, key: &str) -> String {
    if parent.is_empty() {
        key.to_string()
    } else {
        format!("{parent}.{key}")
    }
}

/// Joins a parent path and an index into `parent[i]`.
pub fn join_index(parent: &str, index: usize) -> String {
    format!("{parent}[{index}]")
}

/// A view over one object in the tree that tracks which keys the schema
/// claimed, so [`finish`](Obj::finish) can reject the rest by name.
pub struct Obj<'v> {
    path: String,
    fields: &'v [(String, Value)],
    claimed: Vec<bool>,
}

impl<'v> Obj<'v> {
    /// Wraps `v`, which must be an object, rooted at `path`.
    ///
    /// # Errors
    ///
    /// Returns a parse error at `path` if `v` is not an object.
    pub fn new(v: &'v Value, path: &str) -> Result<Self, ScenarioError> {
        match v {
            Value::Object(fields) => {
                Ok(Obj { path: path.to_string(), fields, claimed: vec![false; fields.len()] })
            }
            other => Err(expected(path, "a table", other)),
        }
    }

    /// The dotted path of this object.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The dotted path of the field `key` under this object.
    pub fn child_path(&self, key: &str) -> String {
        join(&self.path, key)
    }

    fn claim(&mut self, key: &str) -> Option<&'v Value> {
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if k == key {
                self.claimed[i] = true;
                // `Null` marks an explicitly-absent optional (JSON input);
                // treat it the same as a missing key.
                if matches!(v, Value::Null) {
                    return None;
                }
                return Some(v);
            }
        }
        None
    }

    /// The raw value of required field `key`.
    ///
    /// # Errors
    ///
    /// Returns a parse error naming `key` when the field is missing.
    pub fn req(&mut self, key: &str) -> Result<&'v Value, ScenarioError> {
        let path = self.child_path(key);
        self.claim(key).ok_or_else(|| parse_err(&path, "missing required key"))
    }

    /// The raw value of optional field `key`.
    pub fn opt(&mut self, key: &str) -> Option<&'v Value> {
        self.claim(key)
    }

    /// Required string field.
    ///
    /// # Errors
    ///
    /// Returns a parse error when missing or not a string.
    pub fn req_str(&mut self, key: &str) -> Result<String, ScenarioError> {
        let path = self.child_path(key);
        as_str(self.req(key)?, &path)
    }

    /// Optional string field.
    ///
    /// # Errors
    ///
    /// Returns a parse error when present but not a string.
    pub fn opt_str(&mut self, key: &str) -> Result<Option<String>, ScenarioError> {
        let path = self.child_path(key);
        self.opt(key).map(|v| as_str(v, &path)).transpose()
    }

    /// Required float field (integers widen).
    ///
    /// # Errors
    ///
    /// Returns a parse error when missing or not a number.
    pub fn req_f64(&mut self, key: &str) -> Result<f64, ScenarioError> {
        let path = self.child_path(key);
        as_f64(self.req(key)?, &path)
    }

    /// Optional float field (integers widen).
    ///
    /// # Errors
    ///
    /// Returns a parse error when present but not a number.
    pub fn opt_f64(&mut self, key: &str) -> Result<Option<f64>, ScenarioError> {
        let path = self.child_path(key);
        self.opt(key).map(|v| as_f64(v, &path)).transpose()
    }

    /// Required non-negative integer field.
    ///
    /// # Errors
    ///
    /// Returns a parse error when missing, not an integer, or negative.
    pub fn req_u64(&mut self, key: &str) -> Result<u64, ScenarioError> {
        let path = self.child_path(key);
        as_u64(self.req(key)?, &path)
    }

    /// Optional non-negative integer field.
    ///
    /// # Errors
    ///
    /// Returns a parse error when present but not a non-negative integer.
    pub fn opt_u64(&mut self, key: &str) -> Result<Option<u64>, ScenarioError> {
        let path = self.child_path(key);
        self.opt(key).map(|v| as_u64(v, &path)).transpose()
    }

    /// Required `usize` field.
    ///
    /// # Errors
    ///
    /// Returns a parse error when missing or out of range.
    pub fn req_usize(&mut self, key: &str) -> Result<usize, ScenarioError> {
        let path = self.child_path(key);
        let n = self.req_u64(key)?;
        usize::try_from(n).map_err(|_| parse_err(&path, format!("{n} is out of range")))
    }

    /// Optional `usize` field.
    ///
    /// # Errors
    ///
    /// Returns a parse error when present but not a `usize`.
    pub fn opt_usize(&mut self, key: &str) -> Result<Option<usize>, ScenarioError> {
        let path = self.child_path(key);
        match self.opt_u64(key)? {
            Some(n) => usize::try_from(n)
                .map(Some)
                .map_err(|_| parse_err(&path, format!("{n} is out of range"))),
            None => Ok(None),
        }
    }

    /// Required `u32` field.
    ///
    /// # Errors
    ///
    /// Returns a parse error when missing or out of range.
    pub fn req_u32(&mut self, key: &str) -> Result<u32, ScenarioError> {
        let path = self.child_path(key);
        let n = self.req_u64(key)?;
        u32::try_from(n).map_err(|_| parse_err(&path, format!("{n} is out of range")))
    }

    /// Required bool field.
    ///
    /// # Errors
    ///
    /// Returns a parse error when missing or not a bool.
    pub fn req_bool(&mut self, key: &str) -> Result<bool, ScenarioError> {
        let path = self.child_path(key);
        as_bool(self.req(key)?, &path)
    }

    /// Optional bool field.
    ///
    /// # Errors
    ///
    /// Returns a parse error when present but not a bool.
    pub fn opt_bool(&mut self, key: &str) -> Result<Option<bool>, ScenarioError> {
        let path = self.child_path(key);
        self.opt(key).map(|v| as_bool(v, &path)).transpose()
    }

    /// Required array field, as `(element, element_path)` pairs.
    ///
    /// # Errors
    ///
    /// Returns a parse error when missing or not an array.
    pub fn req_array(&mut self, key: &str) -> Result<Vec<(&'v Value, String)>, ScenarioError> {
        let path = self.child_path(key);
        as_array(self.req(key)?, &path)
    }

    /// Optional array field, as `(element, element_path)` pairs.
    ///
    /// # Errors
    ///
    /// Returns a parse error when present but not an array.
    pub fn opt_array(
        &mut self,
        key: &str,
    ) -> Result<Option<Vec<(&'v Value, String)>>, ScenarioError> {
        let path = self.child_path(key);
        self.opt(key).map(|v| as_array(v, &path)).transpose()
    }

    /// The enum discriminant: required string field `kind`, checked
    /// against `allowed`.
    ///
    /// # Errors
    ///
    /// Returns a parse error at `<path>.kind` when missing or not one of
    /// `allowed` (the message lists the valid tags).
    pub fn tag(&mut self, allowed: &[&str]) -> Result<String, ScenarioError> {
        let path = self.child_path("kind");
        let tag = self.req_str("kind")?;
        if allowed.contains(&tag.as_str()) {
            Ok(tag)
        } else {
            Err(parse_err(
                &path,
                format!("unknown kind `{tag}`; expected one of {}", allowed.join(", ")),
            ))
        }
    }

    /// Rejects any key the schema did not claim.
    ///
    /// # Errors
    ///
    /// Returns a parse error naming the first unknown key's full path.
    pub fn finish(self) -> Result<(), ScenarioError> {
        for (i, (k, _)) in self.fields.iter().enumerate() {
            if !self.claimed[i] {
                let path = join(&self.path, k);
                return Err(parse_err(&path, "unknown key"));
            }
        }
        Ok(())
    }
}

fn as_str(v: &Value, path: &str) -> Result<String, ScenarioError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(expected(path, "a string", other)),
    }
}

fn as_bool(v: &Value, path: &str) -> Result<bool, ScenarioError> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(expected(path, "a boolean", other)),
    }
}

/// Numbers widen to `f64`; JSON `null` decodes to NaN so non-finite floats
/// round-trip (validation then rejects NaN where it is meaningless).
fn as_f64(v: &Value, path: &str) -> Result<f64, ScenarioError> {
    match v {
        Value::F64(x) => Ok(*x),
        Value::U64(n) => Ok(*n as f64),
        Value::I64(n) => Ok(*n as f64),
        // JSON has no literal for non-finite floats; they travel as the
        // TOML spellings instead.
        Value::Str(s) if s == "inf" || s == "+inf" => Ok(f64::INFINITY),
        Value::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
        Value::Str(s) if s == "nan" => Ok(f64::NAN),
        other => Err(expected(path, "a number", other)),
    }
}

fn as_u64(v: &Value, path: &str) -> Result<u64, ScenarioError> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) => u64::try_from(*n)
            .map_err(|_| parse_err(path, format!("expected a non-negative integer, found {n}"))),
        other => Err(expected(path, "an integer", other)),
    }
}

/// Decodes an array value into `(element, element_path)` pairs.
///
/// # Errors
///
/// Returns a parse error at `path` when `v` is not an array.
pub fn as_array<'v>(v: &'v Value, path: &str) -> Result<Vec<(&'v Value, String)>, ScenarioError> {
    match v {
        Value::Array(items) => {
            Ok(items.iter().enumerate().map(|(i, item)| (item, join_index(path, i))).collect())
        }
        other => Err(expected(path, "an array", other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str("x".to_string())),
            ("seed".to_string(), Value::U64(7)),
            ("rate".to_string(), Value::F64(1.5)),
            ("on".to_string(), Value::Bool(true)),
            ("items".to_string(), Value::Array(vec![Value::U64(1), Value::U64(2)])),
        ])
    }

    #[test]
    fn getters_and_finish_accept_a_fully_claimed_object() {
        let v = tree();
        let mut o = Obj::new(&v, "root").expect("object");
        assert_eq!(o.req_str("name").expect("name"), "x");
        assert_eq!(o.req_u64("seed").expect("seed"), 7);
        assert!((o.req_f64("rate").expect("rate") - 1.5).abs() < 1e-12);
        assert!(o.req_bool("on").expect("on"));
        let items = o.req_array("items").expect("items");
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].1, "root.items[1]");
        o.finish().expect("all keys claimed");
    }

    #[test]
    fn unknown_keys_are_named_with_their_full_path() {
        let v = tree();
        let mut o = Obj::new(&v, "serve").expect("object");
        let _ = o.req_str("name");
        let err = o.finish().expect_err("unclaimed keys");
        assert_eq!(err.key_path(), Some("serve.seed"));
    }

    #[test]
    fn missing_and_mistyped_keys_are_named() {
        let v = tree();
        let mut o = Obj::new(&v, "").expect("object");
        let missing = o.req_f64("qps").expect_err("missing");
        assert_eq!(missing.key_path(), Some("qps"));
        let mistyped = o.req_u64("name").expect_err("mistyped");
        assert_eq!(mistyped.key_path(), Some("name"));
        let negative = Obj::new(&Value::Object(vec![("n".to_string(), Value::I64(-2))]), "w")
            .and_then(|mut o| o.req_u64("n"))
            .expect_err("negative");
        assert_eq!(negative.key_path(), Some("w.n"));
    }

    #[test]
    fn tag_lists_the_allowed_kinds() {
        let v = Value::Object(vec![("kind".to_string(), Value::Str("pois".to_string()))]);
        let mut o = Obj::new(&v, "serve.arrivals").expect("object");
        let err = o.tag(&["poisson", "bursty"]).expect_err("unknown tag");
        assert_eq!(err.key_path(), Some("serve.arrivals.kind"));
        match err {
            ScenarioError::Parse { why, .. } => {
                assert!(why.contains("poisson, bursty"), "{why}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
