//! CI smoke gate for the shipped scenario configs.
//!
//! ```text
//! scenario-smoke [scenarios-dir] [--write-goldens]
//! ```
//!
//! Runs every `*.toml` under the scenarios directory (default
//! `scenarios/`, next to the workspace root) in file-name order and
//! compares each run's FNV-1a event-log digest against the committed
//! goldens in `GOLDENS.toml`. Any drift — a scenario whose digest moved, a
//! new config with no golden, a golden whose config vanished — fails the
//! gate. `--write-goldens` regenerates the golden file instead (for
//! intentional behavior changes; the diff then documents the move).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use exegpt_scenario::{format_digest, run, toml, Scenario};
use serde::Value;

/// Loads `GOLDENS.toml` as (file name, digest hex) pairs, in file order.
fn load_goldens(path: &Path) -> Result<Vec<(String, String)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let value = toml::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
    let Value::Object(fields) = value else {
        return Err(format!("{}: expected a table of file = digest", path.display()));
    };
    fields
        .into_iter()
        .map(|(k, v)| match v {
            Value::Str(s) => Ok((k, s)),
            other => Err(format!(
                "{}: golden `{k}` must be a digest string, found {}",
                path.display(),
                other.type_name()
            )),
        })
        .collect()
}

fn render_goldens(goldens: &[(String, String)]) -> String {
    let mut out = String::from(
        "# FNV-1a event-log digests of the shipped scenarios, locked by CI.\n\
         # Regenerate with: cargo run --release --bin scenario-smoke -- scenarios --write-goldens\n",
    );
    for (name, digest) in goldens {
        out.push_str(&format!("\"{name}\" = \"{digest}\"\n"));
    }
    out
}

fn main() -> ExitCode {
    let mut dir = PathBuf::from("scenarios");
    let mut write = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--write-goldens" => write = true,
            other if other.starts_with('-') => {
                eprintln!("usage: scenario-smoke [scenarios-dir] [--write-goldens]");
                return ExitCode::FAILURE;
            }
            other => dir = PathBuf::from(other),
        }
    }

    let mut files: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "toml"))
            .filter(|p| p.file_name().is_some_and(|n| n != "GOLDENS.toml"))
            .collect(),
        Err(e) => {
            eprintln!("scenario-smoke: reading {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("scenario-smoke: no *.toml scenarios under {}", dir.display());
        return ExitCode::FAILURE;
    }

    let mut fresh: Vec<(String, String)> = Vec::new();
    for path in &files {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let scenario = match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("scenario-smoke: {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let outcome = match run(&scenario) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("scenario-smoke: {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", outcome.summary);
        fresh.push((name, format_digest(outcome.digest)));
    }

    let goldens_path = dir.join("GOLDENS.toml");
    if write {
        if let Err(e) = std::fs::write(&goldens_path, render_goldens(&fresh)) {
            eprintln!("scenario-smoke: writing {}: {e}", goldens_path.display());
            return ExitCode::FAILURE;
        }
        println!("goldens written to {}", goldens_path.display());
        return ExitCode::SUCCESS;
    }

    let committed = match load_goldens(&goldens_path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("scenario-smoke: {e}");
            eprintln!("hint: bootstrap with scenario-smoke {} --write-goldens", dir.display());
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    for (name, digest) in &fresh {
        match committed.iter().find(|(n, _)| n == name) {
            Some((_, want)) if want == digest => {}
            Some((_, want)) => {
                eprintln!("scenario-smoke: {name}: digest {digest} != golden {want}");
                failed = true;
            }
            None => {
                eprintln!("scenario-smoke: {name}: no committed golden");
                failed = true;
            }
        }
    }
    for (name, _) in &committed {
        if !fresh.iter().any(|(n, _)| n == name) {
            eprintln!("scenario-smoke: golden `{name}` has no scenario file");
            failed = true;
        }
    }

    if failed {
        eprintln!("scenario-smoke FAILED");
        return ExitCode::FAILURE;
    }
    println!("scenario-smoke OK ({} scenarios)", fresh.len());
    ExitCode::SUCCESS
}
