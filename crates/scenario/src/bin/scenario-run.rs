//! Runs a declarative scenario file deterministically.
//!
//! ```text
//! scenario-run <scenario.{toml,json}> [--log <out.jsonl>] [--digest-only]
//! ```
//!
//! Loads, validates, lowers, and executes the scenario, then prints the
//! deterministic summary and the FNV-1a digest of the run's event log.
//! `--log` archives the event log (JSONL for serve/fleet runs);
//! `--digest-only` prints just `<digest>  <file>` for golden comparisons.
//! Exits non-zero with a structured error — including the offending key
//! path for config mistakes — instead of panicking.

use std::path::PathBuf;
use std::process::ExitCode;

use exegpt_scenario::{format_digest, run, Scenario};

struct Args {
    scenario: PathBuf,
    log: Option<PathBuf>,
    digest_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut scenario = None;
    let mut log = None;
    let mut digest_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--log" => {
                log = Some(PathBuf::from(args.next().ok_or("--log needs a path".to_string())?));
            }
            "--digest-only" => digest_only = true,
            "--help" | "-h" => {
                return Err("usage: scenario-run <scenario.{toml,json}> \
                            [--log <out.jsonl>] [--digest-only]"
                    .to_string())
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => {
                if scenario.replace(PathBuf::from(other)).is_some() {
                    return Err("exactly one scenario file expected".to_string());
                }
            }
        }
    }
    let scenario = scenario.ok_or(
        "usage: scenario-run <scenario.{toml,json}> \
                                   [--log <out.jsonl>] [--digest-only]",
    )?;
    Ok(Args { scenario, log, digest_only })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let scenario = match Scenario::load(&args.scenario) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scenario-run: {}: {e}", args.scenario.display());
            return ExitCode::FAILURE;
        }
    };

    let outcome = match run(&scenario) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("scenario-run: {}: {e}", args.scenario.display());
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.log {
        if let Err(e) = std::fs::write(path, &outcome.log) {
            eprintln!("scenario-run: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if args.digest_only {
        println!("{}  {}", format_digest(outcome.digest), args.scenario.display());
    } else {
        print!("{}", outcome.summary);
    }
    ExitCode::SUCCESS
}
