//! The declarative scenario schema.
//!
//! A [`Scenario`] is a complete, self-contained description of a run:
//! model, cluster (or per-pool clusters for a fleet), workload
//! distributions, scheduler constraints, arrival process, SLO targets,
//! fault schedule, and the seed. The tree decodes from TOML or JSON
//! through the path-tracked [`crate::decode`] helpers — every error names
//! the offending key — and [`Scenario::validate`] enforces the semantic
//! rules (positive rates, non-empty GPU pools, non-overlapping fault
//! windows, resolvable cross-references) before lowering is attempted.
//!
//! Serialization ([`Serialize::to_value`]) is canonical: every concrete
//! field is emitted, optional fields only when present, so
//! `decode(to_value(s)) == s` exactly — the identity the round-trip
//! property suite pins for both TOML and JSON.

use serde::{Serialize, Value};

use crate::decode::{join, parse_err, validate_err, Obj};
use crate::error::ScenarioError;

/// Known model presets, in `ModelConfig` constructor order.
pub const MODEL_PRESETS: &[&str] =
    &["t5-11b", "ul2-20b", "opt-13b", "gpt3-39b", "gpt3-101b", "gpt3-175b", "gpt3-341b"];

/// Known cluster presets.
pub const CLUSTER_PRESETS: &[&str] = &["a40", "a100"];

/// Known workload tasks (Table 3 of the paper).
pub const TASKS: &[&str] = &[
    "summarization",
    "translation",
    "code_generation",
    "conversational_qa1",
    "conversational_qa2",
];

/// Known scheduler policies.
pub const POLICIES: &[&str] = &["rra", "waa_compute", "waa_memory"];

/// Known fleet dispatch policies.
pub const DISPATCH_POLICIES: &[&str] =
    &["round_robin", "least_outstanding", "kv_headroom", "slo_aware"];

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn push_opt(fields: &mut Vec<(&str, Value)>, key: &'static str, v: Option<Value>) {
    if let Some(v) = v {
        fields.push((key, v));
    }
}

fn require_finite(x: f64, path: &str, what: &str) -> Result<(), ScenarioError> {
    if x.is_finite() {
        Ok(())
    } else {
        Err(validate_err(path, format!("{what} must be finite, got {x}")))
    }
}

fn require_pos(x: f64, path: &str, what: &str) -> Result<(), ScenarioError> {
    require_finite(x, path, what)?;
    if x > 0.0 {
        Ok(())
    } else {
        Err(validate_err(path, format!("{what} must be positive, got {x}")))
    }
}

// --- scenario root -------------------------------------------------------

/// A complete declarative run description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (reports, logs).
    pub name: String,
    /// Seed for every stochastic choice in the run.
    pub seed: u64,
    /// The model.
    pub model: ModelSpec,
    /// The cluster (required for serve/replay; fleets declare per-pool
    /// clusters instead).
    pub cluster: Option<ClusterConfig>,
    /// Input/output length distributions.
    pub workload: WorkloadConfig,
    /// Scheduler constraints and tolerances.
    pub scheduler: SchedulerConfig,
    /// What to run: exactly one of serve, fleet, or replay.
    pub mode: Mode,
}

/// The execution mode, written as exactly one top-level `[serve]`,
/// `[fleet]` or `[replay]` section.
#[derive(Debug, Clone, PartialEq)]
pub enum Mode {
    /// A single-replica online serving run.
    Serve(ServeConfig),
    /// A multi-replica fleet run.
    Fleet(FleetConfig),
    /// An offline replay through the runner.
    Replay(ReplayConfig),
}

impl Serialize for Scenario {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name", Value::Str(self.name.clone())),
            ("seed", Value::U64(self.seed)),
            ("model", self.model.to_value()),
        ];
        push_opt(&mut fields, "cluster", self.cluster.as_ref().map(Serialize::to_value));
        fields.push(("workload", self.workload.to_value()));
        fields.push(("scheduler", self.scheduler.to_value()));
        match &self.mode {
            Mode::Serve(c) => fields.push(("serve", c.to_value())),
            Mode::Fleet(c) => fields.push(("fleet", c.to_value())),
            Mode::Replay(c) => fields.push(("replay", c.to_value())),
        }
        obj(fields)
    }
}

impl Scenario {
    /// Decodes a scenario from a parsed value tree.
    ///
    /// # Errors
    ///
    /// Returns a parse error naming the offending key path.
    pub fn decode(v: &Value) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, "")?;
        let name = o.req_str("name")?;
        let seed = o.opt_u64("seed")?.unwrap_or(0);
        let model = ModelSpec::decode(o.req("model")?, &o.child_path("model"))?;
        let cluster = o.opt("cluster").map(|v| ClusterConfig::decode(v, "cluster")).transpose()?;
        let workload = WorkloadConfig::decode(o.req("workload")?, &o.child_path("workload"))?;
        let scheduler = SchedulerConfig::decode(o.req("scheduler")?, &o.child_path("scheduler"))?;
        let serve = o.opt("serve").map(|v| ServeConfig::decode(v, "serve")).transpose()?;
        let fleet = o.opt("fleet").map(|v| FleetConfig::decode(v, "fleet")).transpose()?;
        let replay = o.opt("replay").map(|v| ReplayConfig::decode(v, "replay")).transpose()?;
        o.finish()?;
        let mode = match (serve, fleet, replay) {
            (Some(c), None, None) => Mode::Serve(c),
            (None, Some(c), None) => Mode::Fleet(c),
            (None, None, Some(c)) => Mode::Replay(c),
            (None, None, None) => {
                return Err(parse_err("", "one of [serve], [fleet] or [replay] is required"))
            }
            _ => return Err(parse_err("", "[serve], [fleet] and [replay] are mutually exclusive")),
        };
        Ok(Scenario { name, seed, model, cluster, workload, scheduler, mode })
    }

    /// Checks every semantic rule the schema cannot express.
    ///
    /// # Errors
    ///
    /// Returns a validation error naming the offending key path.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(validate_err("name", "must not be empty"));
        }
        self.model.validate("model")?;
        if let Some(c) = &self.cluster {
            c.validate("cluster")?;
        }
        self.workload.validate("workload")?;
        self.scheduler.validate("scheduler")?;
        match &self.mode {
            Mode::Serve(c) => {
                if self.cluster.is_none() {
                    return Err(validate_err("cluster", "serve mode requires a cluster"));
                }
                c.validate("serve")
            }
            Mode::Fleet(c) => {
                if self.cluster.is_some() {
                    return Err(validate_err(
                        "cluster",
                        "fleet mode declares clusters per pool; remove the top-level cluster",
                    ));
                }
                c.validate("fleet")
            }
            Mode::Replay(c) => {
                if self.cluster.is_none() {
                    return Err(validate_err("cluster", "replay mode requires a cluster"));
                }
                c.validate("replay")
            }
        }
    }
}

// --- model / cluster -----------------------------------------------------

/// The model to deploy.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// One of [`MODEL_PRESETS`].
    pub preset: String,
}

impl Serialize for ModelSpec {
    fn to_value(&self) -> Value {
        obj(vec![("preset", Value::Str(self.preset.clone()))])
    }
}

impl ModelSpec {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let preset = o.req_str("preset")?;
        o.finish()?;
        Ok(ModelSpec { preset })
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        if MODEL_PRESETS.contains(&self.preset.as_str()) {
            Ok(())
        } else {
            Err(validate_err(
                &join(path, "preset"),
                format!(
                    "unknown model preset `{}`; expected one of {}",
                    self.preset,
                    MODEL_PRESETS.join(", ")
                ),
            ))
        }
    }
}

/// A GPU pool: a preset cluster, optionally narrowed to its first `gpus`
/// devices.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// One of [`CLUSTER_PRESETS`] (`a40` = 6×8 A40, `a100` = 2×8 A100).
    pub preset: String,
    /// Take the first `gpus` devices (omit for the full cluster).
    pub gpus: Option<usize>,
}

impl Serialize for ClusterConfig {
    fn to_value(&self) -> Value {
        let mut fields = vec![("preset", Value::Str(self.preset.clone()))];
        push_opt(&mut fields, "gpus", self.gpus.map(|n| Value::U64(n as u64)));
        obj(fields)
    }
}

impl ClusterConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let preset = o.req_str("preset")?;
        let gpus = o.opt_usize("gpus")?;
        o.finish()?;
        Ok(ClusterConfig { preset, gpus })
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        if !CLUSTER_PRESETS.contains(&self.preset.as_str()) {
            return Err(validate_err(
                &join(path, "preset"),
                format!(
                    "unknown cluster preset `{}`; expected one of {}",
                    self.preset,
                    CLUSTER_PRESETS.join(", ")
                ),
            ));
        }
        if self.gpus == Some(0) {
            return Err(validate_err(&join(path, "gpus"), "empty GPU pool: need at least 1"));
        }
        Ok(())
    }
}

// --- workload ------------------------------------------------------------

/// Input/output length distributions: a named paper task (optionally
/// rescaled) or fully custom distributions.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadConfig {
    /// A Table 3 task, with optional output-mean/std rescaling (drift
    /// studies).
    Task {
        /// One of [`TASKS`].
        task: String,
        /// Scale the output mean by this factor.
        scale_mean: Option<f64>,
        /// Scale the output std by this factor.
        scale_std: Option<f64>,
    },
    /// Explicit distributions for both sides.
    Custom {
        /// Input (prompt) length distribution.
        input: LengthDistConfig,
        /// Output (generation) length distribution.
        output: LengthDistConfig,
    },
}

impl Serialize for WorkloadConfig {
    fn to_value(&self) -> Value {
        match self {
            WorkloadConfig::Task { task, scale_mean, scale_std } => {
                let mut fields = vec![
                    ("kind", Value::Str("task".to_string())),
                    ("task", Value::Str(task.clone())),
                ];
                push_opt(&mut fields, "scale_mean", scale_mean.map(Value::F64));
                push_opt(&mut fields, "scale_std", scale_std.map(Value::F64));
                obj(fields)
            }
            WorkloadConfig::Custom { input, output } => obj(vec![
                ("kind", Value::Str("custom".to_string())),
                ("input", input.to_value()),
                ("output", output.to_value()),
            ]),
        }
    }
}

impl WorkloadConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let out = match o.tag(&["task", "custom"])?.as_str() {
            "task" => WorkloadConfig::Task {
                task: o.req_str("task")?,
                scale_mean: o.opt_f64("scale_mean")?,
                scale_std: o.opt_f64("scale_std")?,
            },
            _ => WorkloadConfig::Custom {
                input: LengthDistConfig::decode(o.req("input")?, &o.child_path("input"))?,
                output: LengthDistConfig::decode(o.req("output")?, &o.child_path("output"))?,
            },
        };
        o.finish()?;
        Ok(out)
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        match self {
            WorkloadConfig::Task { task, scale_mean, scale_std } => {
                if !TASKS.contains(&task.as_str()) {
                    return Err(validate_err(
                        &join(path, "task"),
                        format!("unknown task `{task}`; expected one of {}", TASKS.join(", ")),
                    ));
                }
                if let Some(k) = scale_mean {
                    require_pos(*k, &join(path, "scale_mean"), "scale factor")?;
                }
                if let Some(k) = scale_std {
                    require_pos(*k, &join(path, "scale_std"), "scale factor")?;
                }
                Ok(())
            }
            WorkloadConfig::Custom { input, output } => {
                input.validate(&join(path, "input"))?;
                output.validate(&join(path, "output"))
            }
        }
    }
}

/// A token-length distribution, mirroring `exegpt_dist::LengthDist`
/// constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum LengthDistConfig {
    /// Normal truncated to `[1, max_len]`.
    TruncatedNormal {
        /// Mean length (tokens).
        mean: f64,
        /// Standard deviation (tokens).
        std: f64,
        /// Hard length cap.
        max_len: usize,
    },
    /// Skew-normal truncated to `[1, max_len]`.
    SkewNormal {
        /// Location-scale mean (tokens).
        mean: f64,
        /// Scale (tokens).
        std: f64,
        /// Skewness parameter.
        skewness: f64,
        /// Hard length cap.
        max_len: usize,
    },
    /// Log-normal truncated to `[1, max_len]`.
    LogNormal {
        /// Mean length (tokens).
        mean: f64,
        /// Standard deviation (tokens).
        std: f64,
        /// Hard length cap.
        max_len: usize,
    },
    /// Every request has exactly `len` tokens.
    PointMass {
        /// The fixed length.
        len: usize,
        /// Hard length cap (support upper bound).
        max_len: usize,
    },
}

impl Serialize for LengthDistConfig {
    fn to_value(&self) -> Value {
        match self {
            LengthDistConfig::TruncatedNormal { mean, std, max_len } => obj(vec![
                ("kind", Value::Str("truncated_normal".to_string())),
                ("mean", Value::F64(*mean)),
                ("std", Value::F64(*std)),
                ("max_len", Value::U64(*max_len as u64)),
            ]),
            LengthDistConfig::SkewNormal { mean, std, skewness, max_len } => obj(vec![
                ("kind", Value::Str("skew_normal".to_string())),
                ("mean", Value::F64(*mean)),
                ("std", Value::F64(*std)),
                ("skewness", Value::F64(*skewness)),
                ("max_len", Value::U64(*max_len as u64)),
            ]),
            LengthDistConfig::LogNormal { mean, std, max_len } => obj(vec![
                ("kind", Value::Str("log_normal".to_string())),
                ("mean", Value::F64(*mean)),
                ("std", Value::F64(*std)),
                ("max_len", Value::U64(*max_len as u64)),
            ]),
            LengthDistConfig::PointMass { len, max_len } => obj(vec![
                ("kind", Value::Str("point_mass".to_string())),
                ("len", Value::U64(*len as u64)),
                ("max_len", Value::U64(*max_len as u64)),
            ]),
        }
    }
}

impl LengthDistConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let out =
            match o.tag(&["truncated_normal", "skew_normal", "log_normal", "point_mass"])?.as_str()
            {
                "truncated_normal" => LengthDistConfig::TruncatedNormal {
                    mean: o.req_f64("mean")?,
                    std: o.req_f64("std")?,
                    max_len: o.req_usize("max_len")?,
                },
                "skew_normal" => LengthDistConfig::SkewNormal {
                    mean: o.req_f64("mean")?,
                    std: o.req_f64("std")?,
                    skewness: o.req_f64("skewness")?,
                    max_len: o.req_usize("max_len")?,
                },
                "log_normal" => LengthDistConfig::LogNormal {
                    mean: o.req_f64("mean")?,
                    std: o.req_f64("std")?,
                    max_len: o.req_usize("max_len")?,
                },
                _ => LengthDistConfig::PointMass {
                    len: o.req_usize("len")?,
                    max_len: o.req_usize("max_len")?,
                },
            };
        o.finish()?;
        Ok(out)
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        let check_cap = |max_len: usize| {
            if max_len == 0 {
                Err(validate_err(&join(path, "max_len"), "must be at least 1"))
            } else {
                Ok(())
            }
        };
        match self {
            LengthDistConfig::TruncatedNormal { mean, std, max_len }
            | LengthDistConfig::LogNormal { mean, std, max_len } => {
                require_pos(*mean, &join(path, "mean"), "mean length")?;
                require_pos(*std, &join(path, "std"), "standard deviation")?;
                check_cap(*max_len)
            }
            LengthDistConfig::SkewNormal { mean, std, skewness, max_len } => {
                require_pos(*mean, &join(path, "mean"), "mean length")?;
                require_pos(*std, &join(path, "std"), "standard deviation")?;
                require_finite(*skewness, &join(path, "skewness"), "skewness")?;
                check_cap(*max_len)
            }
            LengthDistConfig::PointMass { len, max_len } => {
                check_cap(*max_len)?;
                if *len == 0 {
                    return Err(validate_err(&join(path, "len"), "must be at least 1"));
                }
                if len > max_len {
                    return Err(validate_err(
                        &join(path, "len"),
                        format!("exceeds max_len ({len} > {max_len})"),
                    ));
                }
                Ok(())
            }
        }
    }
}

// --- scheduler -----------------------------------------------------------

/// Scheduler constraints and search tolerances.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Latency bound in seconds (`inf` = unconstrained).
    pub latency_bound_secs: f64,
    /// Latency tolerance ε_L as a fraction of the bound (default 0.05).
    pub eps_latency_frac: Option<f64>,
    /// Throughput tolerance ε_T (default 0.02).
    pub eps_throughput_frac: Option<f64>,
    /// Policies to search, a subset of [`POLICIES`] (default all).
    pub policies: Option<Vec<String>>,
}

impl Serialize for SchedulerConfig {
    fn to_value(&self) -> Value {
        let mut fields = vec![("latency_bound_secs", Value::F64(self.latency_bound_secs))];
        push_opt(&mut fields, "eps_latency_frac", self.eps_latency_frac.map(Value::F64));
        push_opt(&mut fields, "eps_throughput_frac", self.eps_throughput_frac.map(Value::F64));
        push_opt(
            &mut fields,
            "policies",
            self.policies
                .as_ref()
                .map(|p| Value::Array(p.iter().map(|s| Value::Str(s.clone())).collect())),
        );
        obj(fields)
    }
}

impl SchedulerConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let latency_bound_secs = o.req_f64("latency_bound_secs")?;
        let eps_latency_frac = o.opt_f64("eps_latency_frac")?;
        let eps_throughput_frac = o.opt_f64("eps_throughput_frac")?;
        let policies = match o.opt_array("policies")? {
            Some(items) => {
                let mut names = Vec::new();
                for (item, item_path) in items {
                    match item {
                        Value::Str(s) => names.push(s.clone()),
                        other => {
                            return Err(crate::decode::expected(&item_path, "a string", other))
                        }
                    }
                }
                Some(names)
            }
            None => None,
        };
        o.finish()?;
        Ok(SchedulerConfig { latency_bound_secs, eps_latency_frac, eps_throughput_frac, policies })
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        let bound_path = join(path, "latency_bound_secs");
        if self.latency_bound_secs.is_nan() || self.latency_bound_secs <= 0.0 {
            return Err(validate_err(
                &bound_path,
                format!("must be positive (inf allowed), got {}", self.latency_bound_secs),
            ));
        }
        for (key, frac) in [
            ("eps_latency_frac", self.eps_latency_frac),
            ("eps_throughput_frac", self.eps_throughput_frac),
        ] {
            if let Some(x) = frac {
                let p = join(path, key);
                require_finite(x, &p, "tolerance")?;
                if !(0.0..1.0).contains(&x) {
                    return Err(validate_err(&p, format!("must be in [0, 1), got {x}")));
                }
            }
        }
        if let Some(policies) = &self.policies {
            let p = join(path, "policies");
            if policies.is_empty() {
                return Err(validate_err(&p, "must name at least one policy"));
            }
            for (i, name) in policies.iter().enumerate() {
                if !POLICIES.contains(&name.as_str()) {
                    return Err(validate_err(
                        &crate::decode::join_index(&p, i),
                        format!("unknown policy `{name}`; expected one of {}", POLICIES.join(", ")),
                    ));
                }
                if policies[..i].contains(name) {
                    return Err(validate_err(
                        &crate::decode::join_index(&p, i),
                        format!("policy `{name}` listed twice"),
                    ));
                }
            }
        }
        Ok(())
    }
}

// --- shared specs --------------------------------------------------------

/// An offered-load specification.
#[derive(Debug, Clone, PartialEq)]
pub enum RateSpec {
    /// An absolute rate in queries per second.
    Qps {
        /// Queries per second.
        qps: f64,
    },
    /// A fraction of the scheduled plan's estimated throughput (serve
    /// mode). `of = "shifted"` evaluates the plan under the post-shift
    /// workload (only meaningful with `poisson_with_shift` arrivals).
    CapacityFrac {
        /// Fraction of the plan's capacity (0, 1].
        frac: f64,
        /// `base` or `shifted`.
        of: String,
    },
    /// A fraction of a pool's plan throughput (fleet mode). `pool` is
    /// `fastest`, `slowest`, or a pool name.
    PoolCapacityFrac {
        /// Fraction of the pool's capacity.
        frac: f64,
        /// `fastest`, `slowest`, or a declared pool name.
        pool: String,
    },
}

impl Serialize for RateSpec {
    fn to_value(&self) -> Value {
        match self {
            RateSpec::Qps { qps } => {
                obj(vec![("kind", Value::Str("qps".to_string())), ("qps", Value::F64(*qps))])
            }
            RateSpec::CapacityFrac { frac, of } => obj(vec![
                ("kind", Value::Str("capacity_frac".to_string())),
                ("frac", Value::F64(*frac)),
                ("of", Value::Str(of.clone())),
            ]),
            RateSpec::PoolCapacityFrac { frac, pool } => obj(vec![
                ("kind", Value::Str("pool_capacity_frac".to_string())),
                ("frac", Value::F64(*frac)),
                ("pool", Value::Str(pool.clone())),
            ]),
        }
    }
}

impl RateSpec {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let out = match o.tag(&["qps", "capacity_frac", "pool_capacity_frac"])?.as_str() {
            "qps" => RateSpec::Qps { qps: o.req_f64("qps")? },
            "capacity_frac" => RateSpec::CapacityFrac {
                frac: o.req_f64("frac")?,
                of: o.opt_str("of")?.unwrap_or_else(|| "base".to_string()),
            },
            _ => RateSpec::PoolCapacityFrac { frac: o.req_f64("frac")?, pool: o.req_str("pool")? },
        };
        o.finish()?;
        Ok(out)
    }

    /// Mode-independent value checks; mode-specific variant restrictions
    /// live with the mode validators.
    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        match self {
            RateSpec::Qps { qps } => require_pos(*qps, &join(path, "qps"), "arrival rate"),
            RateSpec::CapacityFrac { frac, of } => {
                require_pos(*frac, &join(path, "frac"), "capacity fraction")?;
                if of != "base" && of != "shifted" {
                    return Err(validate_err(
                        &join(path, "of"),
                        format!("must be `base` or `shifted`, got `{of}`"),
                    ));
                }
                Ok(())
            }
            RateSpec::PoolCapacityFrac { frac, .. } => {
                require_pos(*frac, &join(path, "frac"), "capacity fraction")
            }
        }
    }
}

/// A point on the run's virtual clock: absolute seconds, or a fraction of
/// the trace horizon (last arrival time; fractions above 1 land in the
/// backlog drain after the last arrival).
#[derive(Debug, Clone, PartialEq)]
pub enum TimeSpec {
    /// Absolute virtual seconds.
    Secs(f64),
    /// Fraction of the trace horizon (≥ 0).
    HorizonFrac(f64),
}

impl TimeSpec {
    /// Emits the flattened `t_secs` / `t_frac` field.
    fn emit(&self, fields: &mut Vec<(&str, Value)>) {
        match self {
            TimeSpec::Secs(s) => fields.push(("t_secs", Value::F64(*s))),
            TimeSpec::HorizonFrac(f) => fields.push(("t_frac", Value::F64(*f))),
        }
    }

    /// Decodes from the flattened fields of `o` (exactly one of `t_secs`,
    /// `t_frac`).
    fn decode(o: &mut Obj<'_>) -> Result<Self, ScenarioError> {
        let secs = o.opt_f64("t_secs")?;
        let frac = o.opt_f64("t_frac")?;
        match (secs, frac) {
            (Some(s), None) => Ok(TimeSpec::Secs(s)),
            (None, Some(f)) => Ok(TimeSpec::HorizonFrac(f)),
            (None, None) => Err(parse_err(o.path(), "one of `t_secs` or `t_frac` is required")),
            (Some(_), Some(_)) => {
                Err(parse_err(o.path(), "`t_secs` and `t_frac` are mutually exclusive"))
            }
        }
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        match self {
            TimeSpec::Secs(s) => {
                let p = join(path, "t_secs");
                require_finite(*s, &p, "time")?;
                if *s < 0.0 {
                    return Err(validate_err(&p, format!("must be >= 0, got {s}")));
                }
                Ok(())
            }
            TimeSpec::HorizonFrac(f) => {
                let p = join(path, "t_frac");
                require_finite(*f, &p, "horizon fraction")?;
                if *f < 0.0 {
                    return Err(validate_err(&p, format!("must be >= 0, got {f}")));
                }
                Ok(())
            }
        }
    }
}

// --- serve mode ----------------------------------------------------------

/// A single-replica online serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Requests in the arrival stream.
    pub total: usize,
    /// Live drift-triggered rescheduling on (`false` = static plan).
    pub adaptive: bool,
    /// §5.2 dynamic-adjustment threshold (default 0.15).
    pub adjust_threshold: Option<f64>,
    /// Warm-started incremental replanning (default true).
    pub incremental_replan: Option<bool>,
    /// The arrival process.
    pub arrivals: ArrivalsConfig,
    /// Per-request latency targets.
    pub slo: SloConfig,
    /// Drift-detector tuning (defaults when omitted).
    pub drift: Option<DriftConfig>,
    /// Fault injection (off when omitted).
    pub faults: Option<FaultsConfig>,
}

impl Serialize for ServeConfig {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("total", Value::U64(self.total as u64)),
            ("adaptive", Value::Bool(self.adaptive)),
        ];
        push_opt(&mut fields, "adjust_threshold", self.adjust_threshold.map(Value::F64));
        push_opt(&mut fields, "incremental_replan", self.incremental_replan.map(Value::Bool));
        fields.push(("arrivals", self.arrivals.to_value()));
        fields.push(("slo", self.slo.to_value()));
        push_opt(&mut fields, "drift", self.drift.as_ref().map(Serialize::to_value));
        push_opt(&mut fields, "faults", self.faults.as_ref().map(Serialize::to_value));
        obj(fields)
    }
}

impl ServeConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let total = o.req_usize("total")?;
        let adaptive = o.opt_bool("adaptive")?.unwrap_or(true);
        let adjust_threshold = o.opt_f64("adjust_threshold")?;
        let incremental_replan = o.opt_bool("incremental_replan")?;
        let arrivals = ArrivalsConfig::decode(o.req("arrivals")?, &o.child_path("arrivals"))?;
        let slo = SloConfig::decode(o.req("slo")?, &o.child_path("slo"))?;
        let drift =
            o.opt("drift").map(|v| DriftConfig::decode(v, &join(path, "drift"))).transpose()?;
        let faults =
            o.opt("faults").map(|v| FaultsConfig::decode(v, &join(path, "faults"))).transpose()?;
        o.finish()?;
        Ok(ServeConfig {
            total,
            adaptive,
            adjust_threshold,
            incremental_replan,
            arrivals,
            slo,
            drift,
            faults,
        })
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        if self.total == 0 {
            return Err(validate_err(&join(path, "total"), "must be at least 1"));
        }
        if let Some(x) = self.adjust_threshold {
            require_pos(x, &join(path, "adjust_threshold"), "threshold")?;
        }
        self.arrivals.validate(&join(path, "arrivals"))?;
        self.slo.validate(&join(path, "slo"))?;
        if let Some(d) = &self.drift {
            d.validate(&join(path, "drift"))?;
        }
        if let Some(f) = &self.faults {
            f.validate(&join(path, "faults"))?;
        }
        Ok(())
    }
}

/// The serve-mode arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalsConfig {
    /// Stationary Poisson arrivals.
    Poisson {
        /// Offered load.
        rate: RateSpec,
    },
    /// Two-phase Markov-modulated Poisson arrivals.
    Bursty {
        /// Offered load in the burst phase.
        rate_burst: RateSpec,
        /// Offered load in the lull phase.
        rate_lull: RateSpec,
        /// Mean burst dwell (virtual seconds).
        dwell_burst_secs: f64,
        /// Mean lull dwell (virtual seconds).
        dwell_lull_secs: f64,
    },
    /// Poisson arrivals whose output distribution shifts mid-stream (the
    /// Figure 11 drift scenario).
    PoissonWithShift {
        /// Offered load (held across the shift).
        rate: RateSpec,
        /// Fraction of the stream served before the shift.
        shift_after_frac: f64,
        /// Output-mean scale factor after the shift.
        scale_mean: f64,
        /// Output-std scale factor after the shift.
        scale_std: Option<f64>,
    },
}

impl Serialize for ArrivalsConfig {
    fn to_value(&self) -> Value {
        match self {
            ArrivalsConfig::Poisson { rate } => {
                obj(vec![("kind", Value::Str("poisson".to_string())), ("rate", rate.to_value())])
            }
            ArrivalsConfig::Bursty { rate_burst, rate_lull, dwell_burst_secs, dwell_lull_secs } => {
                obj(vec![
                    ("kind", Value::Str("bursty".to_string())),
                    ("rate_burst", rate_burst.to_value()),
                    ("rate_lull", rate_lull.to_value()),
                    ("dwell_burst_secs", Value::F64(*dwell_burst_secs)),
                    ("dwell_lull_secs", Value::F64(*dwell_lull_secs)),
                ])
            }
            ArrivalsConfig::PoissonWithShift { rate, shift_after_frac, scale_mean, scale_std } => {
                let mut fields = vec![
                    ("kind", Value::Str("poisson_with_shift".to_string())),
                    ("rate", rate.to_value()),
                    ("shift_after_frac", Value::F64(*shift_after_frac)),
                    ("scale_mean", Value::F64(*scale_mean)),
                ];
                push_opt(&mut fields, "scale_std", scale_std.map(Value::F64));
                obj(fields)
            }
        }
    }
}

impl ArrivalsConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let out = match o.tag(&["poisson", "bursty", "poisson_with_shift"])?.as_str() {
            "poisson" => ArrivalsConfig::Poisson {
                rate: RateSpec::decode(o.req("rate")?, &o.child_path("rate"))?,
            },
            "bursty" => ArrivalsConfig::Bursty {
                rate_burst: RateSpec::decode(o.req("rate_burst")?, &o.child_path("rate_burst"))?,
                rate_lull: RateSpec::decode(o.req("rate_lull")?, &o.child_path("rate_lull"))?,
                dwell_burst_secs: o.req_f64("dwell_burst_secs")?,
                dwell_lull_secs: o.req_f64("dwell_lull_secs")?,
            },
            _ => ArrivalsConfig::PoissonWithShift {
                rate: RateSpec::decode(o.req("rate")?, &o.child_path("rate"))?,
                shift_after_frac: o.req_f64("shift_after_frac")?,
                scale_mean: o.req_f64("scale_mean")?,
                scale_std: o.opt_f64("scale_std")?,
            },
        };
        o.finish()?;
        Ok(out)
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        let no_pool = |rate: &RateSpec, rate_path: &str| -> Result<(), ScenarioError> {
            if matches!(rate, RateSpec::PoolCapacityFrac { .. }) {
                return Err(validate_err(
                    &join(rate_path, "kind"),
                    "pool_capacity_frac rates are fleet-only; use qps or capacity_frac",
                ));
            }
            Ok(())
        };
        let no_shifted = |rate: &RateSpec, rate_path: &str| -> Result<(), ScenarioError> {
            if matches!(rate, RateSpec::CapacityFrac { of, .. } if of == "shifted") {
                return Err(validate_err(
                    &join(rate_path, "of"),
                    "`shifted` needs poisson_with_shift arrivals (nothing shifts here)",
                ));
            }
            Ok(())
        };
        match self {
            ArrivalsConfig::Poisson { rate } => {
                let p = join(path, "rate");
                rate.validate(&p)?;
                no_pool(rate, &p)?;
                no_shifted(rate, &p)
            }
            ArrivalsConfig::Bursty { rate_burst, rate_lull, dwell_burst_secs, dwell_lull_secs } => {
                for (key, rate) in [("rate_burst", rate_burst), ("rate_lull", rate_lull)] {
                    let p = join(path, key);
                    rate.validate(&p)?;
                    no_pool(rate, &p)?;
                    no_shifted(rate, &p)?;
                }
                require_pos(*dwell_burst_secs, &join(path, "dwell_burst_secs"), "dwell")?;
                require_pos(*dwell_lull_secs, &join(path, "dwell_lull_secs"), "dwell")
            }
            ArrivalsConfig::PoissonWithShift { rate, shift_after_frac, scale_mean, scale_std } => {
                let p = join(path, "rate");
                rate.validate(&p)?;
                no_pool(rate, &p)?;
                let sp = join(path, "shift_after_frac");
                require_finite(*shift_after_frac, &sp, "shift point")?;
                if !(0.0..=1.0).contains(shift_after_frac) {
                    return Err(validate_err(
                        &sp,
                        format!("must be in [0, 1], got {shift_after_frac}"),
                    ));
                }
                require_pos(*scale_mean, &join(path, "scale_mean"), "scale factor")?;
                if let Some(k) = scale_std {
                    require_pos(*k, &join(path, "scale_std"), "scale factor")?;
                }
                Ok(())
            }
        }
    }
}

/// Per-request latency targets (omitted = unconstrained).
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Max time to first token (seconds).
    pub ttft_secs: Option<f64>,
    /// Max per-generated-token latency (seconds).
    pub per_token_secs: Option<f64>,
    /// Max end-to-end latency (seconds).
    pub e2e_secs: Option<f64>,
}

impl Serialize for SloConfig {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        push_opt(&mut fields, "ttft_secs", self.ttft_secs.map(Value::F64));
        push_opt(&mut fields, "per_token_secs", self.per_token_secs.map(Value::F64));
        push_opt(&mut fields, "e2e_secs", self.e2e_secs.map(Value::F64));
        obj(fields)
    }
}

impl SloConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let out = SloConfig {
            ttft_secs: o.opt_f64("ttft_secs")?,
            per_token_secs: o.opt_f64("per_token_secs")?,
            e2e_secs: o.opt_f64("e2e_secs")?,
        };
        o.finish()?;
        Ok(out)
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        for (key, v) in [
            ("ttft_secs", self.ttft_secs),
            ("per_token_secs", self.per_token_secs),
            ("e2e_secs", self.e2e_secs),
        ] {
            if let Some(x) = v {
                require_pos(x, &join(path, key), "SLO target")?;
            }
        }
        Ok(())
    }
}

/// Drift-detector tuning (mirrors `exegpt_serve::DriftOptions`).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Sliding-window capacity in completed requests.
    pub window: usize,
    /// Minimum window occupancy before checks fire.
    pub min_samples: usize,
    /// Completions between checks.
    pub check_every: usize,
    /// Relative mean shift that counts as a hit.
    pub rel_threshold: f64,
    /// Consecutive hits to declare drift.
    pub consecutive: usize,
}

impl Serialize for DriftConfig {
    fn to_value(&self) -> Value {
        obj(vec![
            ("window", Value::U64(self.window as u64)),
            ("min_samples", Value::U64(self.min_samples as u64)),
            ("check_every", Value::U64(self.check_every as u64)),
            ("rel_threshold", Value::F64(self.rel_threshold)),
            ("consecutive", Value::U64(self.consecutive as u64)),
        ])
    }
}

impl DriftConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let out = DriftConfig {
            window: o.req_usize("window")?,
            min_samples: o.req_usize("min_samples")?,
            check_every: o.req_usize("check_every")?,
            rel_threshold: o.req_f64("rel_threshold")?,
            consecutive: o.req_usize("consecutive")?,
        };
        o.finish()?;
        Ok(out)
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        for (key, n) in [
            ("window", self.window),
            ("min_samples", self.min_samples),
            ("check_every", self.check_every),
            ("consecutive", self.consecutive),
        ] {
            if n == 0 {
                return Err(validate_err(&join(path, key), "must be at least 1"));
            }
        }
        if self.min_samples > self.window {
            return Err(validate_err(
                &join(path, "min_samples"),
                format!("exceeds window ({} > {})", self.min_samples, self.window),
            ));
        }
        require_pos(self.rel_threshold, &join(path, "rel_threshold"), "threshold")
    }
}

/// Fault injection: tuning plus a schedule of device events.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsConfig {
    /// Heartbeat timeout before a failure is detected (default 0.5).
    pub detection_delay_secs: Option<f64>,
    /// Straggler slowdown at or above which eviction beats tolerance
    /// (default 2.0).
    pub evict_slowdown: Option<f64>,
    /// Retry budget per request (default 5).
    pub max_retries: Option<usize>,
    /// Exponential retry backoff base (default 0.25).
    pub backoff_base_secs: Option<f64>,
    /// Observed/expected ratio counting as a straggler hit (default 1.25).
    pub straggler_rel_threshold: Option<f64>,
    /// Consecutive hits to confirm a straggler (default 3).
    pub straggler_consecutive: Option<usize>,
    /// The device events, in activation-time order.
    pub events: Vec<FaultEventConfig>,
}

impl Serialize for FaultsConfig {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        push_opt(&mut fields, "detection_delay_secs", self.detection_delay_secs.map(Value::F64));
        push_opt(&mut fields, "evict_slowdown", self.evict_slowdown.map(Value::F64));
        push_opt(&mut fields, "max_retries", self.max_retries.map(|n| Value::U64(n as u64)));
        push_opt(&mut fields, "backoff_base_secs", self.backoff_base_secs.map(Value::F64));
        push_opt(
            &mut fields,
            "straggler_rel_threshold",
            self.straggler_rel_threshold.map(Value::F64),
        );
        push_opt(
            &mut fields,
            "straggler_consecutive",
            self.straggler_consecutive.map(|n| Value::U64(n as u64)),
        );
        fields
            .push(("events", Value::Array(self.events.iter().map(Serialize::to_value).collect())));
        obj(fields)
    }
}

impl FaultsConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let detection_delay_secs = o.opt_f64("detection_delay_secs")?;
        let evict_slowdown = o.opt_f64("evict_slowdown")?;
        let max_retries = o.opt_usize("max_retries")?;
        let backoff_base_secs = o.opt_f64("backoff_base_secs")?;
        let straggler_rel_threshold = o.opt_f64("straggler_rel_threshold")?;
        let straggler_consecutive = o.opt_usize("straggler_consecutive")?;
        let mut events = Vec::new();
        for (item, item_path) in o.req_array("events")? {
            events.push(FaultEventConfig::decode(item, &item_path)?);
        }
        o.finish()?;
        Ok(FaultsConfig {
            detection_delay_secs,
            evict_slowdown,
            max_retries,
            backoff_base_secs,
            straggler_rel_threshold,
            straggler_consecutive,
            events,
        })
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        if let Some(x) = self.detection_delay_secs {
            let p = join(path, "detection_delay_secs");
            require_finite(x, &p, "delay")?;
            if x < 0.0 {
                return Err(validate_err(&p, format!("must be >= 0, got {x}")));
            }
        }
        if let Some(x) = self.evict_slowdown {
            let p = join(path, "evict_slowdown");
            require_finite(x, &p, "slowdown")?;
            if x < 1.0 {
                return Err(validate_err(&p, format!("must be >= 1, got {x}")));
            }
        }
        if let Some(x) = self.backoff_base_secs {
            let p = join(path, "backoff_base_secs");
            require_finite(x, &p, "backoff")?;
            if x < 0.0 {
                return Err(validate_err(&p, format!("must be >= 0, got {x}")));
            }
        }
        if let Some(x) = self.straggler_rel_threshold {
            let p = join(path, "straggler_rel_threshold");
            require_finite(x, &p, "threshold")?;
            if x <= 1.0 {
                return Err(validate_err(&p, format!("must be > 1, got {x}")));
            }
        }
        if self.straggler_consecutive == Some(0) {
            return Err(validate_err(&join(path, "straggler_consecutive"), "must be at least 1"));
        }
        validate_fault_events(&self.events, &join(path, "events"))
    }
}

/// Rejects malformed event sequences: each event's own values, and
/// *overlapping fault windows* — a `fail`/`slowdown` opened on a device
/// that already has one open (no `recover` in between), or a `recover`
/// with nothing to recover. Events must be listed in time order so the
/// window walk is well-defined.
fn validate_fault_events(events: &[FaultEventConfig], path: &str) -> Result<(), ScenarioError> {
    let mut open: Vec<usize> = Vec::new(); // devices with an open fault window
    let mut last: Option<&TimeSpec> = None;
    for (i, e) in events.iter().enumerate() {
        let p = crate::decode::join_index(path, i);
        e.validate(&p)?;
        if let (Some(TimeSpec::Secs(a)), TimeSpec::Secs(b)) = (last, &e.at) {
            if b < a {
                return Err(validate_err(&p, "events must be listed in time order"));
            }
        }
        if let (Some(TimeSpec::HorizonFrac(a)), TimeSpec::HorizonFrac(b)) = (last, &e.at) {
            if b < a {
                return Err(validate_err(&p, "events must be listed in time order"));
            }
        }
        last = Some(&e.at);
        match &e.kind {
            FaultKindConfig::GpuFail { gpu } | FaultKindConfig::GpuSlowdown { gpu, .. } => {
                if open.contains(gpu) {
                    return Err(validate_err(
                        &p,
                        format!(
                            "overlapping fault windows on gpu {gpu}: \
                             previous fault has no gpu_recover before this one"
                        ),
                    ));
                }
                open.push(*gpu);
            }
            FaultKindConfig::GpuRecover { gpu } => match open.iter().position(|g| g == gpu) {
                Some(at) => {
                    open.remove(at);
                }
                None => {
                    return Err(validate_err(
                        &p,
                        format!("gpu_recover for gpu {gpu} with no open fault window"),
                    ))
                }
            },
            FaultKindConfig::LinkDegrade { .. } => {}
        }
    }
    Ok(())
}

/// One scheduled device event.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEventConfig {
    /// When the fault activates.
    pub at: TimeSpec,
    /// What happens.
    pub kind: FaultKindConfig,
}

/// The device-event alternatives (mirrors `exegpt_faults::FaultKind`).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKindConfig {
    /// The device dies until recovered.
    GpuFail {
        /// Dense device index.
        gpu: usize,
    },
    /// The device runs `factor`× slower.
    GpuSlowdown {
        /// Dense device index.
        gpu: usize,
        /// Slowdown factor (≥ 1).
        factor: f64,
    },
    /// Cluster-wide link degradation.
    LinkDegrade {
        /// Bandwidth scale in (0, 1].
        bw_factor: f64,
        /// Added per-transfer latency (seconds, ≥ 0).
        latency_add_secs: f64,
    },
    /// The device heals.
    GpuRecover {
        /// Dense device index.
        gpu: usize,
    },
}

impl Serialize for FaultEventConfig {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        self.at.emit(&mut fields);
        match &self.kind {
            FaultKindConfig::GpuFail { gpu } => {
                fields.push(("kind", Value::Str("gpu_fail".to_string())));
                fields.push(("gpu", Value::U64(*gpu as u64)));
            }
            FaultKindConfig::GpuSlowdown { gpu, factor } => {
                fields.push(("kind", Value::Str("gpu_slowdown".to_string())));
                fields.push(("gpu", Value::U64(*gpu as u64)));
                fields.push(("factor", Value::F64(*factor)));
            }
            FaultKindConfig::LinkDegrade { bw_factor, latency_add_secs } => {
                fields.push(("kind", Value::Str("link_degrade".to_string())));
                fields.push(("bw_factor", Value::F64(*bw_factor)));
                fields.push(("latency_add_secs", Value::F64(*latency_add_secs)));
            }
            FaultKindConfig::GpuRecover { gpu } => {
                fields.push(("kind", Value::Str("gpu_recover".to_string())));
                fields.push(("gpu", Value::U64(*gpu as u64)));
            }
        }
        obj(fields)
    }
}

impl FaultEventConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let at = TimeSpec::decode(&mut o)?;
        let kind =
            match o.tag(&["gpu_fail", "gpu_slowdown", "link_degrade", "gpu_recover"])?.as_str() {
                "gpu_fail" => FaultKindConfig::GpuFail { gpu: o.req_usize("gpu")? },
                "gpu_slowdown" => FaultKindConfig::GpuSlowdown {
                    gpu: o.req_usize("gpu")?,
                    factor: o.req_f64("factor")?,
                },
                "link_degrade" => FaultKindConfig::LinkDegrade {
                    bw_factor: o.req_f64("bw_factor")?,
                    latency_add_secs: o.req_f64("latency_add_secs")?,
                },
                _ => FaultKindConfig::GpuRecover { gpu: o.req_usize("gpu")? },
            };
        o.finish()?;
        Ok(FaultEventConfig { at, kind })
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        self.at.validate(path)?;
        match &self.kind {
            FaultKindConfig::GpuFail { .. } | FaultKindConfig::GpuRecover { .. } => Ok(()),
            FaultKindConfig::GpuSlowdown { factor, .. } => {
                let p = join(path, "factor");
                require_finite(*factor, &p, "slowdown factor")?;
                if *factor < 1.0 {
                    return Err(validate_err(&p, format!("must be >= 1, got {factor}")));
                }
                Ok(())
            }
            FaultKindConfig::LinkDegrade { bw_factor, latency_add_secs } => {
                let p = join(path, "bw_factor");
                require_finite(*bw_factor, &p, "bandwidth factor")?;
                if !(*bw_factor > 0.0 && *bw_factor <= 1.0) {
                    return Err(validate_err(&p, format!("must be in (0, 1], got {bw_factor}")));
                }
                let p = join(path, "latency_add_secs");
                require_finite(*latency_add_secs, &p, "added latency")?;
                if *latency_add_secs < 0.0 {
                    return Err(validate_err(&p, format!("must be >= 0, got {latency_add_secs}")));
                }
                Ok(())
            }
        }
    }
}

// --- fleet mode ----------------------------------------------------------

/// A multi-replica fleet run behind a global router.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Requests in the multi-tenant trace.
    pub total: usize,
    /// One of [`DISPATCH_POLICIES`].
    pub policy: String,
    /// GPU pools replicas deploy onto.
    pub pools: Vec<PoolConfig>,
    /// The replicas.
    pub replicas: Vec<ReplicaConfig>,
    /// SLO classes (tenants reference them by name).
    pub classes: Vec<ClassConfig>,
    /// The tenants.
    pub tenants: Vec<TenantConfig>,
    /// Fleet-level replica faults.
    pub faults: Vec<FleetFaultConfig>,
    /// Scripted autoscaling actions.
    pub scale: Vec<ScaleConfig>,
}

impl Serialize for FleetConfig {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("total", Value::U64(self.total as u64)),
            ("policy", Value::Str(self.policy.clone())),
            ("pools", Value::Array(self.pools.iter().map(Serialize::to_value).collect())),
            ("replicas", Value::Array(self.replicas.iter().map(Serialize::to_value).collect())),
            ("classes", Value::Array(self.classes.iter().map(Serialize::to_value).collect())),
            ("tenants", Value::Array(self.tenants.iter().map(Serialize::to_value).collect())),
        ];
        if !self.faults.is_empty() {
            fields.push((
                "faults",
                Value::Array(self.faults.iter().map(Serialize::to_value).collect()),
            ));
        }
        if !self.scale.is_empty() {
            fields.push((
                "scale",
                Value::Array(self.scale.iter().map(Serialize::to_value).collect()),
            ));
        }
        obj(fields)
    }
}

impl FleetConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let total = o.req_usize("total")?;
        let policy = o.req_str("policy")?;
        let mut pools = Vec::new();
        for (item, item_path) in o.req_array("pools")? {
            pools.push(PoolConfig::decode(item, &item_path)?);
        }
        let mut replicas = Vec::new();
        for (item, item_path) in o.req_array("replicas")? {
            replicas.push(ReplicaConfig::decode(item, &item_path)?);
        }
        let mut classes = Vec::new();
        for (item, item_path) in o.req_array("classes")? {
            classes.push(ClassConfig::decode(item, &item_path)?);
        }
        let mut tenants = Vec::new();
        for (item, item_path) in o.req_array("tenants")? {
            tenants.push(TenantConfig::decode(item, &item_path)?);
        }
        let mut faults = Vec::new();
        if let Some(items) = o.opt_array("faults")? {
            for (item, item_path) in items {
                faults.push(FleetFaultConfig::decode(item, &item_path)?);
            }
        }
        let mut scale = Vec::new();
        if let Some(items) = o.opt_array("scale")? {
            for (item, item_path) in items {
                scale.push(ScaleConfig::decode(item, &item_path)?);
            }
        }
        o.finish()?;
        Ok(FleetConfig { total, policy, pools, replicas, classes, tenants, faults, scale })
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        if self.total == 0 {
            return Err(validate_err(&join(path, "total"), "must be at least 1"));
        }
        if !DISPATCH_POLICIES.contains(&self.policy.as_str()) {
            return Err(validate_err(
                &join(path, "policy"),
                format!(
                    "unknown policy `{}`; expected one of {}",
                    self.policy,
                    DISPATCH_POLICIES.join(", ")
                ),
            ));
        }
        let pools_path = join(path, "pools");
        if self.pools.is_empty() {
            return Err(validate_err(&pools_path, "must declare at least one pool"));
        }
        for (i, pool) in self.pools.iter().enumerate() {
            let p = crate::decode::join_index(&pools_path, i);
            pool.validate(&p)?;
            if self.pools[..i].iter().any(|other| other.name == pool.name) {
                return Err(validate_err(
                    &join(&p, "name"),
                    format!("pool `{}` declared twice", pool.name),
                ));
            }
        }
        let replicas_path = join(path, "replicas");
        if self.replicas.is_empty() {
            return Err(validate_err(&replicas_path, "must declare at least one replica"));
        }
        for (i, r) in self.replicas.iter().enumerate() {
            let p = crate::decode::join_index(&replicas_path, i);
            if r.name.is_empty() {
                return Err(validate_err(&join(&p, "name"), "must not be empty"));
            }
            if self.replicas[..i].iter().any(|other| other.name == r.name) {
                return Err(validate_err(
                    &join(&p, "name"),
                    format!("replica `{}` declared twice", r.name),
                ));
            }
            if !self.pools.iter().any(|pool| pool.name == r.pool) {
                return Err(validate_err(&join(&p, "pool"), format!("unknown pool `{}`", r.pool)));
            }
        }
        if self.replicas.iter().all(|r| r.standby) {
            return Err(validate_err(&replicas_path, "every replica is standby"));
        }
        let classes_path = join(path, "classes");
        if self.classes.is_empty() {
            return Err(validate_err(&classes_path, "must declare at least one class"));
        }
        for (i, c) in self.classes.iter().enumerate() {
            let p = crate::decode::join_index(&classes_path, i);
            c.validate(&p)?;
            if self.classes[..i].iter().any(|other| other.name == c.name) {
                return Err(validate_err(
                    &join(&p, "name"),
                    format!("class `{}` declared twice", c.name),
                ));
            }
        }
        let tenants_path = join(path, "tenants");
        if self.tenants.is_empty() {
            return Err(validate_err(&tenants_path, "must declare at least one tenant"));
        }
        for (i, t) in self.tenants.iter().enumerate() {
            let p = crate::decode::join_index(&tenants_path, i);
            t.validate(&p, &self.pools)?;
            if self.tenants[..i].iter().any(|other| other.tenant == t.tenant) {
                return Err(validate_err(
                    &join(&p, "tenant"),
                    format!("tenant id {} declared twice", t.tenant),
                ));
            }
            if !self.classes.iter().any(|c| c.name == t.class) {
                return Err(validate_err(
                    &join(&p, "class"),
                    format!("unknown class `{}`", t.class),
                ));
            }
        }
        let faults_path = join(path, "faults");
        let mut open: Vec<&str> = Vec::new();
        for (i, f) in self.faults.iter().enumerate() {
            let p = crate::decode::join_index(&faults_path, i);
            f.at.validate(&p)?;
            if !self.replicas.iter().any(|r| r.name == f.replica) {
                return Err(validate_err(
                    &join(&p, "replica"),
                    format!("unknown replica `{}`", f.replica),
                ));
            }
            match f.action.as_str() {
                "fail" => {
                    if open.contains(&f.replica.as_str()) {
                        return Err(validate_err(
                            &p,
                            format!(
                                "overlapping fault windows on replica `{}`: \
                                 previous fail has no recover before this one",
                                f.replica
                            ),
                        ));
                    }
                    open.push(&f.replica);
                }
                "recover" => match open.iter().position(|r| *r == f.replica) {
                    Some(at) => {
                        open.remove(at);
                    }
                    None => {
                        return Err(validate_err(
                            &p,
                            format!(
                                "recover for replica `{}` with no open fault window",
                                f.replica
                            ),
                        ))
                    }
                },
                other => {
                    return Err(validate_err(
                        &join(&p, "action"),
                        format!("must be `fail` or `recover`, got `{other}`"),
                    ))
                }
            }
        }
        let scale_path = join(path, "scale");
        for (i, s) in self.scale.iter().enumerate() {
            let p = crate::decode::join_index(&scale_path, i);
            s.at.validate(&p)?;
            if !self.replicas.iter().any(|r| r.name == s.replica) {
                return Err(validate_err(
                    &join(&p, "replica"),
                    format!("unknown replica `{}`", s.replica),
                ));
            }
            if s.action != "up" && s.action != "down" {
                return Err(validate_err(
                    &join(&p, "action"),
                    format!("must be `up` or `down`, got `{}`", s.action),
                ));
            }
        }
        Ok(())
    }
}

/// A GPU pool a fleet deploys replicas onto.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// Pool name (replicas reference it).
    pub name: String,
    /// The pool's cluster.
    pub cluster: ClusterConfig,
    /// Latency bound for this pool's schedule (default: the scenario's
    /// scheduler bound).
    pub latency_bound_secs: Option<f64>,
}

impl Serialize for PoolConfig {
    fn to_value(&self) -> Value {
        let mut fields =
            vec![("name", Value::Str(self.name.clone())), ("cluster", self.cluster.to_value())];
        push_opt(&mut fields, "latency_bound_secs", self.latency_bound_secs.map(Value::F64));
        obj(fields)
    }
}

impl PoolConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let name = o.req_str("name")?;
        let cluster = ClusterConfig::decode(o.req("cluster")?, &o.child_path("cluster"))?;
        let latency_bound_secs = o.opt_f64("latency_bound_secs")?;
        o.finish()?;
        Ok(PoolConfig { name, cluster, latency_bound_secs })
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(validate_err(&join(path, "name"), "must not be empty"));
        }
        self.cluster.validate(&join(path, "cluster"))?;
        if let Some(b) = self.latency_bound_secs {
            if b.is_nan() || b <= 0.0 {
                return Err(validate_err(
                    &join(path, "latency_bound_secs"),
                    format!("must be positive (inf allowed), got {b}"),
                ));
            }
        }
        Ok(())
    }
}

/// One fleet replica.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaConfig {
    /// Replica name (faults and scale events reference it).
    pub name: String,
    /// The pool it deploys onto.
    pub pool: String,
    /// Start as a standby (not routable until scaled up).
    pub standby: bool,
}

impl Serialize for ReplicaConfig {
    fn to_value(&self) -> Value {
        obj(vec![
            ("name", Value::Str(self.name.clone())),
            ("pool", Value::Str(self.pool.clone())),
            ("standby", Value::Bool(self.standby)),
        ])
    }
}

impl ReplicaConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let name = o.req_str("name")?;
        let pool = o.req_str("pool")?;
        let standby = o.opt_bool("standby")?.unwrap_or(false);
        o.finish()?;
        Ok(ReplicaConfig { name, pool, standby })
    }
}

/// An SLO class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassConfig {
    /// Class name (tenants reference it).
    pub name: String,
    /// Weight in the fleet's weighted violation rate.
    pub weight: f64,
    /// End-to-end target (omit for best-effort).
    pub e2e: Option<E2eSpec>,
}

impl Serialize for ClassConfig {
    fn to_value(&self) -> Value {
        let mut fields =
            vec![("name", Value::Str(self.name.clone())), ("weight", Value::F64(self.weight))];
        push_opt(&mut fields, "e2e", self.e2e.as_ref().map(Serialize::to_value));
        obj(fields)
    }
}

impl ClassConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let name = o.req_str("name")?;
        let weight = o.req_f64("weight")?;
        let e2e = o.opt("e2e").map(|v| E2eSpec::decode(v, &join(path, "e2e"))).transpose()?;
        o.finish()?;
        Ok(ClassConfig { name, weight, e2e })
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(validate_err(&join(path, "name"), "must not be empty"));
        }
        let p = join(path, "weight");
        require_finite(self.weight, &p, "weight")?;
        if self.weight < 0.0 {
            return Err(validate_err(&p, format!("must be >= 0, got {}", self.weight)));
        }
        if let Some(e2e) = &self.e2e {
            e2e.validate(&join(path, "e2e"))?;
        }
        Ok(())
    }
}

/// An end-to-end SLO target: a concrete bound, or the midpoint of the
/// fleet's plan latencies (the bound that separates fast pools from slow
/// ones, whatever the profile says).
#[derive(Debug, Clone, PartialEq)]
pub enum E2eSpec {
    /// A concrete bound in seconds.
    Secs {
        /// The bound.
        secs: f64,
    },
    /// Halfway between the fastest and slowest pool's plan latency.
    PlanLatencyMidpoint,
}

impl Serialize for E2eSpec {
    fn to_value(&self) -> Value {
        match self {
            E2eSpec::Secs { secs } => {
                obj(vec![("kind", Value::Str("secs".to_string())), ("secs", Value::F64(*secs))])
            }
            E2eSpec::PlanLatencyMidpoint => {
                obj(vec![("kind", Value::Str("plan_latency_midpoint".to_string()))])
            }
        }
    }
}

impl E2eSpec {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let out = match o.tag(&["secs", "plan_latency_midpoint"])?.as_str() {
            "secs" => E2eSpec::Secs { secs: o.req_f64("secs")? },
            _ => E2eSpec::PlanLatencyMidpoint,
        };
        o.finish()?;
        Ok(out)
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        match self {
            E2eSpec::Secs { secs } => require_pos(*secs, &join(path, "secs"), "SLO target"),
            E2eSpec::PlanLatencyMidpoint => Ok(()),
        }
    }
}

/// One tenant's traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Tenant id (unique).
    pub tenant: u32,
    /// SLO class, by name.
    pub class: String,
    /// The tenant's arrival process.
    pub arrivals: TenantArrivals,
}

/// A tenant's arrival process (fleet traces have no mid-stream shift).
#[derive(Debug, Clone, PartialEq)]
pub enum TenantArrivals {
    /// Stationary Poisson arrivals.
    Poisson {
        /// Offered load.
        rate: RateSpec,
    },
    /// Two-phase bursty arrivals.
    Bursty {
        /// Offered load in the burst phase.
        rate_burst: RateSpec,
        /// Offered load in the lull phase.
        rate_lull: RateSpec,
        /// Mean burst dwell (virtual seconds).
        dwell_burst_secs: f64,
        /// Mean lull dwell (virtual seconds).
        dwell_lull_secs: f64,
    },
}

impl Serialize for TenantConfig {
    fn to_value(&self) -> Value {
        obj(vec![
            ("tenant", Value::U64(u64::from(self.tenant))),
            ("class", Value::Str(self.class.clone())),
            ("arrivals", self.arrivals.to_value()),
        ])
    }
}

impl Serialize for TenantArrivals {
    fn to_value(&self) -> Value {
        match self {
            TenantArrivals::Poisson { rate } => {
                obj(vec![("kind", Value::Str("poisson".to_string())), ("rate", rate.to_value())])
            }
            TenantArrivals::Bursty { rate_burst, rate_lull, dwell_burst_secs, dwell_lull_secs } => {
                obj(vec![
                    ("kind", Value::Str("bursty".to_string())),
                    ("rate_burst", rate_burst.to_value()),
                    ("rate_lull", rate_lull.to_value()),
                    ("dwell_burst_secs", Value::F64(*dwell_burst_secs)),
                    ("dwell_lull_secs", Value::F64(*dwell_lull_secs)),
                ])
            }
        }
    }
}

impl TenantConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let tenant = o.req_u32("tenant")?;
        let class = o.req_str("class")?;
        let arrivals = TenantArrivals::decode(o.req("arrivals")?, &o.child_path("arrivals"))?;
        o.finish()?;
        Ok(TenantConfig { tenant, class, arrivals })
    }

    fn validate(&self, path: &str, pools: &[PoolConfig]) -> Result<(), ScenarioError> {
        self.arrivals.validate(&join(path, "arrivals"), pools)
    }
}

impl TenantArrivals {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let out = match o.tag(&["poisson", "bursty"])?.as_str() {
            "poisson" => TenantArrivals::Poisson {
                rate: RateSpec::decode(o.req("rate")?, &o.child_path("rate"))?,
            },
            _ => TenantArrivals::Bursty {
                rate_burst: RateSpec::decode(o.req("rate_burst")?, &o.child_path("rate_burst"))?,
                rate_lull: RateSpec::decode(o.req("rate_lull")?, &o.child_path("rate_lull"))?,
                dwell_burst_secs: o.req_f64("dwell_burst_secs")?,
                dwell_lull_secs: o.req_f64("dwell_lull_secs")?,
            },
        };
        o.finish()?;
        Ok(out)
    }

    fn validate(&self, path: &str, pools: &[PoolConfig]) -> Result<(), ScenarioError> {
        let check_rate = |rate: &RateSpec, rate_path: &str| -> Result<(), ScenarioError> {
            rate.validate(rate_path)?;
            match rate {
                RateSpec::CapacityFrac { .. } => Err(validate_err(
                    &join(rate_path, "kind"),
                    "capacity_frac rates are serve-only; use qps or pool_capacity_frac",
                )),
                RateSpec::PoolCapacityFrac { pool, .. } => {
                    if pool == "fastest"
                        || pool == "slowest"
                        || pools.iter().any(|p| p.name == *pool)
                    {
                        Ok(())
                    } else {
                        Err(validate_err(
                            &join(rate_path, "pool"),
                            format!("unknown pool `{pool}` (and not `fastest`/`slowest`)"),
                        ))
                    }
                }
                RateSpec::Qps { .. } => Ok(()),
            }
        };
        match self {
            TenantArrivals::Poisson { rate } => check_rate(rate, &join(path, "rate")),
            TenantArrivals::Bursty { rate_burst, rate_lull, dwell_burst_secs, dwell_lull_secs } => {
                check_rate(rate_burst, &join(path, "rate_burst"))?;
                check_rate(rate_lull, &join(path, "rate_lull"))?;
                require_pos(*dwell_burst_secs, &join(path, "dwell_burst_secs"), "dwell")?;
                require_pos(*dwell_lull_secs, &join(path, "dwell_lull_secs"), "dwell")
            }
        }
    }
}

/// A fleet-level replica fault: the whole replica is lost (or redeployed).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFaultConfig {
    /// When it happens.
    pub at: TimeSpec,
    /// `fail` or `recover`.
    pub action: String,
    /// The replica, by name.
    pub replica: String,
}

impl Serialize for FleetFaultConfig {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        self.at.emit(&mut fields);
        fields.push(("action", Value::Str(self.action.clone())));
        fields.push(("replica", Value::Str(self.replica.clone())));
        obj(fields)
    }
}

impl FleetFaultConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let at = TimeSpec::decode(&mut o)?;
        let action = o.req_str("action")?;
        let replica = o.req_str("replica")?;
        o.finish()?;
        Ok(FleetFaultConfig { at, action, replica })
    }
}

/// A scripted autoscaling action.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// When it happens.
    pub at: TimeSpec,
    /// `up` or `down`.
    pub action: String,
    /// The replica, by name.
    pub replica: String,
}

impl Serialize for ScaleConfig {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        self.at.emit(&mut fields);
        fields.push(("action", Value::Str(self.action.clone())));
        fields.push(("replica", Value::Str(self.replica.clone())));
        obj(fields)
    }
}

impl ScaleConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let at = TimeSpec::decode(&mut o)?;
        let action = o.req_str("action")?;
        let replica = o.req_str("replica")?;
        o.finish()?;
        Ok(ScaleConfig { at, action, replica })
    }
}

// --- replay mode ---------------------------------------------------------

/// An offline replay through the runner: schedule once, then play
/// `num_queries` sampled requests (optionally drifted) against the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayConfig {
    /// Queries to replay.
    pub num_queries: usize,
    /// Scale the replayed traffic's output mean (drift studies).
    pub scale_mean: Option<f64>,
    /// Scale the replayed traffic's output std.
    pub scale_std: Option<f64>,
}

impl Serialize for ReplayConfig {
    fn to_value(&self) -> Value {
        let mut fields = vec![("num_queries", Value::U64(self.num_queries as u64))];
        push_opt(&mut fields, "scale_mean", self.scale_mean.map(Value::F64));
        push_opt(&mut fields, "scale_std", self.scale_std.map(Value::F64));
        obj(fields)
    }
}

impl ReplayConfig {
    fn decode(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        let mut o = Obj::new(v, path)?;
        let out = ReplayConfig {
            num_queries: o.req_usize("num_queries")?,
            scale_mean: o.opt_f64("scale_mean")?,
            scale_std: o.opt_f64("scale_std")?,
        };
        o.finish()?;
        Ok(out)
    }

    fn validate(&self, path: &str) -> Result<(), ScenarioError> {
        if self.num_queries == 0 {
            return Err(validate_err(&join(path, "num_queries"), "must be at least 1"));
        }
        if let Some(k) = self.scale_mean {
            require_pos(k, &join(path, "scale_mean"), "scale factor")?;
        }
        if let Some(k) = self.scale_std {
            require_pos(k, &join(path, "scale_std"), "scale factor")?;
        }
        Ok(())
    }
}
