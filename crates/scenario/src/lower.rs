//! Lowering: a validated [`Scenario`] becomes real engine-stack objects —
//! engines, schedules, arrival traces, fault schedules, serve/fleet
//! options — and [`run`] executes them deterministically.
//!
//! The lowering mirrors the hand-written constructions in the bench and
//! smoke binaries *operation for operation* (same float expressions, same
//! seeds, same call order), so a scenario file that transcribes one of
//! those setups reproduces its event log byte for byte. Profiles are
//! shared through a process-wide cache keyed on (model, cluster), exactly
//! like the bench scenarios module.

use std::sync::{Arc, OnceLock};

use exegpt::{Engine, Schedule, SchedulerOptions};
use exegpt_cluster::ClusterSpec;
use exegpt_dist::LengthDist;
use exegpt_faults::{FaultEvent, FaultKind, FaultSchedule};
use exegpt_fleet::{
    DispatchPolicy, Fleet, FleetOptions, FleetReport, ReplicaSpec, ScaleAction, ScaleEvent,
    SloClass,
};
use exegpt_model::ModelConfig;
use exegpt_profiler::{LayerProfile, ProfileCache, ProfileOptions};
use exegpt_runner::{RunOptions, RunReport, Runner};
use exegpt_serve::{
    poisson_with_shift, DriftOptions, FaultOptions, ServeLoop, ServeOptions, ServeReport,
    SloTargets, StragglerOptions,
};
use exegpt_sim::Workload;
use exegpt_units::Secs;
use exegpt_workload::{
    multi_tenant_trace, ArrivalProcess, BurstyStream, PoissonStream, Task, TenantRequest,
    TenantSpec, TimedRequest,
};

use crate::digest::{fnv1a, format_digest};
use crate::error::ScenarioError;
use crate::schema::{
    ArrivalsConfig, ClusterConfig, E2eSpec, FaultKindConfig, FaultsConfig, FleetConfig,
    LengthDistConfig, Mode, RateSpec, ReplayConfig, Scenario, SchedulerConfig, ServeConfig,
    SloConfig, TenantArrivals, TimeSpec, WorkloadConfig,
};

fn lower_err(what: &'static str, why: impl std::fmt::Display) -> ScenarioError {
    ScenarioError::Lower { what, why: why.to_string() }
}

fn run_err(what: &'static str, why: impl std::fmt::Display) -> ScenarioError {
    ScenarioError::Run { what, why: why.to_string() }
}

/// The process-wide profile cache: every scenario sharing a (model,
/// cluster) pair reuses one profiling pass, like the bench harness.
fn cache() -> &'static ProfileCache {
    static CACHE: OnceLock<ProfileCache> = OnceLock::new();
    CACHE.get_or_init(ProfileCache::new)
}

// --- leaf lowerings ------------------------------------------------------

/// The model preset as a real config.
pub fn lower_model(preset: &str) -> Result<ModelConfig, ScenarioError> {
    match preset {
        "t5-11b" => Ok(ModelConfig::t5_11b()),
        "ul2-20b" => Ok(ModelConfig::ul2_20b()),
        "opt-13b" => Ok(ModelConfig::opt_13b()),
        "gpt3-39b" => Ok(ModelConfig::gpt3_39b()),
        "gpt3-101b" => Ok(ModelConfig::gpt3_101b()),
        "gpt3-175b" => Ok(ModelConfig::gpt3_175b()),
        "gpt3-341b" => Ok(ModelConfig::gpt3_341b()),
        other => Err(lower_err("model", format!("unknown preset `{other}`"))),
    }
}

/// The cluster config as a real (sub-)cluster.
pub fn lower_cluster(cfg: &ClusterConfig) -> Result<ClusterSpec, ScenarioError> {
    let base = match cfg.preset.as_str() {
        "a40" => ClusterSpec::a40_cluster(),
        "a100" => ClusterSpec::a100_cluster(),
        other => return Err(lower_err("cluster", format!("unknown preset `{other}`"))),
    };
    match cfg.gpus {
        Some(gpus) => base.subcluster(gpus).map_err(|e| lower_err("cluster", e)),
        None => Ok(base),
    }
}

fn lower_dist(cfg: &LengthDistConfig) -> Result<LengthDist, ScenarioError> {
    let dist = match cfg {
        LengthDistConfig::TruncatedNormal { mean, std, max_len } => {
            LengthDist::truncated_normal(*mean, *std, *max_len)
        }
        LengthDistConfig::SkewNormal { mean, std, skewness, max_len } => {
            LengthDist::skew_normal(*mean, *std, *skewness, *max_len)
        }
        LengthDistConfig::LogNormal { mean, std, max_len } => {
            LengthDist::log_normal(*mean, *std, *max_len)
        }
        LengthDistConfig::PointMass { len, max_len } => LengthDist::point_mass(*len, *max_len),
    };
    dist.map_err(|e| lower_err("workload", e))
}

fn lower_task(name: &str) -> Result<Task, ScenarioError> {
    match name {
        "summarization" => Ok(Task::Summarization),
        "translation" => Ok(Task::Translation),
        "code_generation" => Ok(Task::CodeGeneration),
        "conversational_qa1" => Ok(Task::ConversationalQa1),
        "conversational_qa2" => Ok(Task::ConversationalQa2),
        other => Err(lower_err("workload", format!("unknown task `{other}`"))),
    }
}

/// Scales a workload's output distribution like the drift studies do.
fn scale_output(
    w: &Workload,
    scale_mean: Option<f64>,
    scale_std: Option<f64>,
) -> Result<Workload, ScenarioError> {
    let mut output = w.output().clone();
    if let Some(k) = scale_mean {
        output = output.with_scaled_mean(k).map_err(|e| lower_err("workload", e))?;
    }
    if let Some(k) = scale_std {
        output = output.with_scaled_std(k).map_err(|e| lower_err("workload", e))?;
    }
    Ok(Workload::new(w.input().clone(), output))
}

/// The workload config as real distributions.
pub fn lower_workload(cfg: &WorkloadConfig) -> Result<Workload, ScenarioError> {
    match cfg {
        WorkloadConfig::Task { task, scale_mean, scale_std } => {
            let base = lower_task(task)?.workload().map_err(|e| lower_err("workload", e))?;
            scale_output(&base, *scale_mean, *scale_std)
        }
        WorkloadConfig::Custom { input, output } => {
            Ok(Workload::new(lower_dist(input)?, lower_dist(output)?))
        }
    }
}

fn lower_policy(name: &str) -> Result<exegpt::Policy, ScenarioError> {
    match name {
        "rra" => Ok(exegpt::Policy::Rra),
        "waa_compute" => Ok(exegpt::Policy::WaaCompute),
        "waa_memory" => Ok(exegpt::Policy::WaaMemory),
        other => Err(lower_err("scheduler", format!("unknown policy `{other}`"))),
    }
}

/// The scheduler section as real options, anchored at `bound`.
pub fn lower_scheduler(
    cfg: &SchedulerConfig,
    bound: Secs,
) -> Result<SchedulerOptions, ScenarioError> {
    let mut opts = SchedulerOptions::bounded(bound);
    if let Some(x) = cfg.eps_latency_frac {
        opts.eps_latency_frac = x;
    }
    if let Some(x) = cfg.eps_throughput_frac {
        opts.eps_throughput_frac = x;
    }
    if let Some(policies) = &cfg.policies {
        opts.policies = policies.iter().map(|p| lower_policy(p)).collect::<Result<Vec<_>, _>>()?;
    }
    Ok(opts)
}

fn lower_dispatch(name: &str) -> Result<DispatchPolicy, ScenarioError> {
    match name {
        "round_robin" => Ok(DispatchPolicy::RoundRobin),
        "least_outstanding" => Ok(DispatchPolicy::LeastOutstanding),
        "kv_headroom" => Ok(DispatchPolicy::KvHeadroom),
        "slo_aware" => Ok(DispatchPolicy::SloAware),
        other => Err(lower_err("fleet", format!("unknown dispatch policy `{other}`"))),
    }
}

fn lower_slo(cfg: &SloConfig) -> SloTargets {
    SloTargets {
        ttft: cfg.ttft_secs.map(Secs::new),
        per_token: cfg.per_token_secs.map(Secs::new),
        e2e: cfg.e2e_secs.map(Secs::new),
    }
}

fn resolve_time(at: &TimeSpec, horizon: f64) -> f64 {
    match at {
        TimeSpec::Secs(s) => *s,
        TimeSpec::HorizonFrac(f) => *f * horizon,
    }
}

fn lower_serve_faults(cfg: &FaultsConfig, horizon: f64) -> Result<FaultOptions, ScenarioError> {
    let defaults = FaultOptions::default();
    let events = cfg
        .events
        .iter()
        .map(|e| {
            let kind = match &e.kind {
                FaultKindConfig::GpuFail { gpu } => FaultKind::GpuFail { gpu: *gpu },
                FaultKindConfig::GpuSlowdown { gpu, factor } => {
                    FaultKind::GpuSlowdown { gpu: *gpu, factor: *factor }
                }
                FaultKindConfig::LinkDegrade { bw_factor, latency_add_secs } => {
                    FaultKind::LinkDegrade { bw_factor: *bw_factor, latency_add: *latency_add_secs }
                }
                FaultKindConfig::GpuRecover { gpu } => FaultKind::GpuRecover { gpu: *gpu },
            };
            FaultEvent { t: resolve_time(&e.at, horizon), kind }
        })
        .collect();
    Ok(FaultOptions {
        schedule: FaultSchedule::new(events).map_err(|e| lower_err("faults", e))?,
        detection_delay: cfg.detection_delay_secs.unwrap_or(defaults.detection_delay),
        evict_slowdown: cfg.evict_slowdown.unwrap_or(defaults.evict_slowdown),
        straggler: StragglerOptions {
            rel_threshold: cfg.straggler_rel_threshold.unwrap_or(defaults.straggler.rel_threshold),
            consecutive: cfg.straggler_consecutive.unwrap_or(defaults.straggler.consecutive),
        },
        max_retries: cfg.max_retries.unwrap_or(defaults.max_retries),
        backoff_base: cfg.backoff_base_secs.unwrap_or(defaults.backoff_base),
    })
}

// --- engines -------------------------------------------------------------

/// Builds an engine through the shared profile cache.
fn build_engine(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    workload: Workload,
) -> Result<Engine, ScenarioError> {
    let profile: Arc<LayerProfile> = cache()
        .get_or_profile(model, cluster, &ProfileOptions::default())
        .map_err(|e| lower_err("profile", e))?;
    Engine::builder()
        .model(model.clone())
        .cluster(cluster.clone())
        .workload(workload)
        .profile(profile)
        .build()
        .map_err(|e| lower_err("engine", e))
}

// --- lowered forms -------------------------------------------------------

/// A serve scenario, lowered and ready to run.
pub struct ServeLowered {
    /// The deployment.
    pub engine: Engine,
    /// The plan the loop starts from.
    pub schedule: Schedule,
    /// The full arrival trace (sorted by arrival time).
    pub arrivals: Vec<TimedRequest>,
    /// The serving-loop options.
    pub options: ServeOptions,
}

/// A fleet scenario, lowered and ready to run.
pub struct FleetLowered {
    /// Per-pool (name, engine, plan), in declaration order.
    pub pools: Vec<(String, Engine, Schedule)>,
    /// The multi-tenant trace.
    pub trace: Vec<TenantRequest>,
    /// Replica specs in declaration order.
    specs: Vec<ReplicaSpec>,
    /// The fleet options.
    options: FleetOptions,
}

/// A replay scenario, lowered and ready to run.
pub struct ReplayLowered {
    /// The deployment.
    pub engine: Engine,
    /// The plan under replay.
    pub schedule: Schedule,
    /// The runner options (seed, query count, drifted traffic).
    pub options: RunOptions,
}

/// A lowered scenario of any mode.
pub enum Lowered {
    /// Single-replica serving.
    Serve(ServeLowered),
    /// Multi-replica fleet.
    Fleet(FleetLowered),
    /// Offline runner replay.
    Replay(ReplayLowered),
}

impl Lowered {
    /// Every (engine, plan) pair the scenario scheduled — the surface the
    /// plan-invariant property suite checks.
    pub fn plans(&self) -> Vec<(&Engine, &Schedule)> {
        match self {
            Lowered::Serve(s) => vec![(&s.engine, &s.schedule)],
            Lowered::Replay(r) => vec![(&r.engine, &r.schedule)],
            Lowered::Fleet(f) => f.pools.iter().map(|(_, e, s)| (e, s)).collect(),
        }
    }
}

// --- serve lowering ------------------------------------------------------

fn resolve_serve_rate(
    rate: &RateSpec,
    engine: &Engine,
    schedule: &Schedule,
    shifted: Option<&Workload>,
) -> Result<f64, ScenarioError> {
    match rate {
        RateSpec::Qps { qps } => Ok(*qps),
        RateSpec::CapacityFrac { frac, of } => match (of.as_str(), shifted) {
            // Same expression as the bench serve-shift arm: evaluate the
            // *stale* plan under the shifted traffic, fall back to the plan
            // estimate.
            ("shifted", Some(shifted)) => Ok(engine
                .simulator()
                .with_workload(shifted.clone())
                .evaluate(&schedule.config)
                .map(|e| frac * e.throughput)
                .unwrap_or(frac * schedule.estimate.throughput)),
            ("shifted", None) => {
                Err(lower_err("serve", "capacity_frac of `shifted` without a shift"))
            }
            _ => Ok(frac * schedule.estimate.throughput),
        },
        RateSpec::PoolCapacityFrac { .. } => {
            Err(lower_err("serve", "pool_capacity_frac is fleet-only"))
        }
    }
}

fn lower_serve(scenario: &Scenario, cfg: &ServeConfig) -> Result<ServeLowered, ScenarioError> {
    let model = lower_model(&scenario.model.preset)?;
    let cluster_cfg =
        scenario.cluster.as_ref().ok_or_else(|| lower_err("serve", "missing cluster"))?;
    let cluster = lower_cluster(cluster_cfg)?;
    let base = lower_workload(&scenario.workload)?;
    let engine = build_engine(&model, &cluster, base.clone())?;

    let bound = Secs::new(scenario.scheduler.latency_bound_secs);
    let schedule = engine.schedule(bound).map_err(|e| lower_err("schedule", e))?;

    let arrivals = match &cfg.arrivals {
        ArrivalsConfig::Poisson { rate } => {
            let qps = resolve_serve_rate(rate, &engine, &schedule, None)?;
            PoissonStream::new(&base, qps, scenario.seed).take(cfg.total).collect()
        }
        ArrivalsConfig::Bursty { rate_burst, rate_lull, dwell_burst_secs, dwell_lull_secs } => {
            let burst = resolve_serve_rate(rate_burst, &engine, &schedule, None)?;
            let lull = resolve_serve_rate(rate_lull, &engine, &schedule, None)?;
            BurstyStream::new(
                &base,
                burst,
                lull,
                *dwell_burst_secs,
                *dwell_lull_secs,
                scenario.seed,
            )
            .take(cfg.total)
            .collect()
        }
        ArrivalsConfig::PoissonWithShift { rate, shift_after_frac, scale_mean, scale_std } => {
            let shifted = scale_output(&base, Some(*scale_mean), *scale_std)?;
            let qps = resolve_serve_rate(rate, &engine, &schedule, Some(&shifted))?;
            // Truncate like `total / 4` does for frac = 0.25: exact for the
            // fractions the bench uses, monotone for the rest.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let shift_after = (shift_after_frac * cfg.total as f64) as usize;
            poisson_with_shift(&base, &shifted, qps, shift_after, cfg.total, scenario.seed)
        }
    };

    let horizon = arrivals.last().map(|r| r.arrival).unwrap_or(0.0);
    let defaults = ServeOptions::default();
    let default_drift = DriftOptions::default();
    let options = ServeOptions {
        slo: lower_slo(&cfg.slo),
        adjust_threshold: cfg.adjust_threshold.unwrap_or(defaults.adjust_threshold),
        drift: cfg
            .drift
            .as_ref()
            .map(|d| DriftOptions {
                window: d.window,
                min_samples: d.min_samples,
                check_every: d.check_every,
                rel_threshold: d.rel_threshold,
                consecutive: d.consecutive,
            })
            .unwrap_or(default_drift),
        adaptive: cfg.adaptive,
        scheduler: lower_scheduler(&scenario.scheduler, bound)?,
        faults: cfg.faults.as_ref().map(|f| lower_serve_faults(f, horizon)).transpose()?,
        incremental_replan: cfg.incremental_replan.unwrap_or(defaults.incremental_replan),
    };

    Ok(ServeLowered { engine, schedule, arrivals, options })
}

// --- fleet lowering ------------------------------------------------------

fn resolve_fleet_rate(
    rate: &RateSpec,
    pools: &[(String, Engine, Schedule)],
) -> Result<f64, ScenarioError> {
    let throughputs = || pools.iter().map(|(_, _, s)| s.estimate.throughput);
    match rate {
        RateSpec::Qps { qps } => Ok(*qps),
        RateSpec::PoolCapacityFrac { frac, pool } => {
            let thr = match pool.as_str() {
                "fastest" => throughputs().fold(f64::NEG_INFINITY, f64::max),
                "slowest" => throughputs().fold(f64::INFINITY, f64::min),
                name => {
                    pools
                        .iter()
                        .find(|(n, _, _)| n == name)
                        .ok_or_else(|| lower_err("fleet", format!("unknown pool `{name}`")))?
                        .2
                        .estimate
                        .throughput
                }
            };
            Ok(frac * thr)
        }
        RateSpec::CapacityFrac { .. } => Err(lower_err("fleet", "capacity_frac is serve-only")),
    }
}

fn lower_tenant_process(
    arrivals: &TenantArrivals,
    pools: &[(String, Engine, Schedule)],
) -> Result<ArrivalProcess, ScenarioError> {
    match arrivals {
        TenantArrivals::Poisson { rate } => {
            Ok(ArrivalProcess::Poisson { rate_qps: resolve_fleet_rate(rate, pools)? })
        }
        TenantArrivals::Bursty { rate_burst, rate_lull, dwell_burst_secs, dwell_lull_secs } => {
            Ok(ArrivalProcess::Bursty {
                rate_burst: resolve_fleet_rate(rate_burst, pools)?,
                rate_lull: resolve_fleet_rate(rate_lull, pools)?,
                dwell_burst: *dwell_burst_secs,
                dwell_lull: *dwell_lull_secs,
            })
        }
    }
}

fn lower_fleet(scenario: &Scenario, cfg: &FleetConfig) -> Result<FleetLowered, ScenarioError> {
    let model = lower_model(&scenario.model.preset)?;
    let workload = lower_workload(&scenario.workload)?;

    // Pools: engine + plan each, in declaration order (profiles shared via
    // the cache, so two replicas on one pool profile once).
    let mut pools: Vec<(String, Engine, Schedule)> = Vec::new();
    for pool in &cfg.pools {
        let cluster = lower_cluster(&pool.cluster)?;
        let engine = build_engine(&model, &cluster, workload.clone())?;
        let bound =
            Secs::new(pool.latency_bound_secs.unwrap_or(scenario.scheduler.latency_bound_secs));
        let schedule = engine.schedule(bound).map_err(|e| lower_err("schedule", e))?;
        pools.push((pool.name.clone(), engine, schedule));
    }

    // Classes: same (fast + slow) / 2 midpoint the fleet smoke run derives,
    // generalized to min/max over all pools.
    let latencies = || pools.iter().map(|(_, _, s)| s.estimate.latency.as_secs());
    let classes = cfg
        .classes
        .iter()
        .map(|c| {
            let targets = match &c.e2e {
                Some(E2eSpec::Secs { secs }) => SloTargets::e2e(Secs::new(*secs)),
                Some(E2eSpec::PlanLatencyMidpoint) => {
                    let fast = latencies().fold(f64::INFINITY, f64::min);
                    let slow = latencies().fold(f64::NEG_INFINITY, f64::max);
                    SloTargets::e2e(Secs::new(0.5 * (fast + slow)))
                }
                None => SloTargets::unconstrained(),
            };
            SloClass { name: c.name.clone(), targets, weight: c.weight }
        })
        .collect::<Vec<_>>();

    let class_index = |name: &str| -> Result<u32, ScenarioError> {
        cfg.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| i as u32)
            .ok_or_else(|| lower_err("fleet", format!("unknown class `{name}`")))
    };
    let tenants = cfg
        .tenants
        .iter()
        .map(|t| {
            Ok(TenantSpec {
                tenant: t.tenant,
                class: class_index(&t.class)?,
                process: lower_tenant_process(&t.arrivals, &pools)?,
            })
        })
        .collect::<Result<Vec<_>, ScenarioError>>()?;

    let trace = multi_tenant_trace(&workload, &tenants, cfg.total, scenario.seed);
    let horizon = trace.last().map(|r| r.request.arrival).unwrap_or(0.0);

    let replica_index = |name: &str| -> Result<usize, ScenarioError> {
        cfg.replicas
            .iter()
            .position(|r| r.name == name)
            .ok_or_else(|| lower_err("fleet", format!("unknown replica `{name}`")))
    };
    let fault_events = cfg
        .faults
        .iter()
        .map(|f| {
            let replica = replica_index(&f.replica)?;
            let kind = match f.action.as_str() {
                "fail" => FaultKind::GpuFail { gpu: replica },
                _ => FaultKind::GpuRecover { gpu: replica },
            };
            Ok(FaultEvent { t: resolve_time(&f.at, horizon), kind })
        })
        .collect::<Result<Vec<_>, ScenarioError>>()?;
    let faults = if fault_events.is_empty() {
        None
    } else {
        Some(FaultSchedule::new(fault_events).map_err(|e| lower_err("faults", e))?)
    };
    let scale = cfg
        .scale
        .iter()
        .map(|s| {
            let replica = replica_index(&s.replica)?;
            let action = match s.action.as_str() {
                "up" => ScaleAction::Up { replica },
                _ => ScaleAction::Down { replica },
            };
            Ok(ScaleEvent { t: resolve_time(&s.at, horizon), action })
        })
        .collect::<Result<Vec<_>, ScenarioError>>()?;

    // Fleet replicas run non-adaptive, like the smoke run: the router, not
    // the replica, owns global placement decisions.
    let opts = ServeOptions { adaptive: false, ..ServeOptions::default() };
    let specs = cfg
        .replicas
        .iter()
        .map(|r| {
            let (_, engine, schedule) = pools
                .iter()
                .find(|(n, _, _)| *n == r.pool)
                .ok_or_else(|| lower_err("fleet", format!("unknown pool `{}`", r.pool)))?;
            let spec = ReplicaSpec::new(&r.name, engine.clone(), schedule.config, opts.clone())
                .map_err(|e| lower_err("fleet", e))?;
            Ok(if r.standby { spec.standby() } else { spec })
        })
        .collect::<Result<Vec<_>, ScenarioError>>()?;

    let options = FleetOptions { policy: lower_dispatch(&cfg.policy)?, classes, faults, scale };
    Ok(FleetLowered { pools, trace, specs, options })
}

// --- replay lowering -----------------------------------------------------

fn lower_replay(scenario: &Scenario, cfg: &ReplayConfig) -> Result<ReplayLowered, ScenarioError> {
    let model = lower_model(&scenario.model.preset)?;
    let cluster_cfg =
        scenario.cluster.as_ref().ok_or_else(|| lower_err("replay", "missing cluster"))?;
    let cluster = lower_cluster(cluster_cfg)?;
    let base = lower_workload(&scenario.workload)?;
    let engine = build_engine(&model, &cluster, base.clone())?;
    let bound = Secs::new(scenario.scheduler.latency_bound_secs);
    let schedule = engine.schedule(bound).map_err(|e| lower_err("schedule", e))?;

    let request_workload = if cfg.scale_mean.is_some() || cfg.scale_std.is_some() {
        Some(scale_output(&base, cfg.scale_mean, cfg.scale_std)?)
    } else {
        None
    };
    let options = RunOptions {
        num_queries: cfg.num_queries,
        seed: scenario.seed,
        request_workload,
        ..RunOptions::default()
    };
    Ok(ReplayLowered { engine, schedule, options })
}

/// Lowers a scenario (validating it first).
///
/// # Errors
///
/// Returns the validation error, or a [`ScenarioError::Lower`] when a
/// downstream constructor rejects the lowered values.
pub fn lower(scenario: &Scenario) -> Result<Lowered, ScenarioError> {
    scenario.validate()?;
    match &scenario.mode {
        Mode::Serve(cfg) => Ok(Lowered::Serve(lower_serve(scenario, cfg)?)),
        Mode::Fleet(cfg) => Ok(Lowered::Fleet(lower_fleet(scenario, cfg)?)),
        Mode::Replay(cfg) => Ok(Lowered::Replay(lower_replay(scenario, cfg)?)),
    }
}

// --- execution -----------------------------------------------------------

/// The typed report a run produced.
pub enum Report {
    /// A serving-loop report (boxed: it dwarfs the other variants).
    Serve(Box<ServeReport>),
    /// A fleet report.
    Fleet(FleetReport),
    /// An offline runner report.
    Replay(RunReport),
}

/// The deterministic result of executing a scenario.
pub struct Outcome {
    /// The scenario's name.
    pub name: String,
    /// The run's event log: JSONL for serve/fleet (fabric log plus every
    /// replica session log), a rendered line log for replay. Byte-identical
    /// across reruns.
    pub log: String,
    /// A short human-readable summary (also deterministic).
    pub summary: String,
    /// FNV-1a over `log`.
    pub digest: u64,
    /// The full typed report.
    pub report: Report,
}

impl ServeLowered {
    /// Runs the serving loop to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError::Run`] when the loop rejects the schedule
    /// or stalls.
    pub fn run(self) -> Result<ServeReport, ScenarioError> {
        ServeLoop::new(self.engine, &self.schedule.config, self.options)
            .map_err(|e| run_err("serve", e))?
            .run(self.arrivals)
            .map_err(|e| run_err("serve", e))
    }
}

impl FleetLowered {
    /// Runs the fleet to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError::Run`] when the fabric rejects the specs
    /// or the run fails.
    pub fn run(self) -> Result<FleetReport, ScenarioError> {
        Fleet::new(self.specs, self.options)
            .map_err(|e| run_err("fleet", e))?
            .run(self.trace)
            .map_err(|e| run_err("fleet", e))
    }
}

impl ReplayLowered {
    /// Replays the plan through the offline runner.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError::Run`] when execution fails.
    pub fn run(self) -> Result<RunReport, ScenarioError> {
        Runner::from_simulator(self.engine.simulator().clone())
            .run(&self.schedule.config, &self.options)
            .map_err(|e| run_err("replay", e))
    }
}

/// The fleet log: fabric events plus every replica session log, the same
/// concatenation the fleet smoke digest covers.
fn fleet_log(report: &FleetReport) -> String {
    let mut all = report.events.to_jsonl();
    for r in &report.replicas {
        for s in &r.reports {
            all.push_str(&s.events.to_jsonl());
        }
    }
    all
}

/// A deterministic line log for replay runs (the offline runner keeps no
/// event log, so the digest covers the report's stable facts).
fn replay_log(r: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("completed={}\n", r.completed));
    out.push_str(&format!("tokens_generated={}\n", r.tokens_generated));
    out.push_str(&format!("makespan={:?}\n", r.makespan.as_secs()));
    out.push_str(&format!("throughput={:?}\n", r.throughput));
    if let Some(s) = r.latency_summary() {
        out.push_str(&format!(
            "latency: n={} mean={:?} p50={:?} p95={:?} p99={:?} max={:?}\n",
            s.count, s.mean, s.p50, s.p95, s.p99, s.max
        ));
    }
    out
}

fn serve_summary(name: &str, r: &ServeReport, digest: u64) -> String {
    format!(
        "scenario {name} (serve): completed={} lost={} throughput={:.2} q/s \
         violation_rate={:.4} reschedules={} plan_swaps={} swap_cost={:.1}s \
         faults_injected={} retries={} final_schedule={} digest={}\n",
        r.completed,
        r.requests_lost,
        r.throughput,
        r.slo.violation_rate(),
        r.reschedules,
        r.plan_swaps,
        r.swap_cost,
        r.faults_injected,
        r.retries,
        r.final_schedule,
        format_digest(digest),
    )
}

fn fleet_summary(name: &str, r: &FleetReport, digest: u64) -> String {
    let mut out = format!(
        "scenario {name} (fleet): dispatched={} rerouted={} rejected={} completed={} \
         lost={} weighted_violation_rate={:.4} makespan={:.0}s digest={}\n",
        r.dispatched,
        r.rerouted,
        r.rejected,
        r.completed,
        r.lost,
        r.weighted_violation_rate,
        r.makespan,
        format_digest(digest),
    );
    for t in &r.tenants {
        out.push_str(&format!(
            "  tenant {} ({}): dispatched={} completed={} violations={}\n",
            t.tenant, t.class, t.dispatched, t.completed, t.slo.violations
        ));
    }
    out
}

fn replay_summary(name: &str, r: &RunReport, digest: u64) -> String {
    format!(
        "scenario {name} (replay): completed={} throughput={:.2} q/s makespan={:.0}s \
         digest={}\n",
        r.completed,
        r.throughput,
        r.makespan.as_secs(),
        format_digest(digest),
    )
}

/// Lowers and executes a scenario, returning the deterministic outcome.
///
/// # Errors
///
/// Returns the first validation, lowering, or run error.
pub fn run(scenario: &Scenario) -> Result<Outcome, ScenarioError> {
    let name = scenario.name.clone();
    match lower(scenario)? {
        Lowered::Serve(s) => {
            let report = s.run()?;
            let log = report.events.to_jsonl();
            let digest = fnv1a(&log);
            let summary = serve_summary(&name, &report, digest);
            Ok(Outcome { name, log, summary, digest, report: Report::Serve(Box::new(report)) })
        }
        Lowered::Fleet(f) => {
            let report = f.run()?;
            let log = fleet_log(&report);
            let digest = fnv1a(&log);
            let summary = fleet_summary(&name, &report, digest);
            Ok(Outcome { name, log, summary, digest, report: Report::Fleet(report) })
        }
        Lowered::Replay(r) => {
            let report = r.run()?;
            let log = replay_log(&report);
            let digest = fnv1a(&log);
            let summary = replay_summary(&name, &report, digest);
            Ok(Outcome { name, log, summary, digest, report: Report::Replay(report) })
        }
    }
}
