//! Declarative scenarios: config-driven clusters, workloads, faults, and
//! SLOs for the whole ExeGPT stack.
//!
//! A scenario file (TOML or JSON) describes a complete run — model,
//! cluster, workload distributions, scheduler constraints, arrival
//! process, SLO classes, fault schedule, seed — and lowers onto the
//! existing engine/serve/fleet/runner stack with the *same* operations the
//! hand-written bench and smoke binaries perform, so a transcribed setup
//! reproduces its event log byte for byte.
//!
//! The pipeline is three total functions, each with structured errors:
//!
//! ```text
//! text --parse--> Value --decode+validate--> Scenario --lower--> engines
//!                                                        --run--> Outcome
//! ```
//!
//! * **parse** ([`Scenario::from_toml_str`] / [`Scenario::from_json_str`])
//!   rejects malformed text with a line number, and schema mismatches with
//!   the offending *key path* (`serve.arrivals.rate.qps`) — never a panic;
//! * **validate** ([`Scenario::validate`]) enforces the semantic rules:
//!   positive rates, non-empty GPU pools, resolvable cross-references,
//!   non-overlapping fault windows;
//! * **lower**/[`run`] build the real objects and execute deterministically
//!   ([`Outcome::digest`] is FNV-1a over the run's event log).
//!
//! Serialization is canonical and lossless: `decode(encode(s)) == s`
//! exactly, including boundary floats — the identity the property suite
//! pins. Shipped configs live in `scenarios/` at the workspace root with
//! their locked digests in `scenarios/GOLDENS.toml`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod decode;
mod digest;
mod error;
mod lower;
pub mod schema;
pub mod toml;

pub use digest::{fnv1a, format_digest};
pub use error::ScenarioError;
pub use lower::{
    lower, lower_cluster, lower_model, lower_scheduler, lower_workload, run, FleetLowered, Lowered,
    Outcome, ReplayLowered, Report, ServeLowered,
};
pub use schema::{
    ArrivalsConfig, ClassConfig, ClusterConfig, DriftConfig, E2eSpec, FaultEventConfig,
    FaultKindConfig, FaultsConfig, FleetConfig, FleetFaultConfig, LengthDistConfig, Mode,
    ModelSpec, PoolConfig, RateSpec, ReplayConfig, ReplicaConfig, ScaleConfig, Scenario,
    SchedulerConfig, ServeConfig, SloConfig, TenantArrivals, TenantConfig, TimeSpec,
    WorkloadConfig, CLUSTER_PRESETS, DISPATCH_POLICIES, MODEL_PRESETS, POLICIES, TASKS,
};

use serde::Serialize;

impl Scenario {
    /// Parses and validates a scenario from TOML text.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Syntax`] for malformed text (with a line number),
    /// [`ScenarioError::Parse`]/[`ScenarioError::Validate`] with the
    /// offending key path otherwise.
    pub fn from_toml_str(text: &str) -> Result<Self, ScenarioError> {
        let value = toml::parse(text)?;
        let scenario = Scenario::decode(&value)?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Parses and validates a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// Same contract as [`Scenario::from_toml_str`] (JSON syntax errors
    /// report a byte offset instead of a line).
    pub fn from_json_str(text: &str) -> Result<Self, ScenarioError> {
        let value: serde::Value = serde_json::from_str(text)
            .map_err(|e| ScenarioError::Syntax { line: 0, why: e.to_string() })?;
        let scenario = Scenario::decode(&value)?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Renders the scenario as canonical TOML (parses back identically).
    ///
    /// # Errors
    ///
    /// Returns an error only for value shapes TOML cannot spell (the
    /// schema never produces one).
    pub fn to_toml_string(&self) -> Result<String, ScenarioError> {
        toml::render(&self.to_value())
    }

    /// Renders the scenario as canonical JSON (parses back identically).
    pub fn to_json_string(&self) -> String {
        let mut value = self.to_value();
        stringify_non_finite(&mut value);
        serde_json::to_string_pretty(&value).unwrap_or_else(|_| "{}".to_string())
    }

    /// Loads a scenario from a `.toml` or `.json` file (by extension;
    /// anything but `.json` is read as TOML).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Io`] when the file cannot be read, otherwise the
    /// [`Scenario::from_toml_str`] contract.
    pub fn load(path: &std::path::Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            why: e.to_string(),
        })?;
        if path.extension().is_some_and(|e| e == "json") {
            Self::from_json_str(&text)
        } else {
            Self::from_toml_str(&text)
        }
    }
}

/// JSON cannot spell `inf`/`nan`; replace non-finite floats with their
/// TOML spellings (the decoder accepts both forms, keeping the JSON round
/// trip lossless).
fn stringify_non_finite(v: &mut serde::Value) {
    match v {
        serde::Value::F64(x) if !x.is_finite() => {
            let spelling = if x.is_nan() {
                "nan"
            } else if *x > 0.0 {
                "inf"
            } else {
                "-inf"
            };
            *v = serde::Value::Str(spelling.to_string());
        }
        serde::Value::Array(items) => items.iter_mut().for_each(stringify_non_finite),
        serde::Value::Object(fields) => {
            fields.iter_mut().for_each(|(_, v)| stringify_non_finite(v));
        }
        _ => {}
    }
}
