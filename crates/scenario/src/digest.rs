//! The stable run digest: FNV-1a over a rendered event log, the same
//! dependency-free hash the fleet smoke run and the CI goldens use, so
//! two machines (or two sessions) can compare runs by one hex token.

/// FNV-1a over the bytes of `text`.
pub fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders a digest the way every log and golden file spells it.
pub fn format_digest(d: u64) -> String {
    format!("{d:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn formats_as_sixteen_hex_digits() {
        assert_eq!(format_digest(0x2a), "000000000000002a");
        assert_eq!(format_digest(fnv1a("")).len(), 16);
    }
}
