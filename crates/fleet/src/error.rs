//! Fleet-level errors.

use exegpt_faults::FaultError;
use exegpt_serve::ServeError;

/// Errors raised by the fleet fabric.
#[derive(Debug)]
pub enum FleetError {
    /// A replica's serving loop failed (stall, infeasible schedule,
    /// unsurvivable failover).
    Serve(ServeError),
    /// The fleet-level fault schedule was invalid.
    Fault(FaultError),
    /// A fleet configuration was invalid.
    InvalidConfig {
        /// Which configuration item.
        what: &'static str,
        /// Why it was rejected.
        why: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Serve(e) => write!(f, "replica serving loop failed: {e}"),
            FleetError::Fault(e) => write!(f, "invalid fleet fault schedule: {e}"),
            FleetError::InvalidConfig { what, why } => {
                write!(f, "invalid fleet config `{what}`: {why}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Serve(e) => Some(e),
            FleetError::Fault(e) => Some(e),
            FleetError::InvalidConfig { .. } => None,
        }
    }
}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> Self {
        FleetError::Serve(e)
    }
}

impl From<FaultError> for FleetError {
    fn from(e: FaultError) -> Self {
        FleetError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FleetError::InvalidConfig { what: "classes", why: "must be non-empty".into() };
        assert!(e.to_string().contains("classes"));
    }
}
