//! Scripted autoscaling actions.
//!
//! Replicas move through a small state machine (see
//! [`ReplicaState`](crate::ReplicaState)): a scale-up takes a `Standby`
//! (or previously retired) replica through `Deploying` — charged its
//! DRAM-sourced [`deploy_time`](exegpt::Engine::deploy_time) before it
//! becomes routable — into `Active`; a scale-down puts an `Active`
//! replica into `Draining`, where it stops receiving dispatches, finishes
//! its queued work, and retires to `Down`. Actions are scripted on the
//! virtual clock so runs stay deterministic; a reactive controller can be
//! layered on top by generating the same action stream.

use serde::Serialize;

/// One autoscaling action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ScaleAction {
    /// Bring `replica` up: `Standby`/`Down`/`Lost` → `Deploying` →
    /// (after its deploy cost) `Active`.
    Up {
        /// Replica to deploy.
        replica: usize,
    },
    /// Drain `replica`: `Active` → `Draining` → (once quiescent) `Down`.
    Down {
        /// Replica to retire.
        replica: usize,
    },
}

impl ScaleAction {
    /// The replica the action targets.
    pub fn replica(&self) -> usize {
        match *self {
            ScaleAction::Up { replica } | ScaleAction::Down { replica } => replica,
        }
    }
}

/// A scale action scheduled on the fleet's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScaleEvent {
    /// Virtual time the action is applied.
    pub t: f64,
    /// The action.
    pub action: ScaleAction,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_know_their_target() {
        assert_eq!(ScaleAction::Up { replica: 3 }.replica(), 3);
        assert_eq!(ScaleAction::Down { replica: 1 }.replica(), 1);
    }
}
