//! Structured event log of a fleet run.
//!
//! Mirrors the per-replica [`exegpt_serve::EventLog`]: every routing and
//! lifecycle decision the fabric makes is appended as a typed event whose
//! JSONL rendering is byte-deterministic for a fixed trace and seed — the
//! fleet determinism test compares this rendering across reruns.

use serde::Serialize;

/// One fleet-fabric event, stamped with virtual time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum FleetEvent {
    /// An arrival was routed to a replica.
    Dispatch {
        /// Arrival time.
        t: f64,
        /// Request id.
        id: u64,
        /// Originating tenant.
        tenant: u32,
        /// Chosen replica.
        replica: usize,
        /// The replica's outstanding requests at dispatch.
        outstanding: usize,
        /// The replica's unreserved KV bytes at dispatch.
        headroom_bytes: u64,
    },
    /// An arrival found no routable replica.
    Reject {
        /// Arrival time.
        t: f64,
        /// Request id.
        id: u64,
        /// Originating tenant.
        tenant: u32,
    },
    /// A request from a lost replica was re-dispatched.
    Reroute {
        /// Reroute time (the loss time).
        t: f64,
        /// Request id.
        id: u64,
        /// The lost replica.
        from: usize,
        /// The surviving replica it moved to.
        to: usize,
    },
    /// A replica began deploying (charged its DRAM load time before it
    /// becomes routable).
    ReplicaDeploying {
        /// Deploy start.
        t: f64,
        /// Replica id.
        replica: usize,
        /// When it becomes routable.
        ready_at: f64,
    },
    /// A deployed replica became routable.
    ReplicaReady {
        /// Ready time.
        t: f64,
        /// Replica id.
        replica: usize,
    },
    /// A replica stopped receiving dispatches and is finishing its queue.
    ReplicaDraining {
        /// Drain start.
        t: f64,
        /// Replica id.
        replica: usize,
    },
    /// A drained replica retired.
    ReplicaDown {
        /// Retire time.
        t: f64,
        /// Replica id.
        replica: usize,
    },
    /// A replica was lost; its queued and in-flight work was rerouted.
    ReplicaLost {
        /// Loss time.
        t: f64,
        /// Replica id.
        replica: usize,
        /// Requests rerouted onto survivors.
        rerouted: usize,
    },
}

/// Append-only fleet event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FleetEventLog {
    events: Vec<FleetEvent>,
}

impl FleetEventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: FleetEvent) {
        self.events.push(event);
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the log as JSON Lines (one event per line), byte-
    /// deterministic for a deterministic run.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            // xlint::allow(P1, FleetEvent is a plain data struct; serialization cannot fail)
            out.push_str(&serde_json::to_string(e).expect("events serialize"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_is_one_line_per_event_and_stable() {
        let mut log = FleetEventLog::new();
        log.push(FleetEvent::Dispatch {
            t: 0.5,
            id: 1,
            tenant: 0,
            replica: 2,
            outstanding: 3,
            headroom_bytes: 1024,
        });
        log.push(FleetEvent::ReplicaLost { t: 9.0, replica: 2, rerouted: 4 });
        let a = log.to_jsonl();
        assert_eq!(a, log.to_jsonl());
        assert_eq!(a.lines().count(), 2);
        assert!(a.starts_with("{\"Dispatch\""));
    }
}
