//! CI smoke run for the fleet fabric.
//!
//! Builds a seeded heterogeneous fleet — two A40 replicas, one A100
//! replica, and an A40 standby — and plays a ≥100k-request multi-tenant
//! trace through it while a fleet-level fault kills one A40 replica
//! mid-run and a scripted scale-up deploys the standby to cover the gap.
//! Asserts the fleet invariants (zero lost requests, full conservation
//! through routing and replica loss, byte-identical reruns) and that
//! SLO-aware dispatch strictly beats round-robin on per-tenant violations
//! over the *same* request stream. Exits non-zero on any violation.

use exegpt::Engine;
use exegpt_cluster::ClusterSpec;
use exegpt_faults::{FaultEvent, FaultKind, FaultSchedule};
use exegpt_fleet::{
    DispatchPolicy, Fleet, FleetOptions, FleetReport, ReplicaSpec, ScaleAction, ScaleEvent,
    SloClass,
};
use exegpt_model::ModelConfig;
use exegpt_serve::ServeOptions;
use exegpt_units::Secs;
use exegpt_workload::{multi_tenant_trace, ArrivalProcess, Task, TenantRequest, TenantSpec};

/// FNV-1a over a rendered log: a stable, dependency-free digest two runs
/// (or two CI machines) can compare.
fn digest(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The fleet digest covers the fabric log plus every replica session log,
/// so any nondeterminism anywhere in the stack shows up.
fn fleet_digest(report: &FleetReport) -> u64 {
    let mut all = report.events.to_jsonl();
    for r in &report.replicas {
        for s in &r.reports {
            all.push_str(&s.events.to_jsonl());
        }
    }
    digest(&all)
}

/// Everything about the scenario that is fixed across the policy arms.
struct Setup {
    a40: Engine,
    a40_cfg: exegpt::ScheduleConfig,
    a100: Engine,
    a100_cfg: exegpt::ScheduleConfig,
    classes: Vec<SloClass>,
    faults: FaultSchedule,
    scale: Vec<ScaleEvent>,
}

fn build_fleet(s: &Setup, policy: DispatchPolicy) -> Result<Fleet, Box<dyn std::error::Error>> {
    let opts = ServeOptions { adaptive: false, ..ServeOptions::default() };
    let specs = vec![
        ReplicaSpec::new("a40-0", s.a40.clone(), s.a40_cfg, opts.clone())?,
        ReplicaSpec::new("a40-1", s.a40.clone(), s.a40_cfg, opts.clone())?,
        ReplicaSpec::new("a100-0", s.a100.clone(), s.a100_cfg, opts.clone())?,
        ReplicaSpec::new("a40-standby", s.a40.clone(), s.a40_cfg, opts)?.standby(),
    ];
    Ok(Fleet::new(
        specs,
        FleetOptions {
            policy,
            classes: s.classes.clone(),
            faults: Some(s.faults.clone()),
            scale: s.scale.clone(),
        },
    )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let total: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("usage: fleet-smoke [num_requests]"))
        .unwrap_or(100_000);

    let workload = Task::Translation.workload()?;
    let a40 = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4)?)
        .workload(workload.clone())
        .build()?;
    let a100 = Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a100_cluster().subcluster(4)?)
        .workload(workload.clone())
        .build()?;
    let a40_plan = a40.schedule(Secs::INFINITY)?;
    let a100_plan = a100.schedule(Secs::INFINITY)?;
    let (lat40, lat100) =
        (a40_plan.estimate.latency.as_secs(), a100_plan.estimate.latency.as_secs());
    println!(
        "a40 plan: {} (latency {lat40:.2}s, {:.1} q/s)  a100 plan: {} (latency {lat100:.2}s, {:.1} q/s)",
        a40_plan.config.describe(),
        a40_plan.estimate.throughput,
        a100_plan.config.describe(),
        a100_plan.estimate.throughput,
    );

    // The interactive budget sits between the two pools' plan latencies:
    // the A100 replica qualifies, the A40s do not — so SLO-aware routing
    // has a real decision to make and round-robin a real mistake to commit.
    let fast = lat40.min(lat100);
    let slow = lat40.max(lat100);
    let interactive_e2e = 0.5 * (fast + slow);
    let classes = vec![
        SloClass::interactive("interactive", Secs::new(interactive_e2e)),
        SloClass::batch("batch"),
    ];
    let fast_thr = a40_plan.estimate.throughput.max(a100_plan.estimate.throughput);
    let slow_thr = a40_plan.estimate.throughput.min(a100_plan.estimate.throughput);
    let tenants = vec![
        // Two interactive tenants together at ~35% of the fast pool.
        TenantSpec {
            tenant: 0,
            class: 0,
            process: ArrivalProcess::Poisson { rate_qps: 0.20 * fast_thr },
        },
        TenantSpec {
            tenant: 1,
            class: 0,
            process: ArrivalProcess::Poisson { rate_qps: 0.15 * fast_thr },
        },
        // Batch traffic heavy enough that a round-robin share overloads an
        // A40 pool (queues grow, e2e blows past the interactive budget)
        // while adaptive policies keep every pool inside its capacity.
        TenantSpec {
            tenant: 2,
            class: 1,
            process: ArrivalProcess::Poisson { rate_qps: 1.80 * slow_thr },
        },
        TenantSpec {
            tenant: 3,
            class: 1,
            process: ArrivalProcess::Bursty {
                rate_burst: 1.20 * slow_thr,
                rate_lull: 0.40 * slow_thr,
                dwell_burst: 20.0,
                dwell_lull: 60.0,
            },
        },
    ];
    let trace = multi_tenant_trace(&workload, &tenants, total, 7);
    let horizon = trace.last().map(|r| r.request.arrival).unwrap_or(0.0);
    println!("trace: {} requests over {:.0}s", trace.len(), horizon);

    // Replica 1 (an A40) dies halfway through; the standby is scaled up
    // shortly after to restore capacity.
    let faults = FaultSchedule::new(vec![FaultEvent {
        t: 0.50 * horizon,
        kind: FaultKind::GpuFail { gpu: 1 },
    }])?;
    let scale = vec![ScaleEvent { t: 0.55 * horizon, action: ScaleAction::Up { replica: 3 } }];

    let setup = Setup {
        a40,
        a40_cfg: a40_plan.config,
        a100,
        a100_cfg: a100_plan.config,
        classes,
        faults,
        scale,
    };
    let run = |policy: DispatchPolicy,
               trace: Vec<TenantRequest>|
     -> Result<FleetReport, Box<dyn std::error::Error>> {
        Ok(build_fleet(&setup, policy)?.run(trace)?)
    };

    let rr = run(DispatchPolicy::RoundRobin, trace.clone())?;
    let slo = run(DispatchPolicy::SloAware, trace.clone())?;
    let replay = run(DispatchPolicy::SloAware, trace)?;

    for (name, r) in [("round_robin", &rr), ("slo_aware", &slo)] {
        println!(
            "{name}: dispatched={} rerouted={} rejected={} completed={} lost={} \
             weighted_violation_rate={:.4} makespan={:.0}s",
            r.dispatched,
            r.rerouted,
            r.rejected,
            r.completed,
            r.lost,
            r.weighted_violation_rate,
            r.makespan,
        );
        for t in &r.tenants {
            println!(
                "  tenant {} ({}): dispatched={} rerouted={} completed={} violations={}",
                t.tenant, t.class, t.dispatched, t.rerouted, t.completed, t.slo.violations
            );
        }
        for (k, s) in &r.metrics.summaries {
            if k.ends_with("e2e") || k == "queue_wait" {
                println!(
                    "  {k}: n={} mean={:.2} p50={:.2} p95={:.2} p99={:.2} max={:.2}",
                    s.count, s.mean, s.p50, s.p95, s.p99, s.max
                );
            }
        }
    }

    // Archive a JSON summary first (even a failing run is worth diffing).
    if let Some(path) = std::env::var_os("FLEET_SMOKE_JSON") {
        #[derive(serde::Serialize)]
        struct Arm {
            weighted_violation_rate: f64,
            tenants: Vec<exegpt_fleet::TenantReport>,
            digest: String,
        }
        #[derive(serde::Serialize)]
        struct Summary {
            requests: usize,
            round_robin: Arm,
            slo_aware: Arm,
        }
        let arm = |r: &FleetReport| Arm {
            weighted_violation_rate: r.weighted_violation_rate,
            tenants: r.tenants.clone(),
            digest: format!("{:016x}", fleet_digest(r)),
        };
        let summary = Summary { requests: total, round_robin: arm(&rr), slo_aware: arm(&slo) };
        std::fs::write(&path, serde_json::to_string_pretty(&summary)?)?;
        println!("summary written to {}", std::path::Path::new(&path).display());
    }

    // Fleet invariants (the point of this smoke run).
    for (name, r) in [("round_robin", &rr), ("slo_aware", &slo)] {
        assert_eq!(r.lost, 0, "{name}: replica loss must not lose requests");
        assert_eq!(r.rejected, 0, "{name}: survivors must absorb all arrivals");
        assert_eq!(r.dispatched, total, "{name}: every request dispatched exactly once");
        assert_eq!(r.completed, total, "{name}: every request completes");
        assert!(r.rerouted > 0, "{name}: the replica loss must strand work to reroute");
        let by_tenant: usize = r.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(by_tenant, total, "{name}: per-tenant accounting conserves requests");
        assert!(
            r.tenants.iter().all(|t| t.slo.is_consistent()),
            "{name}: SLO accounting inconsistent"
        );
    }

    // Byte-determinism: an identical replay produces identical logs
    // (fabric log and every replica session log).
    assert_eq!(
        fleet_digest(&slo),
        fleet_digest(&replay),
        "slo-aware replay must be byte-identical"
    );

    // SLO-aware dispatch strictly beats round-robin on the same stream.
    let violations = |r: &FleetReport| -> usize {
        r.tenants.iter().filter(|t| t.class == "interactive").map(|t| t.slo.violations).sum()
    };
    let (v_rr, v_slo) = (violations(&rr), violations(&slo));
    println!("interactive violations: round_robin={v_rr} slo_aware={v_slo}");
    assert!(v_slo < v_rr, "slo-aware routing must strictly beat round-robin ({v_slo} vs {v_rr})");

    println!("fleet digest: {:016x}", fleet_digest(&slo));
    println!("fleet-smoke OK");
    Ok(())
}
