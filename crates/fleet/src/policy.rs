//! Global dispatch policies.
//!
//! The router sees, at every arrival, one [`Candidate`] per routable
//! replica: its queue depth, KV headroom, and the installed plan's
//! estimated latency. All policies are pure functions of the candidate
//! list (plus one `u64` of round-robin state), with explicit total-order
//! tie-breaking on replica id — routing is deterministic by construction.

use crate::slo::SloClass;

/// How arrivals are spread across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Cycle through routable replicas in id order.
    RoundRobin,
    /// Fewest outstanding requests (queued + in flight), ties to the
    /// lowest replica id.
    LeastOutstanding,
    /// Most unreserved KV-cache bytes on the bottleneck GPU, ties to the
    /// lowest replica id — keeps admission from stalling on a cache-full
    /// replica while another sits empty.
    KvHeadroom,
    /// SLO-aware: replicas whose plan latency fits the tenant's end-to-end
    /// target are preferred (least-outstanding among them); if none
    /// qualifies, the fastest replica takes it.
    SloAware,
}

impl DispatchPolicy {
    /// Stable lower-case name (metric keys, CLI args).
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round_robin",
            DispatchPolicy::LeastOutstanding => "least_outstanding",
            DispatchPolicy::KvHeadroom => "kv_headroom",
            DispatchPolicy::SloAware => "slo_aware",
        }
    }
}

/// One routable replica's dispatch signals at an arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Replica id.
    pub replica: usize,
    /// Requests queued or in flight on the replica.
    pub outstanding: usize,
    /// Unreserved KV-cache bytes on the replica's bottleneck GPU.
    pub headroom_bytes: u64,
    /// The replica plan's estimated per-request latency (seconds).
    pub plan_latency: f64,
}

/// The global router: one policy plus its (round-robin) state.
#[derive(Debug, Clone)]
pub struct Router {
    policy: DispatchPolicy,
    rr_next: u64,
}

impl Router {
    /// A router dispatching under `policy`.
    pub fn new(policy: DispatchPolicy) -> Self {
        Self { policy, rr_next: 0 }
    }

    /// The policy in force.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Picks the replica for a request of `class` among `candidates`
    /// (routable replicas in ascending id order). Returns `None` when no
    /// replica is routable.
    pub fn choose(&mut self, class: &SloClass, candidates: &[Candidate]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let chosen = match self.policy {
            DispatchPolicy::RoundRobin => {
                let idx = (self.rr_next % candidates.len() as u64) as usize;
                self.rr_next = self.rr_next.wrapping_add(1);
                candidates[idx].replica
            }
            DispatchPolicy::LeastOutstanding => least_outstanding(candidates)?,
            DispatchPolicy::KvHeadroom => {
                let mut best = candidates.first()?;
                for c in &candidates[1..] {
                    if c.headroom_bytes > best.headroom_bytes {
                        best = c;
                    }
                }
                best.replica
            }
            DispatchPolicy::SloAware => {
                // A replica "qualifies" when its plan latency fits the
                // class's end-to-end budget; an unconstrained class
                // qualifies everyone.
                let fits = |c: &Candidate| match class.targets.e2e {
                    Some(bound) => c.plan_latency <= bound.as_secs(),
                    None => true,
                };
                let qualified: Vec<Candidate> = candidates.iter().copied().filter(fits).collect();
                if qualified.is_empty() {
                    // Nothing fits: damage control — the fastest replica.
                    let mut best = candidates.first()?;
                    for c in &candidates[1..] {
                        if c.plan_latency.total_cmp(&best.plan_latency).is_lt() {
                            best = c;
                        }
                    }
                    best.replica
                } else {
                    least_outstanding(&qualified)?
                }
            }
        };
        Some(chosen)
    }
}

/// Lowest `(outstanding, replica)` candidate.
fn least_outstanding(candidates: &[Candidate]) -> Option<usize> {
    let mut best = candidates.first()?;
    for c in &candidates[1..] {
        if c.outstanding < best.outstanding {
            best = c;
        }
    }
    Some(best.replica)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exegpt_units::Secs;

    fn cands() -> Vec<Candidate> {
        vec![
            Candidate { replica: 0, outstanding: 5, headroom_bytes: 100, plan_latency: 4.0 },
            Candidate { replica: 1, outstanding: 2, headroom_bytes: 900, plan_latency: 9.0 },
            Candidate { replica: 2, outstanding: 2, headroom_bytes: 400, plan_latency: 1.5 },
        ]
    }

    #[test]
    fn round_robin_cycles_in_id_order() {
        let mut r = Router::new(DispatchPolicy::RoundRobin);
        let batch = SloClass::batch("b");
        let picks: Vec<_> = (0..6).filter_map(|_| r.choose(&batch, &cands())).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_outstanding_breaks_ties_on_id() {
        let mut r = Router::new(DispatchPolicy::LeastOutstanding);
        assert_eq!(r.choose(&SloClass::batch("b"), &cands()), Some(1));
    }

    #[test]
    fn kv_headroom_prefers_the_roomiest() {
        let mut r = Router::new(DispatchPolicy::KvHeadroom);
        assert_eq!(r.choose(&SloClass::batch("b"), &cands()), Some(1));
    }

    #[test]
    fn slo_aware_routes_tight_deadlines_to_fitting_replicas() {
        let mut r = Router::new(DispatchPolicy::SloAware);
        // Budget 2s: only replica 2 fits.
        let tight = SloClass::interactive("chat", Secs::new(2.0));
        assert_eq!(r.choose(&tight, &cands()), Some(2));
        // Budget 5s: replicas 0 and 2 fit; 2 has fewer outstanding.
        let mid = SloClass::interactive("qa", Secs::new(5.0));
        assert_eq!(r.choose(&mid, &cands()), Some(2));
        // Budget 1s: nothing fits; the fastest (2) takes it.
        let impossible = SloClass::interactive("rt", Secs::new(1.0));
        assert_eq!(r.choose(&impossible, &cands()), Some(2));
        // Unconstrained: plain least-outstanding (tie → lowest id).
        assert_eq!(r.choose(&SloClass::batch("b"), &cands()), Some(1));
    }

    #[test]
    fn empty_candidate_list_is_unroutable() {
        let mut r = Router::new(DispatchPolicy::SloAware);
        assert_eq!(r.choose(&SloClass::batch("b"), &[]), None);
    }
}
