//! exegpt-fleet: fleet-scale serving — multi-replica engines behind a
//! global SLO/KV-aware router.
//!
//! One [`exegpt_serve::ServeLoop`] serves one deployment. This crate
//! scales that out: a [`Fleet`] owns N replicas — heterogeneous
//! engine+schedule pairs (e.g. an A100 pool next to two A40 pools), each
//! running the *unchanged* single-replica loop body behind the
//! [`exegpt_serve::ReplicaStep`] interface — and merges them onto one
//! deterministic virtual clock with a global event heap. On top of the
//! fabric sit the fleet-level concerns:
//!
//! * **admission & routing** — per-tenant [`SloClass`]es and a
//!   [`DispatchPolicy`] (round-robin, least-outstanding, KV-headroom-aware
//!   or SLO-aware) route every arrival of a multi-tenant trace
//!   ([`exegpt_workload::multi_tenant_trace`]) to a replica;
//! * **violation accounting** — every completion is checked against its
//!   tenant's class targets and rolled up fleet-wide
//!   ([`TenantReport`], weighted violation rate);
//! * **elasticity** — scripted [`ScaleEvent`]s spin replicas up (charged
//!   their DRAM deploy time before becoming routable) and drain them down;
//! * **failure** — a fleet-level [`exegpt_faults::FaultSchedule`] loses
//!   whole replicas mid-run; their queued and in-flight work reroutes onto
//!   the survivors with original arrival stamps, so a loss costs latency
//!   but never requests.
//!
//! Determinism: the fabric's event heap is keyed `(time, kind, replica,
//! seq)` with total-order float comparison, so a fixed trace and
//! configuration reproduce every replica's event log — and the fleet's own
//! [`FleetEventLog`] — byte for byte; a fleet of one replays the
//! single-replica serving loop's golden log verbatim.
//!
//! # Example
//!
//! ```no_run
//! use exegpt::Engine;
//! use exegpt_cluster::ClusterSpec;
//! use exegpt_fleet::{DispatchPolicy, Fleet, FleetOptions, ReplicaSpec, SloClass};
//! use exegpt_model::ModelConfig;
//! use exegpt_serve::ServeOptions;
//! use exegpt_units::Secs;
//! use exegpt_workload::{multi_tenant_trace, ArrivalProcess, Task, TenantSpec};
//!
//! let workload = Task::Translation.workload()?;
//! let engine = Engine::builder()
//!     .model(ModelConfig::opt_13b())
//!     .cluster(ClusterSpec::a40_cluster().subcluster(4)?)
//!     .workload(workload.clone())
//!     .build()?;
//! let schedule = engine.schedule(Secs::new(30.0))?;
//! let replica = |name: &str| {
//!     ReplicaSpec::new(name, engine.clone(), schedule.config, ServeOptions::default())
//! };
//! let fleet = Fleet::new(
//!     vec![replica("a40-0")?, replica("a40-1")?],
//!     FleetOptions {
//!         policy: DispatchPolicy::SloAware,
//!         classes: vec![SloClass::interactive("chat", Secs::new(60.0))],
//!         ..FleetOptions::default()
//!     },
//! )?;
//! let tenants = [TenantSpec {
//!     tenant: 0,
//!     class: 0,
//!     process: ArrivalProcess::Poisson { rate_qps: 10.0 },
//! }];
//! let trace = multi_tenant_trace(&workload, &tenants, 5_000, 7);
//! let report = fleet.run(trace)?;
//! assert_eq!(report.completed, 5_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod autoscale;
mod error;
mod events;
mod fleet;
mod policy;
mod replica;
mod slo;

pub use autoscale::{ScaleAction, ScaleEvent};
pub use error::FleetError;
pub use events::{FleetEvent, FleetEventLog};
pub use fleet::{Fleet, FleetOptions, FleetReport};
pub use policy::{Candidate, DispatchPolicy, Router};
pub use replica::{ReplicaReport, ReplicaSpec, ReplicaState};
pub use slo::{SloClass, TenantReport};
