//! The fleet fabric: N replica serving loops on one virtual clock.
//!
//! A [`Fleet`] owns a set of [`ReplicaSpec`]s — heterogeneous engines,
//! each with its own pool, profile and plan — and plays a multi-tenant
//! trace through them as one discrete-event simulation. A global event
//! heap keyed `(time, kind, replica, seq)` merges three event sources:
//!
//! * **controls** (fleet-level faults, scripted autoscaling, deploy
//!   completions) — applied first at any instant,
//! * **arrivals** from the (sorted) trace — routed by the
//!   [`Router`](crate::Router) and injected into the chosen replica,
//! * **wakes** — a replica is stepped (one phase boundary) whenever its
//!   own clock has work to do.
//!
//! Every replica runs the *unchanged* single-replica loop body
//! ([`exegpt_serve::ReplicaStep`]); the fabric only decides when each
//! replica's clock advances and which arrivals it sees. Ties resolve by
//! the fixed kind order then replica id then sequence number, so a run is
//! byte-deterministic: rerunning the same trace yields identical replica
//! event logs and an identical fleet log.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use exegpt_faults::{FaultKind, FaultSchedule};
use exegpt_serve::{Completion, Metrics, MetricsSnapshot, StepOutcome};
use exegpt_units::Secs;
use exegpt_workload::{TenantRequest, TimedRequest};
use serde::Serialize;

use crate::autoscale::{ScaleAction, ScaleEvent};
use crate::error::FleetError;
use crate::events::{FleetEvent, FleetEventLog};
use crate::policy::{Candidate, DispatchPolicy, Router};
use crate::replica::{ReplicaHandle, ReplicaReport, ReplicaSpec, ReplicaState};
use crate::slo::{SloClass, TenantReport};

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// The global dispatch policy.
    pub policy: DispatchPolicy,
    /// SLO classes indexed by [`TenantRequest::class`].
    pub classes: Vec<SloClass>,
    /// Fleet-level fault schedule. `GpuFail { gpu: r }` loses **replica**
    /// `r` (its queued and in-flight work reroutes onto survivors);
    /// `GpuRecover { gpu: r }` redeploys it. Device-level faults belong in
    /// a replica's own [`exegpt_serve::ServeOptions::faults`].
    pub faults: Option<FaultSchedule>,
    /// Scripted autoscaling actions on the fleet clock.
    pub scale: Vec<ScaleEvent>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            policy: DispatchPolicy::RoundRobin,
            classes: vec![SloClass::batch("default")],
            faults: None,
            scale: Vec::new(),
        }
    }
}

/// Everything a finished fleet run reports.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Requests dispatched on first arrival.
    pub dispatched: usize,
    /// Requests rejected at arrival (no routable replica).
    pub rejected: usize,
    /// Re-dispatches after replica losses.
    pub rerouted: usize,
    /// Requests completed fleet-wide.
    pub completed: usize,
    /// Requests lost (dispatched but neither completed nor reroutable).
    pub lost: usize,
    /// Virtual time of the last completion.
    pub makespan: f64,
    /// Class-weighted SLO violation rate over all tenants.
    pub weighted_violation_rate: f64,
    /// Per-tenant accounting, ascending tenant id.
    pub tenants: Vec<TenantReport>,
    /// Per-replica accounting, fleet order.
    pub replicas: Vec<ReplicaReport>,
    /// Fleet-level metrics (rollups plus per-replica counters).
    pub metrics: MetricsSnapshot,
    /// The fleet fabric's event log (routing and lifecycle decisions).
    pub events: FleetEventLog,
}

/// A multi-replica serving fleet. See the [crate docs](crate).
pub struct Fleet {
    specs: Vec<ReplicaSpec>,
    opts: FleetOptions,
}

impl Fleet {
    /// Creates a fleet over `specs`.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] when no replica starts
    /// active, a class is malformed, a scale action targets an unknown
    /// replica, or the fault schedule contains anything but whole-replica
    /// loss/recovery of known replicas.
    pub fn new(specs: Vec<ReplicaSpec>, opts: FleetOptions) -> Result<Self, FleetError> {
        if specs.is_empty() {
            return Err(FleetError::InvalidConfig {
                what: "replicas",
                why: "at least one replica is required".into(),
            });
        }
        if specs.iter().all(|s| s.standby) {
            return Err(FleetError::InvalidConfig {
                what: "replicas",
                why: "at least one replica must start active (not standby)".into(),
            });
        }
        if opts.classes.is_empty() {
            return Err(FleetError::InvalidConfig {
                what: "classes",
                why: "at least one SLO class is required".into(),
            });
        }
        if let Some(bad) = opts.classes.iter().find(|c| !c.is_valid()) {
            return Err(FleetError::InvalidConfig {
                what: "classes",
                why: format!("class `{}` has an empty name or invalid weight", bad.name),
            });
        }
        if let Some(f) = &opts.faults {
            for e in f.events() {
                let ok = match e.kind {
                    FaultKind::GpuFail { gpu } | FaultKind::GpuRecover { gpu } => gpu < specs.len(),
                    _ => false,
                };
                if !ok {
                    return Err(FleetError::InvalidConfig {
                        what: "faults",
                        why: format!(
                            "fleet faults must be GpuFail/GpuRecover of a replica index \
                             < {} (got {})",
                            specs.len(),
                            e.kind
                        ),
                    });
                }
            }
        }
        for ev in &opts.scale {
            if ev.action.replica() >= specs.len() {
                return Err(FleetError::InvalidConfig {
                    what: "scale",
                    why: format!(
                        "scale action targets replica {} but the fleet has {}",
                        ev.action.replica(),
                        specs.len()
                    ),
                });
            }
            if !ev.t.is_finite() || ev.t < 0.0 {
                return Err(FleetError::InvalidConfig {
                    what: "scale",
                    why: format!("scale time must be finite and non-negative, got {}", ev.t),
                });
            }
        }
        Ok(Self { specs, opts })
    }

    /// Plays `trace` (sorted by arrival) through the fleet to completion.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] when the trace is unsorted or
    /// references an unknown SLO class, and [`FleetError::Serve`] when a
    /// replica's loop fails.
    pub fn run(self, trace: Vec<TenantRequest>) -> Result<FleetReport, FleetError> {
        let n_classes = self.opts.classes.len();
        for pair in trace.windows(2) {
            if pair[0].request.arrival > pair[1].request.arrival {
                return Err(FleetError::InvalidConfig {
                    what: "trace",
                    why: "arrivals must be sorted by time".into(),
                });
            }
        }
        if let Some(bad) = trace.iter().find(|r| r.class as usize >= n_classes) {
            return Err(FleetError::InvalidConfig {
                what: "trace",
                why: format!(
                    "tenant {} uses class {} but only {} classes are configured",
                    bad.tenant, bad.class, n_classes
                ),
            });
        }

        let n = self.specs.len();
        let mut state = RunState {
            handles: self.specs.into_iter().map(ReplicaHandle::new).collect(),
            router: Router::new(self.opts.policy),
            classes: self.opts.classes,
            heap: BinaryHeap::new(),
            controls: BTreeMap::new(),
            seq: 0,
            wake_seq: vec![0; n],
            scheduled: vec![None; n],
            origin: BTreeMap::new(),
            tenants: BTreeMap::new(),
            metrics: Metrics::new(),
            events: FleetEventLog::new(),
            makespan: 0.0,
            dispatched: 0,
            rejected: 0,
            rerouted: 0,
            completed: 0,
            lost: 0,
        };

        // Spawn the initially active replicas and give each a first wake.
        for i in 0..state.handles.len() {
            if matches!(state.handles[i].state, ReplicaState::Active) {
                state.handles[i].session = Some(state.handles[i].spec.spawn()?);
                state.schedule_wake(i, 0.0);
            }
        }
        // Merge fleet faults and scripted scaling into the control track.
        if let Some(f) = &self.opts.faults {
            for e in f.events() {
                match e.kind {
                    FaultKind::GpuFail { gpu } => state.push_control(e.t, Control::Lose(gpu)),
                    FaultKind::GpuRecover { gpu } => {
                        state.push_control(e.t, Control::Deploy(gpu));
                    }
                    _ => {}
                }
            }
        }
        for ev in &self.opts.scale {
            match ev.action {
                ScaleAction::Up { replica } => {
                    state.push_control(ev.t, Control::ScaleUp(replica));
                }
                ScaleAction::Down { replica } => {
                    state.push_control(ev.t, Control::ScaleDown(replica));
                }
            }
        }

        // ---- The global event loop --------------------------------------
        let mut arrivals = trace.into_iter().peekable();
        loop {
            let take_arrival = match (arrivals.peek(), state.heap.peek()) {
                (Some(a), Some(top)) => match a.request.arrival.total_cmp(&top.t) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    // Same instant: controls apply first, then arrivals,
                    // then wakes (K_* order).
                    Ordering::Equal => top.kind > K_ARRIVAL,
                },
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_arrival {
                if let Some(r) = arrivals.next() {
                    state.dispatch(r);
                }
                continue;
            }
            let Some(entry) = state.heap.pop() else { break };
            match entry.kind {
                K_CONTROL => {
                    if let Some(control) = state.controls.remove(&entry.seq) {
                        state.apply_control(control, entry.t)?;
                    }
                }
                // A wake with a stale seq was superseded — skip it.
                _ if entry.seq == state.wake_seq[entry.replica] => {
                    state.scheduled[entry.replica] = None;
                    state.step_replica(entry.replica, entry.t)?;
                }
                _ => {}
            }
        }

        // Everything is quiescent: retire the surviving sessions.
        for i in 0..state.handles.len() {
            if let Some(sess) = state.handles[i].session.take() {
                let report = sess.finish();
                state.handles[i].reports.push(report);
            }
        }
        Ok(state.into_report())
    }
}

/// Heap-entry kinds, in tie-break order at one instant.
const K_CONTROL: u8 = 0;
const K_ARRIVAL: u8 = 1; // arrivals live in the trace iterator, not the heap
const K_WAKE: u8 = 2;

/// One scheduled fleet event. Min-ordered on `(t, kind, replica, seq)` —
/// [`BinaryHeap`] pops the maximum, so the comparison is reversed.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    t: f64,
    kind: u8,
    replica: usize,
    seq: u64,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.kind.cmp(&self.kind))
            .then_with(|| other.replica.cmp(&self.replica))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A fleet-level control action.
#[derive(Debug, Clone, Copy)]
enum Control {
    /// Lose a replica (fleet fault): reroute its work onto survivors.
    Lose(usize),
    /// Redeploy a lost replica (fleet fault recovery).
    Deploy(usize),
    /// Scripted scale-up of a standby/retired replica.
    ScaleUp(usize),
    /// Scripted drain-and-retire of an active replica.
    ScaleDown(usize),
    /// A deploying replica finished paying its deploy cost.
    Ready(usize),
}

/// Per-tenant running accounting.
struct TenantAcc {
    class: u32,
    dispatched: usize,
    rejected: usize,
    rerouted: usize,
    completed: usize,
    slo: exegpt_serve::SloOutcome,
}

/// All mutable state of one fleet run.
struct RunState {
    handles: Vec<ReplicaHandle>,
    router: Router,
    classes: Vec<SloClass>,
    heap: BinaryHeap<Entry>,
    controls: BTreeMap<u64, Control>,
    seq: u64,
    /// Latest valid wake seq per replica: heap entries with an older seq
    /// were superseded and are discarded on pop (lazy deletion).
    wake_seq: Vec<u64>,
    /// Time of each replica's currently scheduled wake, if any. At most
    /// one wake per replica is live, and it is never earlier than the
    /// replica's own clock — so a replica only steps once the global loop
    /// has delivered every arrival at or before its local time, which is
    /// exactly what the single-replica loop sees.
    scheduled: Vec<Option<f64>>,
    /// Request id → originating tenant, for completion and reroute
    /// accounting.
    origin: BTreeMap<u64, u32>,
    tenants: BTreeMap<u32, TenantAcc>,
    metrics: Metrics,
    events: FleetEventLog,
    makespan: f64,
    dispatched: usize,
    rejected: usize,
    rerouted: usize,
    completed: usize,
    lost: usize,
}

impl RunState {
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Schedules replica `replica`'s next wake at `t`, unless an
    /// earlier-or-equal wake is already live. A later live wake (an idle
    /// timer) is superseded via the seq counter.
    fn schedule_wake(&mut self, replica: usize, t: f64) {
        if let Some(cur) = self.scheduled[replica] {
            if cur.total_cmp(&t) != Ordering::Greater {
                return;
            }
        }
        let seq = self.next_seq();
        self.wake_seq[replica] = seq;
        self.scheduled[replica] = Some(t);
        self.heap.push(Entry { t, kind: K_WAKE, replica, seq });
    }

    /// Drops replica `replica`'s live wake, if any (loss or retirement).
    fn cancel_wake(&mut self, replica: usize) {
        self.wake_seq[replica] = self.next_seq();
        self.scheduled[replica] = None;
    }

    fn push_control(&mut self, t: f64, control: Control) {
        let seq = self.next_seq();
        let replica = match control {
            Control::Lose(r)
            | Control::Deploy(r)
            | Control::ScaleUp(r)
            | Control::ScaleDown(r)
            | Control::Ready(r) => r,
        };
        self.controls.insert(seq, control);
        self.heap.push(Entry { t, kind: K_CONTROL, replica, seq });
    }

    /// Routable replicas' dispatch signals, ascending replica id.
    fn candidates(&self) -> Vec<Candidate> {
        self.handles
            .iter()
            .enumerate()
            .filter(|(_, h)| h.state.routable())
            .filter_map(|(i, h)| {
                h.session.as_ref().map(|s| Candidate {
                    replica: i,
                    outstanding: s.outstanding(),
                    headroom_bytes: s.kv_headroom_bytes(),
                    plan_latency: s.plan_latency(),
                })
            })
            .collect()
    }

    fn tenant_entry(&mut self, tenant: u32, class: u32) -> &mut TenantAcc {
        self.tenants.entry(tenant).or_insert_with(|| TenantAcc {
            class,
            dispatched: 0,
            rejected: 0,
            rerouted: 0,
            completed: 0,
            slo: exegpt_serve::SloOutcome::default(),
        })
    }

    /// Routes one fresh arrival.
    fn dispatch(&mut self, r: TenantRequest) {
        let t = r.request.arrival;
        let cands = self.candidates();
        let class = &self.classes[r.class as usize];
        match self.router.choose(class, &cands) {
            Some(replica) => {
                let Some(c) = cands.iter().find(|c| c.replica == replica) else { return };
                let (outstanding, headroom_bytes) = (c.outstanding, c.headroom_bytes);
                self.dispatched += 1;
                self.origin.insert(r.request.request.id, r.tenant);
                self.tenant_entry(r.tenant, r.class).dispatched += 1;
                self.handles[replica].dispatched += 1;
                self.metrics.inc("dispatched");
                self.metrics.inc(&format!("dispatched_{}", self.router.policy().name()));
                self.metrics.inc(&format!("replica{replica}_dispatched"));
                self.metrics.observe("dispatch_headroom_bytes", headroom_bytes as f64);
                self.metrics.observe("dispatch_outstanding", outstanding as f64);
                self.events.push(FleetEvent::Dispatch {
                    t,
                    id: r.request.request.id,
                    tenant: r.tenant,
                    replica,
                    outstanding,
                    headroom_bytes,
                });
                // Wake the replica no earlier than its own clock: arrivals
                // in between are delivered by the global loop first, so
                // the step sees the same inbox the single-replica loop
                // would at that local time.
                let mut wake_at = t;
                if let Some(sess) = self.handles[replica].session.as_mut() {
                    sess.inject(r.request);
                    wake_at = sess.now().max(t);
                }
                self.schedule_wake(replica, wake_at);
            }
            None => {
                self.rejected += 1;
                self.tenant_entry(r.tenant, r.class).rejected += 1;
                self.metrics.inc("rejected");
                self.metrics.inc(&format!("rejected_{}", self.router.policy().name()));
                self.events.push(FleetEvent::Reject {
                    t,
                    id: r.request.request.id,
                    tenant: r.tenant,
                });
            }
        }
    }

    /// Wakes replica `rep` to fleet time `t` and steps it once.
    fn step_replica(&mut self, rep: usize, t: f64) -> Result<(), FleetError> {
        let (outcome, completions, now) = {
            let h = &mut self.handles[rep];
            let Some(sess) = h.session.as_mut() else { return Ok(()) };
            sess.wake_to(t);
            let outcome = sess.step()?;
            let completions = sess.take_completions();
            h.completed += completions.len();
            (outcome, completions, sess.now())
        };
        self.account(rep, &completions);
        match outcome {
            StepOutcome::Progressed => self.schedule_wake(rep, now),
            StepOutcome::Parked { until: Some(w) } => self.schedule_wake(rep, w.max(now)),
            StepOutcome::Parked { until: None } | StepOutcome::Done => {
                if matches!(self.handles[rep].state, ReplicaState::Draining) {
                    self.retire(rep, now.max(t));
                }
            }
        }
        Ok(())
    }

    /// Folds a batch of completions into tenant and fleet accounting.
    fn account(&mut self, rep: usize, completions: &[Completion]) {
        for c in completions {
            self.completed += 1;
            self.makespan = self.makespan.max(c.t);
            self.metrics.inc("completed");
            self.metrics.inc(&format!("replica{rep}_completed"));
            self.metrics.observe("e2e", c.e2e);
            self.metrics.observe("queue_wait", c.queue_wait);
            self.metrics.observe(&format!("replica{rep}_e2e"), c.e2e);
            let Some(&tenant) = self.origin.get(&c.id) else { continue };
            let Some(acc) = self.tenants.get_mut(&tenant) else { continue };
            acc.completed += 1;
            let targets = &self.classes[acc.class as usize].targets;
            let check =
                targets.check(Secs::new(c.ttft), c.per_token.map(Secs::new), Secs::new(c.e2e));
            acc.slo.record(check);
        }
    }

    /// Finishes a drained replica's session and retires it.
    fn retire(&mut self, rep: usize, t: f64) {
        self.cancel_wake(rep);
        if let Some(sess) = self.handles[rep].session.take() {
            let report = sess.finish();
            self.handles[rep].reports.push(report);
        }
        self.handles[rep].state = ReplicaState::Down;
        self.metrics.inc("scale_downs");
        self.events.push(FleetEvent::ReplicaDown { t, replica: rep });
    }

    fn apply_control(&mut self, control: Control, t: f64) -> Result<(), FleetError> {
        match control {
            Control::Lose(rep) => self.lose_replica(rep, t),
            Control::Deploy(rep) | Control::ScaleUp(rep) => {
                let deployable = matches!(
                    self.handles[rep].state,
                    ReplicaState::Standby | ReplicaState::Lost { .. } | ReplicaState::Down
                );
                if deployable {
                    self.handles[rep].session = Some(self.handles[rep].spec.spawn()?);
                    let ready_at = t + self.handles[rep].spec.deploy_cost();
                    self.handles[rep].state = ReplicaState::Deploying { ready_at };
                    self.metrics.inc("deploys");
                    if matches!(control, Control::ScaleUp(_)) {
                        self.metrics.inc("scale_ups");
                    }
                    self.events.push(FleetEvent::ReplicaDeploying { t, replica: rep, ready_at });
                    self.push_control(ready_at, Control::Ready(rep));
                }
                Ok(())
            }
            Control::Ready(rep) => {
                if matches!(self.handles[rep].state, ReplicaState::Deploying { .. }) {
                    self.handles[rep].state = ReplicaState::Active;
                    if let Some(sess) = self.handles[rep].session.as_mut() {
                        // The replica's life starts now: no fictitious
                        // idle-from-zero in its log.
                        sess.skip_to(t);
                    }
                    self.events.push(FleetEvent::ReplicaReady { t, replica: rep });
                    self.schedule_wake(rep, t);
                }
                Ok(())
            }
            Control::ScaleDown(rep) => {
                if matches!(self.handles[rep].state, ReplicaState::Active) {
                    self.handles[rep].state = ReplicaState::Draining;
                    self.events.push(FleetEvent::ReplicaDraining { t, replica: rep });
                    // One wake so an already quiescent replica retires
                    // immediately instead of lingering.
                    let wake_at = self.handles[rep].session.as_ref().map_or(t, |s| s.now().max(t));
                    self.schedule_wake(rep, wake_at);
                }
                Ok(())
            }
        }
    }

    /// Loses a replica: its session is harvested (completions kept, report
    /// archived) and every queued or in-flight request reroutes onto the
    /// survivors with its original arrival stamp.
    fn lose_replica(&mut self, rep: usize, t: f64) -> Result<(), FleetError> {
        self.cancel_wake(rep);
        let Some(mut sess) = self.handles[rep].session.take() else { return Ok(()) };
        let completions = sess.take_completions();
        self.handles[rep].completed += completions.len();
        self.account(rep, &completions);
        let stranded = sess.extract_queued();
        let report = sess.finish();
        self.handles[rep].reports.push(report);
        self.handles[rep].state = ReplicaState::Lost { at: t };
        self.metrics.inc("replicas_lost");
        let mut rerouted = 0usize;
        for req in &stranded {
            if self.reroute(*req, rep, t) {
                rerouted += 1;
            }
        }
        self.events.push(FleetEvent::ReplicaLost { t, replica: rep, rerouted });
        Ok(())
    }

    /// Re-dispatches one stranded request at the loss instant. Returns
    /// whether a survivor took it (otherwise it counts as lost).
    fn reroute(&mut self, req: TimedRequest, from: usize, t: f64) -> bool {
        let id = req.request.id;
        let tenant = self.origin.get(&id).copied();
        let class_idx =
            tenant.and_then(|tn| self.tenants.get(&tn)).map(|acc| acc.class).unwrap_or(0);
        let cands = self.candidates();
        let class = &self.classes[class_idx as usize];
        match self.router.choose(class, &cands) {
            Some(to) => {
                self.rerouted += 1;
                self.metrics.inc("rerouted");
                self.metrics.inc(&format!("replica{to}_dispatched"));
                self.handles[to].dispatched += 1;
                if let Some(tn) = tenant {
                    if let Some(acc) = self.tenants.get_mut(&tn) {
                        acc.rerouted += 1;
                    }
                }
                self.events.push(FleetEvent::Reroute { t, id, from, to });
                let mut wake_at = t;
                if let Some(sess) = self.handles[to].session.as_mut() {
                    sess.inject(req);
                    wake_at = sess.now().max(t);
                }
                self.schedule_wake(to, wake_at);
                true
            }
            None => {
                self.lost += 1;
                self.metrics.inc("requests_lost");
                false
            }
        }
    }

    /// Rolls the run state up into the final report.
    fn into_report(mut self) -> FleetReport {
        let mut weighted_violations = 0.0f64;
        let mut weighted_checked = 0.0f64;
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for (id, acc) in &self.tenants {
            let class = &self.classes[acc.class as usize];
            weighted_violations += class.weight * acc.slo.violations as f64;
            weighted_checked += class.weight * acc.slo.checked as f64;
            self.metrics.gauge(&format!("tenant{id}_violation_rate"), acc.slo.violation_rate());
            tenants.push(TenantReport {
                tenant: *id,
                class: class.name.clone(),
                dispatched: acc.dispatched,
                rejected: acc.rejected,
                rerouted: acc.rerouted,
                completed: acc.completed,
                slo: acc.slo,
            });
        }
        let weighted_violation_rate =
            if weighted_checked > 0.0 { weighted_violations / weighted_checked } else { 0.0 };
        self.metrics.gauge("weighted_violation_rate", weighted_violation_rate);
        self.metrics.gauge("makespan", self.makespan);
        let replicas = self
            .handles
            .into_iter()
            .map(|h| ReplicaReport {
                name: h.spec.name.clone(),
                state: h.state,
                dispatched: h.dispatched,
                completed: h.completed,
                reports: h.reports,
            })
            .collect();
        FleetReport {
            dispatched: self.dispatched,
            rejected: self.rejected,
            rerouted: self.rerouted,
            completed: self.completed,
            lost: self.lost,
            makespan: self.makespan,
            weighted_violation_rate,
            tenants,
            replicas,
            metrics: self.metrics.snapshot(),
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_entries_order_by_time_kind_replica_seq() {
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        heap.push(Entry { t: 2.0, kind: K_WAKE, replica: 0, seq: 4 });
        heap.push(Entry { t: 1.0, kind: K_WAKE, replica: 1, seq: 3 });
        heap.push(Entry { t: 1.0, kind: K_CONTROL, replica: 9, seq: 5 });
        heap.push(Entry { t: 1.0, kind: K_WAKE, replica: 0, seq: 6 });
        heap.push(Entry { t: 1.0, kind: K_ARRIVAL, replica: 0, seq: 7 });
        let order: Vec<(f64, u8, usize)> =
            std::iter::from_fn(|| heap.pop()).map(|e| (e.t, e.kind, e.replica)).collect();
        assert_eq!(
            order,
            vec![
                (1.0, K_CONTROL, 9),
                (1.0, K_ARRIVAL, 0),
                (1.0, K_WAKE, 0),
                (1.0, K_WAKE, 1),
                (2.0, K_WAKE, 0),
            ]
        );
    }
}
