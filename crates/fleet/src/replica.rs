//! Replica specification, lifecycle state, and runtime handle.

use exegpt::{Engine, ScheduleConfig};
use exegpt_cluster::LoadSource;
use exegpt_serve::{ReplicaSession, ServeLoop, ServeOptions, ServeReport};
use serde::Serialize;

use crate::error::FleetError;

/// The static description of one replica: a warm engine on its own
/// (possibly heterogeneous) GPU pool, the schedule it serves, and its
/// serving options. Building the spec validates the schedule on the pool
/// and precomputes the two signals the fabric needs — the plan's estimated
/// latency (SLO-aware routing) and the DRAM deploy cost (autoscaling and
/// recovery).
#[derive(Clone)]
pub struct ReplicaSpec {
    /// Replica name (reports and logs).
    pub name: String,
    engine: Engine,
    cfg: ScheduleConfig,
    opts: ServeOptions,
    /// Whether the replica starts as a standby (not routable until a
    /// scale-up deploys it) instead of active.
    pub standby: bool,
    plan_latency: f64,
    deploy_cost: f64,
}

impl ReplicaSpec {
    /// Creates a replica spec, validating `cfg` on the engine's pool.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Serve`] when the schedule is infeasible on the
    /// pool or the serving options are invalid.
    pub fn new(
        name: &str,
        engine: Engine,
        cfg: ScheduleConfig,
        opts: ServeOptions,
    ) -> Result<Self, FleetError> {
        // A throwaway session both validates (schedule feasibility, option
        // ranges) and yields the installed plan's latency estimate.
        let probe = ServeLoop::new(engine.clone(), &cfg, opts.clone())?.into_replica()?;
        let plan_latency = probe.plan_latency();
        let deploy_cost = engine.deploy_time(LoadSource::Dram).as_secs();
        Ok(Self { name: name.into(), engine, cfg, opts, standby: false, plan_latency, deploy_cost })
    }

    /// Marks the replica as a standby: it starts unroutable and joins the
    /// fleet only when a scale-up deploys it.
    pub fn standby(mut self) -> Self {
        self.standby = true;
        self
    }

    /// The installed plan's estimated per-request latency in seconds.
    pub fn plan_latency(&self) -> f64 {
        self.plan_latency
    }

    /// Virtual seconds to deploy the replica's model from DRAM — charged
    /// before a spun-up or recovered replica becomes routable.
    pub fn deploy_cost(&self) -> f64 {
        self.deploy_cost
    }

    /// The schedule the replica serves.
    pub fn config(&self) -> ScheduleConfig {
        self.cfg
    }

    /// Spawns a fresh serving session for this replica.
    pub(crate) fn spawn(&self) -> Result<ReplicaSession, FleetError> {
        Ok(ServeLoop::new(self.engine.clone(), &self.cfg, self.opts.clone())?.into_replica()?)
    }
}

impl std::fmt::Debug for ReplicaSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSpec")
            .field("name", &self.name)
            .field("config", &self.cfg.describe())
            .field("standby", &self.standby)
            .field("plan_latency", &self.plan_latency)
            .field("deploy_cost", &self.deploy_cost)
            .finish()
    }
}

/// Lifecycle state of a replica in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ReplicaState {
    /// Provisioned but not deployed; joins on a scale-up.
    Standby,
    /// Paying its deploy cost; routable at `ready_at`.
    Deploying {
        /// Virtual time the replica becomes routable.
        ready_at: f64,
    },
    /// Serving and routable.
    Active,
    /// Finishing queued work after a scale-down; not routable.
    Draining,
    /// Lost to a fleet-level fault at `at`; work was rerouted.
    Lost {
        /// Loss time.
        at: f64,
    },
    /// Retired after draining.
    Down,
}

impl ReplicaState {
    /// Whether the router may dispatch new arrivals here.
    pub fn routable(&self) -> bool {
        matches!(self, ReplicaState::Active)
    }
}

/// A replica at run time: its spec, lifecycle state, live session (when
/// deployed), and the reports of every session it has run (a replica that
/// is lost and later recovers contributes one report per life).
pub(crate) struct ReplicaHandle {
    pub(crate) spec: ReplicaSpec,
    pub(crate) state: ReplicaState,
    pub(crate) session: Option<ReplicaSession>,
    pub(crate) reports: Vec<ServeReport>,
    pub(crate) dispatched: usize,
    pub(crate) completed: usize,
}

impl ReplicaHandle {
    pub(crate) fn new(spec: ReplicaSpec) -> Self {
        let state = if spec.standby { ReplicaState::Standby } else { ReplicaState::Active };
        Self { spec, state, session: None, reports: Vec::new(), dispatched: 0, completed: 0 }
    }
}

/// Per-replica slice of the fleet report.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaReport {
    /// Replica name.
    pub name: String,
    /// Final lifecycle state.
    pub state: ReplicaState,
    /// Requests dispatched to the replica (including reroutes onto it).
    pub dispatched: usize,
    /// Requests it completed.
    pub completed: usize,
    /// One serving report per session the replica ran (recovery after a
    /// loss starts a new session).
    pub reports: Vec<ServeReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_active_is_routable() {
        assert!(ReplicaState::Active.routable());
        for s in [
            ReplicaState::Standby,
            ReplicaState::Deploying { ready_at: 1.0 },
            ReplicaState::Draining,
            ReplicaState::Lost { at: 2.0 },
            ReplicaState::Down,
        ] {
            assert!(!s.routable());
        }
    }
}
