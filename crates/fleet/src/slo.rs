//! Per-tenant SLO classes.

use exegpt_serve::SloTargets;
use exegpt_units::Secs;
use serde::Serialize;

/// A service class shared by one or more tenants: latency targets checked
/// per completion, and a weight for the fleet's rolled-up violation score.
#[derive(Debug, Clone, PartialEq)]
pub struct SloClass {
    /// Human-readable class name (e.g. `interactive`, `batch`).
    pub name: String,
    /// Latency targets every completion of this class is checked against.
    pub targets: SloTargets,
    /// Relative weight of this class in the fleet's weighted violation
    /// rate (higher = a violation here matters more).
    pub weight: f64,
}

impl SloClass {
    /// An interactive class: end-to-end bound and full weight.
    pub fn interactive(name: &str, e2e: Secs) -> Self {
        Self { name: name.into(), targets: SloTargets::e2e(e2e), weight: 1.0 }
    }

    /// A best-effort batch class: no targets, zero weight.
    pub fn batch(name: &str) -> Self {
        Self { name: name.into(), targets: SloTargets::unconstrained(), weight: 0.0 }
    }

    /// Whether the class's parameters are usable.
    pub fn is_valid(&self) -> bool {
        !self.name.is_empty() && self.weight.is_finite() && self.weight >= 0.0
    }
}

/// Per-tenant accounting rolled up into the fleet report.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TenantReport {
    /// Tenant id.
    pub tenant: u32,
    /// The tenant's SLO-class name.
    pub class: String,
    /// Requests dispatched to a replica on first arrival.
    pub dispatched: usize,
    /// Requests rejected at arrival (no routable replica).
    pub rejected: usize,
    /// Re-dispatches after a replica loss (a request may reroute more than
    /// once).
    pub rerouted: usize,
    /// Requests completed.
    pub completed: usize,
    /// SLO accounting over this tenant's completions.
    pub slo: exegpt_serve::SloOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_valid() {
        assert!(SloClass::interactive("chat", Secs::new(10.0)).is_valid());
        assert!(SloClass::batch("batch").is_valid());
        let bad = SloClass { name: String::new(), ..SloClass::batch("x") };
        assert!(!bad.is_valid());
    }
}
