//! Acceptance tests for the fleet fabric.
//!
//! * **Single-replica equivalence**: a fleet of one replays the
//!   single-replica serving loop's golden event log byte for byte — the
//!   fabric adds no behaviour to the loop body, only a clock.
//! * **Determinism**: the same trace and configuration reproduce every
//!   replica's event log and the fleet log byte-identically, at any
//!   replica count and through a replica loss.
//! * **Conservation**: every dispatched request is completed — even when a
//!   replica is lost mid-run and its queued and in-flight work reroutes
//!   onto survivors. Zero requests lost, per-tenant counts sum to the
//!   trace length.

use std::sync::{Arc, OnceLock};

use exegpt::Engine;
use exegpt_cluster::ClusterSpec;
use exegpt_faults::{FaultEvent, FaultKind, FaultSchedule};
use exegpt_fleet::{DispatchPolicy, Fleet, FleetOptions, FleetReport, ReplicaSpec, SloClass};
use exegpt_model::ModelConfig;
use exegpt_profiler::{LayerProfile, ProfileOptions, Profiler};
use exegpt_serve::{ServeLoop, ServeOptions};
use exegpt_units::Secs;
use exegpt_workload::{PoissonStream, Task, TenantRequest, TimedRequest};

const SEED: u64 = 7;

fn profile() -> Arc<LayerProfile> {
    static PROFILE: OnceLock<Arc<LayerProfile>> = OnceLock::new();
    PROFILE
        .get_or_init(|| {
            Arc::new(
                Profiler::new(
                    ModelConfig::opt_13b(),
                    ClusterSpec::a40_cluster().subcluster(4).expect("fits"),
                )
                .run(&ProfileOptions::default())
                .expect("profiles"),
            )
        })
        .clone()
}

fn engine() -> Engine {
    let workload = Task::Translation.workload().expect("valid");
    Engine::builder()
        .model(ModelConfig::opt_13b())
        .cluster(ClusterSpec::a40_cluster().subcluster(4).expect("fits"))
        .workload(workload)
        .profile(profile())
        .build()
        .expect("builds")
}

/// A Poisson stream wrapped as a single-tenant trace: identical
/// `TimedRequest`s to what the single-replica loop would consume.
fn trace(rate: f64, total: usize) -> Vec<TenantRequest> {
    let workload = Task::Translation.workload().expect("valid");
    PoissonStream::new(&workload, rate, SEED)
        .take(total)
        .map(|request| TenantRequest { tenant: 0, class: 0, request })
        .collect()
}

fn replica(name: &str, engine: &Engine, cfg: exegpt::ScheduleConfig) -> ReplicaSpec {
    let opts = ServeOptions { adaptive: false, ..ServeOptions::default() };
    ReplicaSpec::new(name, engine.clone(), cfg, opts).expect("valid replica")
}

/// Every event log a fleet run produced, concatenated: the fabric's own
/// log plus each replica session's JSONL rendering.
fn all_logs(report: &FleetReport) -> String {
    let mut out = report.events.to_jsonl();
    for r in &report.replicas {
        for s in &r.reports {
            out.push_str(&s.events.to_jsonl());
        }
    }
    out
}

#[test]
fn fleet_of_one_reproduces_the_single_replica_golden_log() {
    let engine = engine();
    let schedule = engine.schedule(Secs::INFINITY).expect("schedules");
    let rate = 0.5 * schedule.estimate.throughput;
    let total = 600;

    let opts = ServeOptions { adaptive: false, ..ServeOptions::default() };
    let arrivals: Vec<TimedRequest> = trace(rate, total).iter().map(|r| r.request).collect();
    let golden = ServeLoop::new(engine.clone(), &schedule.config, opts)
        .expect("builds")
        .run(arrivals)
        .expect("runs");

    let fleet =
        Fleet::new(vec![replica("solo", &engine, schedule.config)], FleetOptions::default())
            .expect("valid fleet");
    let report = fleet.run(trace(rate, total)).expect("runs");

    assert_eq!(report.dispatched, total);
    assert_eq!(report.completed, total);
    assert_eq!(report.replicas.len(), 1);
    assert_eq!(report.replicas[0].reports.len(), 1);
    let fleet_log = report.replicas[0].reports[0].events.to_jsonl();
    assert_eq!(
        fleet_log,
        golden.events.to_jsonl(),
        "a fleet of one must replay the single-replica event log verbatim"
    );
}

#[test]
fn fleet_runs_are_byte_deterministic_at_any_replica_count() {
    let engine = engine();
    let schedule = engine.schedule(Secs::INFINITY).expect("schedules");
    for n in 1..=3usize {
        let rate = 0.5 * schedule.estimate.throughput * n as f64;
        let build = || {
            let specs =
                (0..n).map(|i| replica(&format!("r{i}"), &engine, schedule.config)).collect();
            Fleet::new(
                specs,
                FleetOptions {
                    policy: DispatchPolicy::LeastOutstanding,
                    ..FleetOptions::default()
                },
            )
            .expect("valid fleet")
        };
        let a = build().run(trace(rate, 400)).expect("runs");
        let b = build().run(trace(rate, 400)).expect("runs");
        assert_eq!(a.completed, 400);
        assert_eq!(all_logs(&a), all_logs(&b), "rerun with {n} replicas must be byte-identical");
    }
}

#[test]
fn replica_loss_reroutes_everything_and_loses_nothing() {
    let engine = engine();
    let schedule = engine.schedule(Secs::INFINITY).expect("schedules");
    let total = 800;
    let rate = 0.8 * schedule.estimate.throughput;
    let stream = trace(rate, total);
    let horizon = stream.last().expect("non-empty").request.arrival;
    let faults = FaultSchedule::new(vec![FaultEvent {
        t: 0.5 * horizon,
        kind: FaultKind::GpuFail { gpu: 1 },
    }])
    .expect("valid schedule");

    let build = || {
        Fleet::new(
            vec![replica("r0", &engine, schedule.config), replica("r1", &engine, schedule.config)],
            FleetOptions {
                policy: DispatchPolicy::KvHeadroom,
                faults: Some(faults.clone()),
                ..FleetOptions::default()
            },
        )
        .expect("valid fleet")
    };
    let report = build().run(stream.clone()).expect("runs");

    assert_eq!(report.dispatched, total, "every arrival is dispatched");
    assert_eq!(report.rejected, 0, "a survivor always exists");
    assert_eq!(report.lost, 0, "replica loss must not lose requests");
    assert_eq!(report.completed, total, "every request completes on the survivor");
    assert!(report.rerouted > 0, "the loss must strand in-flight work to reroute");
    let by_tenant: usize = report.tenants.iter().map(|t| t.completed).sum();
    assert_eq!(by_tenant, total, "per-tenant accounting conserves requests");
    // The lost replica archived its partial session; the survivor ran on.
    assert_eq!(report.replicas[1].reports.len(), 1);
    assert!(matches!(report.replicas[1].state, exegpt_fleet::ReplicaState::Lost { .. }));

    // And the whole scenario — loss, reroute and all — is reproducible.
    let again = build().run(stream).expect("runs");
    assert_eq!(all_logs(&report), all_logs(&again), "loss scenario must be deterministic");
}

#[test]
fn tight_classes_route_to_fitting_replicas() {
    // Two identical pools: SLO-aware degenerates to least-outstanding and
    // must still complete everything (the policy's discriminating case
    // runs in the heterogeneous fleet-smoke binary).
    let engine = engine();
    let schedule = engine.schedule(Secs::INFINITY).expect("schedules");
    let rate = 0.6 * schedule.estimate.throughput;
    let fleet = Fleet::new(
        vec![replica("r0", &engine, schedule.config), replica("r1", &engine, schedule.config)],
        FleetOptions {
            policy: DispatchPolicy::SloAware,
            classes: vec![SloClass::interactive("chat", Secs::new(120.0))],
            ..FleetOptions::default()
        },
    )
    .expect("valid fleet");
    let report = fleet.run(trace(rate, 400)).expect("runs");
    assert_eq!(report.completed, 400);
    assert!(report.tenants[0].slo.is_consistent());
    // Both replicas took a share: least-outstanding load-balances.
    assert!(report.replicas.iter().all(|r| r.dispatched > 0));
}
