//! Key/value-cache accounting under the three disciplines that
//! differentiate the evaluated systems (paper §2, §3).
//!
//! * [`ReservePolicy::UpFront`] — FasterTransformer/DSI: a query reserves
//!   cache for its input plus the *maximum* output length at admission, and
//!   nothing is reclaimed before the whole batch finishes.
//! * [`ReservePolicy::Incremental`] — ExeGPT/ORCA: a query reserves its
//!   input at admission and one token per decoding iteration; early
//!   termination releases (compacts) its entries immediately.
//! * [`ReservePolicy::Paged`] — vLLM: like incremental, but space is
//!   granted in fixed-size pages, wasting at most one partial page per
//!   query.

use std::collections::BTreeMap;

use crate::slab::Slab;

/// Cache reservation discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservePolicy {
    /// Reserve `input + max_output` tokens at admission (FT/DSI).
    UpFront,
    /// Reserve exactly the tokens held, grow per iteration (ExeGPT/ORCA).
    Incremental,
    /// Incremental, rounded up to pages of the given token count (vLLM).
    Paged {
        /// Tokens per page (vLLM's default block size is 16).
        page_tokens: usize,
    },
}

/// Tracks KV-cache bytes on the most loaded GPU of a deployment.
///
/// The tracker works in *tokens × bytes-per-token* on the bottleneck GPU
/// (the stage holding the most layers, divided by its tensor-parallel
/// degree) — the GPU whose capacity constrains the whole schedule.
///
/// # Example
///
/// ```
/// use exegpt_runner::{KvTracker, ReservePolicy};
///
/// let mut kv = KvTracker::new(1000.0, 1_000_000, ReservePolicy::Incremental);
/// assert!(kv.try_admit(1, 100, 0));
/// assert!(kv.grow(1, 1));
/// kv.release(1);
/// assert_eq!(kv.used_bytes(), 0);
/// assert!(kv.peak_bytes() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KvTracker {
    bytes_per_token: f64,
    capacity_bytes: u64,
    policy: ReservePolicy,
    /// Per-query entries in a slot-reusing arena: admissions recycle the
    /// slots of retired queries instead of allocating tree nodes, and the
    /// per-iteration bulk growth ([`grow_all`](Self::grow_all)) is one
    /// contiguous scan.
    entries: Slab<KvEntry>,
    /// Query id → arena slot, for the per-request (admit/release) paths.
    index: BTreeMap<u64, usize>,
    used_bytes: u64,
    peak_bytes: u64,
    /// Tokens clamped at capacity by [`grow_or_clamp`](Self::grow_or_clamp).
    clamped_tokens: u64,
}

/// One resident query's reservation.
#[derive(Debug, Clone, PartialEq)]
struct KvEntry {
    id: u64,
    held: usize,
}

impl KvTracker {
    /// Creates a tracker with `bytes_per_token` per cached token on the
    /// bottleneck GPU and `capacity_bytes` available for KV entries.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_token` is not positive.
    pub fn new(bytes_per_token: f64, capacity_bytes: u64, policy: ReservePolicy) -> Self {
        assert!(bytes_per_token > 0.0, "bytes per token must be positive");
        Self {
            bytes_per_token,
            capacity_bytes,
            policy,
            entries: Slab::new(),
            index: BTreeMap::new(),
            used_bytes: 0,
            peak_bytes: 0,
            clamped_tokens: 0,
        }
    }

    /// Stores an entry for `id` holding `held` tokens. A re-admission of a
    /// resident id replaces its entry (matching the previous map-backed
    /// behaviour, which never reclaimed the overwritten reservation).
    fn store(&mut self, id: u64, held: usize) {
        let slot = self.entries.insert(KvEntry { id, held });
        if let Some(old) = self.index.insert(id, slot) {
            self.entries.remove(old);
        }
    }

    /// Bytes reserved for a query holding `held` tokens.
    fn entry_bytes(&self, held: usize) -> u64 {
        reserved_bytes(self.bytes_per_token, self.policy, held)
    }

    /// Tries to admit query `id` holding `input_tokens`; `max_output`
    /// matters only for [`ReservePolicy::UpFront`], which reserves it all
    /// immediately. Returns `false` (admitting nothing) on overflow.
    pub fn try_admit(&mut self, id: u64, input_tokens: usize, max_output: usize) -> bool {
        let held = match self.policy {
            ReservePolicy::UpFront => input_tokens + max_output,
            _ => input_tokens,
        };
        let add = self.entry_bytes(held);
        if self.used_bytes + add > self.capacity_bytes {
            return false;
        }
        self.store(id, held);
        self.used_bytes += add;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
        true
    }

    /// Admits query `id` holding `tokens` tokens *without* a capacity
    /// check, used when migrating resident queries into a freshly sized
    /// tracker at a plan swap: evicting mid-flight queries is not an
    /// option, so a swap may transiently over-commit the new plan's
    /// capacity (visible in [`used_bytes`](Self::used_bytes) /
    /// [`peak_bytes`](Self::peak_bytes)); subsequent admissions still go
    /// through [`try_admit`](Self::try_admit) and see the over-commit.
    pub fn admit_unchecked(&mut self, id: u64, tokens: usize) {
        let add = self.entry_bytes(tokens);
        self.store(id, tokens);
        self.used_bytes += add;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
    }

    /// Grows query `id` by `tokens` newly generated tokens. Under
    /// [`ReservePolicy::UpFront`] this is a no-op (space was pre-reserved).
    /// Returns `false` on overflow (the growth is not applied).
    ///
    /// This runs once per pooled query per decoding iteration — the hottest
    /// tracker path — so it updates the entry in place rather than paying a
    /// second tree traversal for a re-insert.
    pub fn grow(&mut self, id: u64, tokens: usize) -> bool {
        if matches!(self.policy, ReservePolicy::UpFront) {
            return true;
        }
        let (bpt, policy) = (self.bytes_per_token, self.policy);
        let Some(entry) = self.index.get(&id).copied().and_then(|s| self.entries.get_mut(s)) else {
            return false;
        };
        let before = reserved_bytes(bpt, policy, entry.held);
        let after = reserved_bytes(bpt, policy, entry.held + tokens);
        let add = after - before;
        if self.used_bytes + add > self.capacity_bytes {
            return false;
        }
        entry.held += tokens;
        self.used_bytes += add;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
        true
    }

    /// [`grow`](Self::grow) for call sites that deliberately treat a failed
    /// growth as clamp-at-capacity: the entry keeps its current reservation
    /// and the clamp is counted in [`clamped_tokens`](Self::clamped_tokens)
    /// instead of being silently dropped. This is modeled behaviour — the
    /// decode loops keep generating while the KV reservation saturates, the
    /// same skip semantics as [`grow_all`](Self::grow_all) — not an error.
    pub fn grow_or_clamp(&mut self, id: u64, tokens: usize) {
        if !self.grow(id, tokens) {
            self.clamped_tokens += tokens as u64;
        }
    }

    /// Tokens whose growth was clamped at capacity (or targeted a retired
    /// id) via [`grow_or_clamp`](Self::grow_or_clamp). Diagnostic only —
    /// never serialized into event logs.
    pub fn clamped_tokens(&self) -> u64 {
        self.clamped_tokens
    }

    /// Grows *every* resident query by `tokens` newly generated tokens in
    /// one arena scan — the batched form of calling
    /// [`grow`](Self::grow) per pooled query each decoding iteration, for
    /// runs where the pool and the resident set coincide (RRA decode
    /// phases; under WAA the encoder group holds entries that must not
    /// grow, so the per-id path applies there).
    ///
    /// Entries whose growth would overflow capacity are skipped — the same
    /// not-applied semantics as a failed [`grow`](Self::grow) — and the
    /// scan visits entries in arena-slot order, so the outcome is
    /// deterministic. Under [`ReservePolicy::UpFront`] this is a no-op.
    /// Returns the number of entries grown.
    pub fn grow_all(&mut self, tokens: usize) -> usize {
        if matches!(self.policy, ReservePolicy::UpFront) {
            return self.index.len();
        }
        let (bpt, policy, cap) = (self.bytes_per_token, self.policy, self.capacity_bytes);
        let mut used = self.used_bytes;
        let mut grown = 0usize;
        for (_, e) in self.entries.iter_mut() {
            let before = reserved_bytes(bpt, policy, e.held);
            let after = reserved_bytes(bpt, policy, e.held + tokens);
            let add = after - before;
            if used + add > cap {
                continue;
            }
            e.held += tokens;
            used += add;
            grown += 1;
        }
        self.used_bytes = used;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
        grown
    }

    /// Releases all entries of query `id` (early-termination compaction).
    /// Unknown ids are ignored.
    pub fn release(&mut self, id: u64) {
        if let Some(slot) = self.index.remove(&id) {
            if let Some(entry) = self.entries.remove(slot) {
                let bytes = self.entry_bytes(entry.held);
                self.used_bytes = self.used_bytes.saturating_sub(bytes);
            }
        }
    }

    /// Releases a batch of queries — [`release`](Self::release) for each
    /// id, as one call for the abort/extraction paths that retire a whole
    /// pool at once.
    pub fn release_batch(&mut self, ids: &[u64]) {
        for &id in ids {
            self.release(id);
        }
    }

    /// Bytes currently reserved.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// High-water mark of reserved bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Number of resident queries.
    pub fn resident(&self) -> usize {
        self.index.len()
    }

    /// The capacity this tracker enforces.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }
}

/// Bytes reserved for a query holding `held` tokens under `policy`: the
/// policy's reserved-token count (exact, or rounded up to whole pages)
/// converted at `bytes_per_token`. A free function so in-place map updates
/// can price entries while the entry is mutably borrowed.
fn reserved_bytes(bytes_per_token: f64, policy: ReservePolicy, held: usize) -> u64 {
    let reserved = match policy {
        ReservePolicy::UpFront | ReservePolicy::Incremental => held,
        ReservePolicy::Paged { page_tokens } => {
            held.div_ceil(page_tokens.max(1)) * page_tokens.max(1)
        }
    };
    (reserved as f64 * bytes_per_token).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upfront_reserves_max_output() {
        let mut ft = KvTracker::new(10.0, 10_000, ReservePolicy::UpFront);
        assert!(ft.try_admit(1, 100, 400)); // 5000 bytes
        assert!(!ft.try_admit(2, 100, 500)); // would be 6000 more
        assert!(ft.grow(1, 50), "growth is free under up-front");
        assert_eq!(ft.used_bytes(), 5000);
    }

    #[test]
    fn incremental_grows_per_token() {
        let mut kv = KvTracker::new(10.0, 2_000, ReservePolicy::Incremental);
        assert!(kv.try_admit(1, 100, 999));
        assert_eq!(kv.used_bytes(), 1000);
        assert!(kv.grow(1, 100));
        assert_eq!(kv.used_bytes(), 2000);
        assert!(!kv.grow(1, 1), "capacity reached");
        assert_eq!(kv.used_bytes(), 2000, "failed growth is not applied");
    }

    #[test]
    fn release_compacts_and_keeps_peak() {
        let mut kv = KvTracker::new(1.0, 1000, ReservePolicy::Incremental);
        assert!(kv.try_admit(1, 600, 0));
        kv.release(1);
        assert_eq!(kv.used_bytes(), 0);
        assert_eq!(kv.peak_bytes(), 600);
        assert!(kv.try_admit(2, 900, 0), "space was reclaimed");
        kv.release(42); // unknown id is fine
    }

    #[test]
    fn paged_rounds_to_pages() {
        let mut kv = KvTracker::new(1.0, 1000, ReservePolicy::Paged { page_tokens: 16 });
        assert!(kv.try_admit(1, 17, 0)); // 2 pages = 32
        assert_eq!(kv.used_bytes(), 32);
        assert!(kv.grow(1, 10)); // 27 tokens still 2 pages
        assert_eq!(kv.used_bytes(), 32);
        assert!(kv.grow(1, 10)); // 37 tokens -> 3 pages
        assert_eq!(kv.used_bytes(), 48);
    }

    #[test]
    fn paged_wastes_less_than_upfront() {
        let cap = 100_000u64;
        let mut up = KvTracker::new(1.0, cap, ReservePolicy::UpFront);
        let mut pg = KvTracker::new(1.0, cap, ReservePolicy::Paged { page_tokens: 16 });
        // Queries with input 100, actual output 20, max output 500.
        let mut up_count = 0;
        let mut pg_count = 0;
        for id in 0..10_000 {
            if up.try_admit(id, 100, 500) {
                up_count += 1;
            }
            if pg.try_admit(id, 100, 500) && pg.grow(id, 20) {
                pg_count += 1;
            }
        }
        // Up-front reserves 600 tokens/query, paging ~128 (8 pages of 16):
        // a ~4.7x capacity advantage.
        assert!(pg_count > 4 * up_count, "paging should fit far more queries");
    }

    #[test]
    fn admit_unchecked_may_overcommit_but_blocks_later_admissions() {
        let mut kv = KvTracker::new(1.0, 100, ReservePolicy::Incremental);
        kv.admit_unchecked(1, 150); // migration: beyond capacity
        assert_eq!(kv.used_bytes(), 150);
        assert!(!kv.try_admit(2, 1, 0), "over-commit blocks new admissions");
        kv.release(1);
        assert!(kv.try_admit(2, 50, 0), "normal accounting resumes");
    }

    #[test]
    fn grow_all_matches_per_id_growth() {
        let mut bulk = KvTracker::new(10.0, 100_000, ReservePolicy::Incremental);
        let mut each = bulk.clone();
        for id in 0..5 {
            assert!(bulk.try_admit(id, 100, 0));
            assert!(each.try_admit(id, 100, 0));
        }
        assert_eq!(bulk.grow_all(1), 5);
        for id in 0..5 {
            assert!(each.grow(id, 1));
        }
        assert_eq!(bulk.used_bytes(), each.used_bytes());
        assert_eq!(bulk.peak_bytes(), each.peak_bytes());
        assert_eq!(bulk.resident(), each.resident());
    }

    #[test]
    fn grow_all_skips_entries_at_capacity() {
        // Two 45-token queries against 100 bytes at 1 byte/token: the first
        // grows to 46, the second would need 101 total and is skipped.
        let mut kv = KvTracker::new(1.0, 92, ReservePolicy::Incremental);
        assert!(kv.try_admit(1, 45, 0));
        assert!(kv.try_admit(2, 45, 0));
        assert_eq!(kv.grow_all(1), 2);
        assert_eq!(kv.used_bytes(), 92);
        assert_eq!(kv.grow_all(1), 0, "both entries now skip");
        assert_eq!(kv.used_bytes(), 92, "skipped growth is not applied");
    }

    #[test]
    fn grow_all_is_free_under_upfront() {
        let mut kv = KvTracker::new(1.0, 1000, ReservePolicy::UpFront);
        assert!(kv.try_admit(1, 10, 20));
        assert_eq!(kv.grow_all(5), 1);
        assert_eq!(kv.used_bytes(), 30);
    }

    #[test]
    fn release_batch_releases_each_id() {
        let mut kv = KvTracker::new(1.0, 1000, ReservePolicy::Incremental);
        assert!(kv.try_admit(1, 100, 0));
        assert!(kv.try_admit(2, 200, 0));
        assert!(kv.try_admit(3, 300, 0));
        kv.release_batch(&[1, 3, 42]); // unknown ids are fine
        assert_eq!(kv.used_bytes(), 200);
        assert_eq!(kv.resident(), 1);
    }

    #[test]
    fn slots_are_recycled_across_admissions() {
        let mut kv = KvTracker::new(1.0, 10_000, ReservePolicy::Incremental);
        for round in 0..100u64 {
            for i in 0..8 {
                assert!(kv.try_admit(round * 8 + i, 10, 0));
            }
            for i in 0..8 {
                kv.release(round * 8 + i);
            }
        }
        assert_eq!(kv.entries.capacity(), 8, "arena stays at the high-water mark");
        assert_eq!(kv.used_bytes(), 0);
    }

    #[test]
    fn grow_unknown_id_fails() {
        let mut kv = KvTracker::new(1.0, 100, ReservePolicy::Incremental);
        assert!(!kv.grow(9, 1));
    }

    #[test]
    fn grow_or_clamp_counts_clamped_tokens_without_applying_them() {
        let mut kv = KvTracker::new(1.0, 100, ReservePolicy::Incremental);
        assert!(kv.try_admit(1, 99, 0));
        kv.grow_or_clamp(1, 1); // fits: 100/100
        assert_eq!((kv.used_bytes(), kv.clamped_tokens()), (100, 0));
        kv.grow_or_clamp(1, 1); // clamped at capacity
        kv.grow_or_clamp(42, 3); // retired/unknown id also clamps
        assert_eq!((kv.used_bytes(), kv.clamped_tokens()), (100, 4));
    }

    #[test]
    #[should_panic(expected = "bytes per token")]
    fn zero_bytes_per_token_panics() {
        let _ = KvTracker::new(0.0, 100, ReservePolicy::Incremental);
    }
}
