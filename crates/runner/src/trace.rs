//! Execution traces: what ran where, when — the data behind the paper's
//! timeline figures (1, 3, 4), recorded from actual replays.

use serde::{Deserialize, Serialize};

/// What a trace span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// An encoding phase (prefill of admitted queries).
    Encode,
    /// A block of decoding iterations.
    Decode,
    /// A KV-cache handover between GPU groups (WAA).
    KvTransfer,
}

/// One timed span on one GPU group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Which GPU group executed it (`workers`, `encoders`, `decoders`).
    pub group: String,
    /// Span kind.
    pub kind: SpanKind,
    /// Start time (virtual seconds).
    pub t0: f64,
    /// End time.
    pub t1: f64,
    /// Queries involved.
    pub batch: usize,
}

/// A recorded execution trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a span (ignored if it has non-positive duration).
    pub fn record(&mut self, group: &str, kind: SpanKind, t0: f64, t1: f64, batch: usize) {
        if t1 > t0 {
            self.spans.push(Span { group: group.to_string(), kind, t0, t1, batch });
        }
    }

    /// All recorded spans in record order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Renders the first `window` seconds as an ASCII Gantt chart, one lane
    /// per GPU group: `E` encode, `d` decode, `k` KV transfer, `.` idle.
    ///
    /// # Example
    ///
    /// ```
    /// use exegpt_runner::{SpanKind, Trace};
    ///
    /// let mut t = Trace::new();
    /// t.record("workers", SpanKind::Encode, 0.0, 1.0, 4);
    /// t.record("workers", SpanKind::Decode, 1.0, 3.0, 64);
    /// let g = t.render_gantt(4.0, 40);
    /// assert!(g.contains('E') && g.contains('d'));
    /// ```
    pub fn render_gantt(&self, window: f64, width: usize) -> String {
        let width = width.max(10);
        let window =
            if window > 0.0 { window } else { self.spans.iter().map(|s| s.t1).fold(0.0, f64::max) };
        if window <= 0.0 {
            return String::from("(empty trace)\n");
        }
        // Stable lane order by first appearance.
        let mut groups: Vec<&str> = Vec::new();
        for s in &self.spans {
            if !groups.contains(&s.group.as_str()) {
                groups.push(&s.group);
            }
        }
        let mut out = String::new();
        for group in groups {
            let mut lane = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.group == group && s.t0 < window) {
                let a = ((s.t0 / window) * width as f64) as usize;
                let b = (((s.t1.min(window)) / window) * width as f64).ceil() as usize;
                let ch = match s.kind {
                    SpanKind::Encode => 'E',
                    SpanKind::Decode => 'd',
                    SpanKind::KvTransfer => 'k',
                };
                for c in lane.iter_mut().take(b.min(width)).skip(a) {
                    *c = ch;
                }
            }
            out.push_str(&format!("{group:>9} |"));
            out.extend(lane);
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:>9}  0s{}{window:.2}s   (E encode, d decode, k kv-transfer)\n",
            "",
            " ".repeat(width.saturating_sub(8))
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_orders_spans() {
        let mut t = Trace::new();
        t.record("workers", SpanKind::Encode, 0.0, 1.0, 8);
        t.record("workers", SpanKind::Decode, 1.0, 2.0, 64);
        t.record("workers", SpanKind::Decode, 2.0, 2.0, 64); // zero-length: dropped
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.spans()[0].kind, SpanKind::Encode);
    }

    #[test]
    fn gantt_shows_lanes_and_idle() {
        let mut t = Trace::new();
        t.record("encoders", SpanKind::Encode, 0.0, 1.0, 2);
        t.record("decoders", SpanKind::Decode, 0.5, 2.0, 32);
        t.record("decoders", SpanKind::KvTransfer, 2.0, 2.2, 2);
        let g = t.render_gantt(4.0, 40);
        assert!(g.contains("encoders"));
        assert!(g.contains("decoders"));
        assert!(g.contains('E') && g.contains('d') && g.contains('k'));
        assert!(g.contains('.'), "idle time is visible");
    }

    #[test]
    fn empty_trace_renders_gracefully() {
        assert!(Trace::new().render_gantt(0.0, 40).contains("empty"));
    }
}
