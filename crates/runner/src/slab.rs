//! A slot-reusing arena for per-request state.
//!
//! Discrete-event replays admit and retire requests millions of times per
//! run; keying per-request state by id in a tree map pays an allocation
//! per admission and a pointer chase per touch. [`Slab`] instead hands out
//! dense slot indices from a free list: admission reuses a retired
//! request's slot (no allocation once the high-water mark is reached),
//! lookups are direct indexing, and whole-arena sweeps are one contiguous
//! scan in slot order.
//!
//! Determinism: for a fixed sequence of `insert`/`remove` calls the
//! assigned slots — and therefore the iteration order — are fully
//! reproducible (the free list is LIFO), which is what lets the serving
//! loop's bulk KV accounting stay byte-deterministic.
//!
//! # Example
//!
//! ```
//! use exegpt_runner::Slab;
//!
//! let mut slab: Slab<&str> = Slab::new();
//! let a = slab.insert("alpha");
//! let b = slab.insert("beta");
//! assert_eq!(slab.get(a), Some(&"alpha"));
//! assert_eq!(slab.remove(a), Some("alpha"));
//! let c = slab.insert("gamma"); // reuses alpha's slot
//! assert_eq!(c, a);
//! assert_eq!(slab.len(), 2);
//! assert_eq!(slab.get(b), Some(&"beta"));
//! ```

/// A slot-reusing arena: `insert` returns a stable index, `remove` recycles
/// it, and iteration visits occupied slots in index order.
#[derive(Debug, Clone, PartialEq)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<usize>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Self { slots: Vec::new(), free: Vec::new() }
    }

    /// An empty arena with room for `cap` entries before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Self { slots: Vec::with_capacity(cap), free: Vec::new() }
    }

    /// Stores `value`, returning its slot. Freed slots are reused
    /// (most-recently-freed first) before the arena grows.
    pub fn insert(&mut self, value: T) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(value);
                slot
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() - 1
            }
        }
    }

    /// Removes and returns the value at `slot` (`None` if vacant or out of
    /// range).
    pub fn remove(&mut self, slot: usize) -> Option<T> {
        let value = self.slots.get_mut(slot)?.take()?;
        self.free.push(slot);
        Some(value)
    }

    /// The value at `slot`, if occupied.
    pub fn get(&self, slot: usize) -> Option<&T> {
        self.slots.get(slot)?.as_ref()
    }

    /// Mutable access to the value at `slot`, if occupied.
    pub fn get_mut(&mut self, slot: usize) -> Option<&mut T> {
        self.slots.get_mut(slot)?.as_mut()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slots allocated so far (occupied + free), the arena's high-water
    /// mark.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied `(slot, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|v| (i, v)))
    }

    /// Occupied `(slot, value)` pairs in slot order, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| s.as_mut().map(|v| (i, v)))
    }

    /// Empties the arena, keeping its allocation.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuse_is_lifo_and_deterministic() {
        let mut s: Slab<u32> = Slab::new();
        let a = s.insert(1);
        let b = s.insert(2);
        let c = s.insert(3);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(s.remove(b), Some(2));
        assert_eq!(s.remove(a), Some(1));
        // Most-recently-freed first: a's slot, then b's.
        assert_eq!(s.insert(4), a);
        assert_eq!(s.insert(5), b);
        assert_eq!(s.capacity(), 3, "no growth past the high-water mark");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn remove_vacant_or_out_of_range_is_none() {
        let mut s: Slab<u8> = Slab::new();
        let a = s.insert(9);
        assert_eq!(s.remove(a), Some(9));
        assert_eq!(s.remove(a), None, "double remove");
        assert_eq!(s.remove(99), None, "out of range");
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_is_in_slot_order() {
        let mut s: Slab<&str> = Slab::new();
        let a = s.insert("a");
        let _b = s.insert("b");
        let _c = s.insert("c");
        s.remove(a);
        let seen: Vec<_> = s.iter().collect();
        assert_eq!(seen, vec![(1, &"b"), (2, &"c")]);
        for (_, v) in s.iter_mut() {
            *v = "x";
        }
        assert!(s.iter().all(|(_, v)| *v == "x"));
    }

    #[test]
    fn clear_resets() {
        let mut s: Slab<u8> = Slab::new();
        s.insert(1);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.insert(2), 0);
    }
}
