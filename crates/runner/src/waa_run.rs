//! Discrete-event replay of a WAA schedule.
//!
//! The encode and decode groups run as coupled pipelines; the replay steps
//! in *rounds*, one decoding iteration of the pool per round, with one
//! encoder hand-over (batch + KV transfer via CPU staging) joining the pool
//! at each round boundary.

use exegpt::DynamicAdjuster;
use exegpt_sim::{SimError, Simulator, WaaConfig};
use exegpt_workload::{PoissonStream, Request, RequestStream, TimedRequest};

use crate::error::RunError;
use crate::kv::{KvTracker, ReservePolicy};
use crate::report::RunReport;
use crate::runner::{windowed_throughput, RunOptions};
use crate::trace::{SpanKind, Trace};

/// Exposed fraction of the KV handover (matches the simulator's overlap
/// assumption).
const KV_TRANSFER_EXPOSED: f64 = 0.3;

struct Active {
    req: Request,
    progress: usize,
    t_encoded: f64,
    arrival: f64,
}

pub(crate) fn run(
    sim: &Simulator,
    cfg: &WaaConfig,
    opts: &RunOptions,
) -> Result<RunReport, RunError> {
    let estimate = sim.evaluate_waa(cfg)?;
    let plan = sim.waa_plan(cfg)?;
    let profile = sim.profile();
    let w = sim.workload();
    let stages_d = plan.dec_layout.num_stages();

    // KV accounting on the bottleneck decode GPU.
    let worst_layers = plan
        .dec_alloc
        .iter()
        .zip(plan.dec_layout.stages())
        .map(|(&l, s)| l as f64 / s.tp as f64)
        .fold(0.0f64, f64::max);
    let bytes_per_token = sim.model().kv_bytes_per_token_per_layer() as f64 * worst_layers;
    let kv_capacity = sim
        .usable_capacity()
        .saturating_sub(estimate.memory.decoder_gpu.param_bytes)
        .saturating_sub(estimate.memory.decoder_gpu.activation_bytes);
    let mut kv = KvTracker::new(bytes_per_token, kv_capacity, ReservePolicy::Incremental);

    let adjuster = DynamicAdjuster::new(cfg.b_e, w.input().mean(), opts.adjust_threshold);

    let stream_workload = opts.request_workload.as_ref().unwrap_or(w);
    // FIFO queue (front = oldest), sorted by arrival time.
    let mut pending: Vec<TimedRequest> = match opts.arrival_rate {
        Some(rate) => {
            PoissonStream::new(stream_workload, rate, opts.seed).take(opts.num_queries).collect()
        }
        None => RequestStream::new(stream_workload, opts.seed)
            .take(opts.num_queries)
            .map(|request| TimedRequest { request, arrival: 0.0 })
            .collect(),
    };

    let mut pool: Vec<Active> = Vec::new();
    let mut t = 0.0f64;
    let mut latencies = Vec::with_capacity(opts.num_queries);
    let mut sojourns = Vec::new();
    let mut completion_times = Vec::with_capacity(opts.num_queries);
    let mut enc_stage_times = Vec::new();
    let mut dec_stage_times = Vec::new();
    let mut tokens: u64 = 0;
    let mut trace = opts.record_trace.then(Trace::new);

    while latencies.len() < opts.num_queries {
        // ---- Encoder side of this round ---------------------------------
        // Only queries that have arrived are admissible (prefix: the queue
        // is arrival-sorted).
        let arrived = pending.partition_point(|r| r.arrival <= t);
        let lens: Vec<usize> = pending[..arrived].iter().map(|r| r.request.input_len).collect();
        let selected = adjuster.select_batch(&lens, pool.len(), plan.b_d);
        let mut admitted: Vec<TimedRequest> = Vec::with_capacity(selected.len());
        let mut taken = vec![false; pending.len()];
        for &idx in &selected {
            let req = pending[idx];
            if !kv.try_admit(req.request.id, req.request.input_len, 0) {
                break;
            }
            taken[idx] = true;
            admitted.push(req);
        }
        if !admitted.is_empty() {
            let mut keep = Vec::with_capacity(pending.len() - admitted.len());
            for (i, req) in pending.into_iter().enumerate() {
                if !taken[i] {
                    keep.push(req);
                }
            }
            pending = keep;
        }
        if admitted.is_empty() && pool.is_empty() {
            if pending.is_empty() {
                break;
            }
            if arrived == 0 {
                t = pending[0].arrival;
                continue;
            }
            return Err(RunError::Stalled {
                why: format!(
                    "query {} ({} input tokens) cannot fit in the kv cache",
                    pending[0].request.id, pending[0].request.input_len
                ),
            });
        }

        let (p_enc, enc_tokens) = if admitted.is_empty() {
            (0.0, 0.0)
        } else {
            let mean_in: f64 = admitted.iter().map(|r| r.request.input_len as f64).sum::<f64>()
                / admitted.len() as f64;
            let mut bottleneck = 0.0f64;
            for (i, _) in plan.enc_layout.stages().iter().enumerate() {
                let t_layer = profile
                    .encode_layer_time(admitted.len() as f64, mean_in, 1)
                    .map_err(SimError::from)?;
                let handoff = profile.handoff_time(
                    admitted.len() as f64 * mean_in,
                    plan.enc_layout.boundary_intra_node(i),
                );
                bottleneck = bottleneck.max(plan.enc_alloc[i] as f64 * t_layer + handoff);
            }
            enc_stage_times.push(bottleneck);
            (bottleneck, admitted.len() as f64 * mean_in)
        };

        // ---- Decoder side of this round ----------------------------------
        let p_dec = if pool.is_empty() {
            0.0
        } else {
            let active = pool.len() as f64;
            let ctx: f64 =
                pool.iter().map(|a| (a.req.input_len + a.progress) as f64).sum::<f64>() / active;
            let b_m = cfg.b_m.min(pool.len()).max(1);
            let micro = active / b_m as f64;
            let mut worst = 0.0f64;
            for (i, stage) in plan.dec_layout.stages().iter().enumerate() {
                let t_layer = profile
                    .decode_layer_time(micro, ctx, w.input().mean(), stage.tp)
                    .map_err(SimError::from)?;
                let handoff = profile.handoff_time(micro, plan.dec_layout.boundary_intra_node(i));
                worst = worst.max(plan.dec_alloc[i] as f64 * t_layer + handoff);
            }
            dec_stage_times.push(worst);
            b_m.max(stages_d) as f64 * worst
        };

        // ---- Round boundary: handover + advance ---------------------------
        let t_kv = profile.kv_transfer_time(enc_tokens, plan.kv_layers) * KV_TRANSFER_EXPOSED;
        let round = p_enc.max(p_dec).max(t_kv);
        let t_start = t;
        t += round;
        if let Some(tr) = trace.as_mut() {
            tr.record("encoders", SpanKind::Encode, t_start, t_start + p_enc, admitted.len());
            tr.record("decoders", SpanKind::Decode, t_start, t_start + p_dec, pool.len());
            tr.record("handover", SpanKind::KvTransfer, t_start, t_start + t_kv, admitted.len());
        }
        if !pool.is_empty() {
            tokens += pool.len() as u64;
            let mut i = 0;
            while i < pool.len() {
                pool[i].progress += 1;
                let _ = kv.grow(pool[i].req.id, 1);
                if pool[i].progress >= pool[i].req.output_len {
                    let done = pool.swap_remove(i);
                    kv.release(done.req.id);
                    latencies.push(t - done.t_encoded);
                    if opts.arrival_rate.is_some() {
                        sojourns.push(t - done.arrival);
                    }
                    completion_times.push(t);
                } else {
                    i += 1;
                }
            }
        }
        for tr in admitted {
            pool.push(Active {
                req: tr.request,
                progress: 0,
                t_encoded: t_start,
                arrival: tr.arrival,
            });
        }
    }

    let (throughput, makespan) = windowed_throughput(&completion_times, opts.warmup_frac);
    Ok(RunReport {
        completed: latencies.len(),
        tokens_generated: tokens,
        makespan,
        throughput,
        latencies,
        encoder_stage_times: enc_stage_times,
        decoder_stage_times: dec_stage_times,
        peak_kv_bytes: kv.peak_bytes(),
        param_bytes: estimate.memory.decoder_gpu.param_bytes,
        trace,
        sojourn_times: sojourns,
    })
}
