//! Discrete-event replay of a WAA schedule.
//!
//! The encode and decode groups run as coupled pipelines; the replay steps
//! in *rounds*, one decoding iteration of the pool per round, with one
//! encoder hand-over (batch + KV transfer via CPU staging) joining the pool
//! at each round boundary.

use exegpt_sim::{ScheduleConfig, Simulator, WaaConfig};
use exegpt_units::Secs;
use exegpt_workload::{PoissonStream, Request, RequestStream, TimedRequest};

use crate::error::RunError;
use crate::exec::PhaseExecutor;
use crate::report::RunReport;
use crate::runner::{windowed_throughput, RunOptions};
use crate::trace::{SpanKind, Trace};

struct Active {
    req: Request,
    progress: usize,
    t_encoded: f64,
    arrival: f64,
}

pub(crate) fn run(
    sim: &Simulator,
    cfg: &WaaConfig,
    opts: &RunOptions,
) -> Result<RunReport, RunError> {
    let exec = PhaseExecutor::new(sim, &ScheduleConfig::Waa(*cfg))?;
    let scheduled_b_d = exec.scheduled_decode_batch();
    let w = sim.workload();
    let mut kv = exec.kv_tracker();

    let adjuster = exec.adjuster(opts.adjust_threshold);

    let stream_workload = opts.request_workload.as_ref().unwrap_or(w);
    // FIFO queue (front = oldest), sorted by arrival time.
    let mut pending: Vec<TimedRequest> = match opts.arrival_rate {
        Some(rate) => {
            PoissonStream::new(stream_workload, rate, opts.seed).take(opts.num_queries).collect()
        }
        None => RequestStream::new(stream_workload, opts.seed)
            .take(opts.num_queries)
            .map(|request| TimedRequest { request, arrival: 0.0 })
            .collect(),
    };

    let mut pool: Vec<Active> = Vec::new();
    let mut t = 0.0f64;
    let mut latencies = Vec::with_capacity(opts.num_queries);
    let mut sojourns = Vec::new();
    let mut completion_times = Vec::with_capacity(opts.num_queries);
    let mut enc_stage_times = Vec::new();
    let mut dec_stage_times = Vec::new();
    let mut tokens: u64 = 0;
    let mut trace = opts.record_trace.then(Trace::new);

    while latencies.len() < opts.num_queries {
        // ---- Encoder side of this round ---------------------------------
        // Only queries that have arrived are admissible (prefix: the queue
        // is arrival-sorted).
        let arrived = pending.partition_point(|r| r.arrival <= t);
        let lens: Vec<usize> = pending[..arrived].iter().map(|r| r.request.input_len).collect();
        let selected = adjuster.select_batch(&lens, pool.len(), scheduled_b_d);
        let mut admitted: Vec<TimedRequest> = Vec::with_capacity(selected.len());
        let mut taken = vec![false; pending.len()];
        for &idx in &selected {
            let req = pending[idx];
            if !kv.try_admit(req.request.id, req.request.input_len, 0) {
                break;
            }
            taken[idx] = true;
            admitted.push(req);
        }
        if !admitted.is_empty() {
            let mut keep = Vec::with_capacity(pending.len() - admitted.len());
            for (i, req) in pending.into_iter().enumerate() {
                if !taken[i] {
                    keep.push(req);
                }
            }
            pending = keep;
        }
        if admitted.is_empty() && pool.is_empty() {
            if pending.is_empty() {
                break;
            }
            if arrived == 0 {
                t = pending[0].arrival;
                continue;
            }
            return Err(RunError::Stalled {
                why: format!(
                    "query {} ({} input tokens) cannot fit in the kv cache",
                    pending[0].request.id, pending[0].request.input_len
                ),
            });
        }

        let (p_enc, enc_tokens) = if admitted.is_empty() {
            (0.0, 0.0)
        } else {
            let lens: Vec<usize> = admitted.iter().map(|r| r.request.input_len).collect();
            let enc = exec.encode_timing(&lens)?;
            enc_stage_times.push(enc.bottleneck.as_secs());
            (enc.bottleneck.as_secs(), enc.tokens)
        };

        // ---- Decoder side of this round ----------------------------------
        let p_dec = if pool.is_empty() {
            0.0
        } else {
            let active = pool.len() as f64;
            let ctx: f64 =
                pool.iter().map(|a| (a.req.input_len + a.progress) as f64).sum::<f64>() / active;
            let b_m = exec.decode_parallelism(pool.len());
            let dec = exec.decode_timing(b_m, pool.len(), ctx, false)?;
            dec_stage_times.push(dec.bottleneck.as_secs());
            dec.total.as_secs()
        };

        // ---- Round boundary: handover + advance ---------------------------
        let t_kv = exec.handover_time(enc_tokens).as_secs();
        let round = p_enc.max(p_dec).max(t_kv);
        let t_start = t;
        t += round;
        if let Some(tr) = trace.as_mut() {
            tr.record("encoders", SpanKind::Encode, t_start, t_start + p_enc, admitted.len());
            tr.record("decoders", SpanKind::Decode, t_start, t_start + p_dec, pool.len());
            tr.record("handover", SpanKind::KvTransfer, t_start, t_start + t_kv, admitted.len());
        }
        if !pool.is_empty() {
            tokens += pool.len() as u64;
            let mut i = 0;
            while i < pool.len() {
                pool[i].progress += 1;
                kv.grow_or_clamp(pool[i].req.id, 1);
                if pool[i].progress >= pool[i].req.output_len {
                    let done = pool.swap_remove(i);
                    kv.release(done.req.id);
                    latencies.push(t - done.t_encoded);
                    if opts.arrival_rate.is_some() {
                        sojourns.push(t - done.arrival);
                    }
                    completion_times.push(t);
                } else {
                    i += 1;
                }
            }
        }
        for tr in admitted {
            pool.push(Active {
                req: tr.request,
                progress: 0,
                t_encoded: t_start,
                arrival: tr.arrival,
            });
        }
    }

    let (throughput, makespan) = windowed_throughput(&completion_times, opts.warmup_frac);
    Ok(RunReport {
        completed: latencies.len(),
        tokens_generated: tokens,
        makespan: Secs::new(makespan),
        throughput,
        latencies,
        encoder_stage_times: enc_stage_times,
        decoder_stage_times: dec_stage_times,
        peak_kv_bytes: kv.peak_bytes(),
        param_bytes: exec.param_bytes(),
        trace,
        sojourn_times: sojourns,
    })
}
