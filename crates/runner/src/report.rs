//! Measured results of one execution run.

use exegpt_dist::stats;
use exegpt_units::Secs;
use serde::{Deserialize, Serialize};

use crate::trace::Trace;

/// Measurements collected by the runner over one run.
///
/// Throughput is measured over the post-warm-up window; latencies are per
/// completed query (from the start of the query's encoding to its final
/// token); stage-time vectors feed the Table 7 variance analysis; peak KV
/// bytes feed the Figure 9 memory comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Queries completed over the whole run.
    pub completed: usize,
    /// Output tokens generated over the whole run.
    pub tokens_generated: u64,
    /// Virtual end time of the run.
    pub makespan: Secs,
    /// Completed queries per second over the measurement window.
    pub throughput: f64,
    /// Per-query latencies in seconds (encode start → last token).
    pub latencies: Vec<f64>,
    /// Bottleneck-stage execution time of each encoding phase.
    pub encoder_stage_times: Vec<f64>,
    /// Bottleneck-stage execution time of each decoding iteration.
    pub decoder_stage_times: Vec<f64>,
    /// Peak KV-cache bytes observed on the bottleneck GPU.
    pub peak_kv_bytes: u64,
    /// Parameter bytes resident on the bottleneck GPU.
    pub param_bytes: u64,
    /// Execution trace, when requested via
    /// [`RunOptions::record_trace`](crate::RunOptions).
    pub trace: Option<Trace>,
    /// Per-query sojourn times (arrival → last token), populated only for
    /// open-loop runs ([`RunOptions::arrival_rate`](crate::RunOptions)) —
    /// the §7.6 SLA-(a) quantity.
    pub sojourn_times: Vec<f64>,
}

impl RunReport {
    /// The shared latency summary (count/mean/p50/p95/p99/max) of per-query
    /// latencies; `None` when nothing completed. The same
    /// [`stats::Summary`] shape backs the serving loop's metrics.
    pub fn latency_summary(&self) -> Option<stats::Summary> {
        stats::summary(&self.latencies)
    }

    /// The shared summary of sojourn times (arrival → last token); `None`
    /// when not an open-loop run.
    pub fn sojourn_summary(&self) -> Option<stats::Summary> {
        stats::summary(&self.sojourn_times)
    }

    /// Mean per-query latency (0 when nothing completed).
    pub fn mean_latency(&self) -> f64 {
        self.latency_summary().map_or(0.0, |s| s.mean)
    }

    /// 99th-percentile per-query latency (0 when nothing completed).
    pub fn p99_latency(&self) -> f64 {
        self.latency_summary().map_or(0.0, |s| s.p99)
    }

    /// Maximum per-query latency (0 when nothing completed).
    pub fn max_latency(&self) -> f64 {
        self.latency_summary().map_or(0.0, |s| s.max)
    }

    /// 99th-percentile sojourn time (0 when not an open-loop run) — the
    /// SLA-(a) quantity of §7.6: the timeframe within which 99% of all
    /// queries complete, including queueing.
    pub fn p99_sojourn(&self) -> f64 {
        self.sojourn_summary().map_or(0.0, |s| s.p99)
    }

    /// Mean and ±99th-percentile half-range of encoder stage times, the
    /// form Table 7 reports.
    pub fn encoder_stage_stats(&self) -> (f64, f64) {
        (
            stats::mean(&self.encoder_stage_times).unwrap_or(0.0),
            stats::pctl99_half_range(&self.encoder_stage_times).unwrap_or(0.0),
        )
    }

    /// Mean and ±99th-percentile half-range of decoder stage times.
    pub fn decoder_stage_stats(&self) -> (f64, f64) {
        (
            stats::mean(&self.decoder_stage_times).unwrap_or(0.0),
            stats::pctl99_half_range(&self.decoder_stage_times).unwrap_or(0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            completed: 3,
            tokens_generated: 30,
            makespan: Secs::new(10.0),
            throughput: 0.3,
            latencies: vec![1.0, 2.0, 9.0],
            encoder_stage_times: vec![1.0, 1.2, 0.8],
            decoder_stage_times: vec![0.1; 10],
            peak_kv_bytes: 100,
            param_bytes: 200,
            trace: None,
            sojourn_times: vec![2.0, 3.0, 10.0],
        }
    }

    #[test]
    fn latency_stats() {
        let r = report();
        assert!((r.mean_latency() - 4.0).abs() < 1e-12);
        assert_eq!(r.p99_latency(), 9.0);
        assert_eq!(r.max_latency(), 9.0);
        assert_eq!(r.p99_sojourn(), 10.0);
        let s = r.latency_summary().expect("non-empty");
        assert_eq!(s.count, 3);
        assert_eq!(s.p50, 2.0);
        assert_eq!((s.p99, s.max), (9.0, 9.0));
    }

    #[test]
    fn stage_stats_are_mean_and_half_range() {
        let (mean, half) = report().encoder_stage_stats();
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(half > 0.0);
        let (_, dec_half) = report().decoder_stage_stats();
        assert_eq!(dec_half, 0.0, "constant stage times have no spread");
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport {
            completed: 0,
            tokens_generated: 0,
            makespan: Secs::ZERO,
            throughput: 0.0,
            latencies: vec![],
            encoder_stage_times: vec![],
            decoder_stage_times: vec![],
            peak_kv_bytes: 0,
            param_bytes: 0,
            trace: None,
            sojourn_times: vec![],
        };
        assert_eq!(r.mean_latency(), 0.0);
        assert_eq!(r.p99_latency(), 0.0);
    }
}
