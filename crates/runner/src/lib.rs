//! XRunner: the execution engine enforcing ExeGPT schedules (paper §3).
//!
//! Where [`exegpt_sim`] predicts steady-state behaviour from *expected*
//! batch compositions, this crate **executes** a schedule as a
//! discrete-event replay on the simulated cluster: individual queries with
//! *sampled* input/output lengths flow through the pipeline, terminate
//! early, have their KV-cache entries compacted, and trigger the §5.2
//! dynamic batch adjustments. Every phase/iteration is timed from the same
//! [`LayerProfile`](exegpt_profiler::LayerProfile) the scheduler used, so
//! runner-vs-simulator agreement is a meaningful validation — while the
//! runner's *measured* throughput, per-query latencies, stage-time variance
//! (Table 7) and peak memory reflect real sampled workloads, not
//! expectations.
//!
//! The same machinery executes the comparison systems in
//! `exegpt-baselines`; the [`KvTracker`] implements the three cache
//! disciplines that differentiate them (up-front reservation for
//! FasterTransformer/DSI, incremental with compaction for ExeGPT/ORCA,
//! paged for vLLM).
//!
//! # Example
//!
//! ```
//! use exegpt::{RraConfig, ScheduleConfig, TpConfig};
//! use exegpt_cluster::ClusterSpec;
//! use exegpt_model::ModelConfig;
//! use exegpt_profiler::{ProfileOptions, Profiler};
//! use exegpt_runner::{RunOptions, Runner};
//! use exegpt_workload::Task;
//!
//! let model = ModelConfig::opt_13b();
//! let cluster = ClusterSpec::a40_cluster().subcluster(4)?;
//! let profile = Profiler::new(model.clone(), cluster.clone())
//!     .run(&ProfileOptions::default())?;
//! let runner = Runner::new(model, cluster, profile.into(), Task::Translation.workload()?);
//! let report = runner.run(
//!     &ScheduleConfig::Rra(RraConfig::new(16, 16, TpConfig::none())),
//!     &RunOptions { num_queries: 200, ..RunOptions::default() },
//! )?;
//! assert!(report.throughput > 0.0);
//! assert_eq!(report.completed, 200);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod exec;
mod kv;
mod report;
mod rra_run;
mod runner;
mod slab;
mod trace;
mod waa_run;

pub use error::RunError;
pub use exec::{DecodeTiming, EncodeTiming, PhaseExecutor};
pub use kv::{KvTracker, ReservePolicy};
pub use report::RunReport;
pub use runner::{RunOptions, Runner};
pub use slab::Slab;
pub use trace::{Span, SpanKind, Trace};
