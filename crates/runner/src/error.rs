//! Error types for the runner crate.

use exegpt_profiler::ProfileError;
use exegpt_sim::SimError;

/// Errors produced when executing a schedule.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RunError {
    /// The run options were invalid.
    InvalidOptions {
        /// Which option was rejected.
        what: &'static str,
        /// Why it was rejected.
        why: String,
    },
    /// The schedule itself is invalid or infeasible on this cluster (as
    /// diagnosed by the same checks the simulator applies).
    Schedule(SimError),
    /// A profile lookup failed during execution.
    Profile(ProfileError),
    /// The run made no progress (e.g. the very first admission cannot fit
    /// in device memory).
    Stalled {
        /// Human-readable explanation.
        why: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidOptions { what, why } => {
                write!(f, "invalid run option `{what}`: {why}")
            }
            RunError::Schedule(e) => write!(f, "schedule cannot run: {e}"),
            RunError::Profile(e) => write!(f, "profile lookup failed: {e}"),
            RunError::Stalled { why } => write!(f, "run stalled: {why}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Schedule(e) => Some(e),
            RunError::Profile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Schedule(e)
    }
}

impl From<ProfileError> for RunError {
    fn from(e: ProfileError) -> Self {
        RunError::Profile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RunError::Stalled { why: "first batch does not fit".into() };
        assert!(e.to_string().contains("first batch"));
    }
}
