//! Discrete-event replay of an RRA schedule.

use exegpt_dist::CompletionDist;
use exegpt_sim::{RraConfig, ScheduleConfig, Simulator};
use exegpt_units::Secs;
use exegpt_workload::{PoissonStream, Request, RequestStream, TimedRequest};

use crate::error::RunError;
use crate::exec::PhaseExecutor;
use crate::report::RunReport;
use crate::runner::{windowed_throughput, RunOptions};
use crate::trace::{SpanKind, Trace};

struct Active {
    req: Request,
    progress: usize,
    t_encoded: f64,
    arrival: f64,
}

pub(crate) fn run(
    sim: &Simulator,
    cfg: &RraConfig,
    opts: &RunOptions,
) -> Result<RunReport, RunError> {
    // The simulator's feasibility checks and derived pool size apply as-is.
    let exec = PhaseExecutor::new(sim, &ScheduleConfig::Rra(*cfg))?;
    let scheduled_b_d = exec.scheduled_decode_batch();
    let w = sim.workload();
    let mut kv = exec.kv_tracker();

    let adjuster = exec.adjuster(opts.adjust_threshold);
    let _ = CompletionDist::new(w.output(), cfg.n_d); // distribution sanity only

    let stream_workload = opts.request_workload.as_ref().unwrap_or(w);
    // FIFO queue (front = oldest), sorted by arrival time.
    let mut pending: Vec<TimedRequest> = match opts.arrival_rate {
        Some(rate) => {
            PoissonStream::new(stream_workload, rate, opts.seed).take(opts.num_queries).collect()
        }
        None => RequestStream::new(stream_workload, opts.seed)
            .take(opts.num_queries)
            .map(|request| TimedRequest { request, arrival: 0.0 })
            .collect(),
    };

    let mut pool: Vec<Active> = Vec::new();
    let mut t = 0.0f64;
    let mut latencies = Vec::with_capacity(opts.num_queries);
    let mut sojourns = Vec::new();
    let mut completion_times = Vec::with_capacity(opts.num_queries);
    let mut enc_stage_times = Vec::new();
    let mut dec_stage_times = Vec::new();
    let mut tokens: u64 = 0;
    let mut trace = opts.record_trace.then(Trace::new);

    while latencies.len() < opts.num_queries {
        // ---- Encoding phase: dynamic admission (§5.2) -------------------
        // Only queries that have arrived are admissible (prefix: the queue
        // is arrival-sorted).
        let arrived = pending.partition_point(|r| r.arrival <= t);
        let lens: Vec<usize> = pending[..arrived].iter().map(|r| r.request.input_len).collect();
        let selected = adjuster.select_batch(&lens, pool.len(), scheduled_b_d);
        let mut admitted: Vec<TimedRequest> = Vec::with_capacity(selected.len());
        let mut taken = vec![false; pending.len()];
        for &idx in &selected {
            let req = pending[idx];
            if !kv.try_admit(req.request.id, req.request.input_len, 0) {
                break; // cache full: stop admitting this phase
            }
            taken[idx] = true;
            admitted.push(req);
        }
        if !admitted.is_empty() {
            let mut keep = Vec::with_capacity(pending.len() - admitted.len());
            for (i, req) in pending.into_iter().enumerate() {
                if !taken[i] {
                    keep.push(req);
                }
            }
            pending = keep;
        }
        if admitted.is_empty() && pool.is_empty() {
            if pending.is_empty() {
                break;
            }
            if arrived == 0 {
                // Idle: nothing has arrived yet; advance to the next arrival.
                t = pending[0].arrival;
                continue;
            }
            return Err(RunError::Stalled {
                why: format!(
                    "query {} ({} input tokens) cannot fit in the kv cache",
                    pending[0].request.id, pending[0].request.input_len
                ),
            });
        }

        if !admitted.is_empty() {
            let lens: Vec<usize> = admitted.iter().map(|r| r.request.input_len).collect();
            let enc = exec.encode_timing(&lens)?;
            enc_stage_times.push(enc.bottleneck.as_secs());
            let t_start = t;
            t += enc.total.as_secs();
            if let Some(tr) = trace.as_mut() {
                tr.record("workers", SpanKind::Encode, t_start, t, admitted.len());
            }
            for tr in admitted {
                pool.push(Active {
                    req: tr.request,
                    progress: 0,
                    t_encoded: t_start,
                    arrival: tr.arrival,
                });
            }
        }

        // ---- Decoding phase: N_D iterations with early termination ------
        let m_d = exec.decode_parallelism(pool.len());
        let dec_phase_start = t;
        let dec_phase_batch = pool.len();
        for u in 0..cfg.n_d {
            if pool.is_empty() {
                break;
            }
            let active = pool.len() as f64;
            let ctx: f64 =
                pool.iter().map(|a| (a.req.input_len + a.progress) as f64).sum::<f64>() / active;
            let dec = exec.decode_timing(m_d, pool.len(), ctx, u == 0)?;
            dec_stage_times.push(dec.bottleneck.as_secs());
            t += dec.total.as_secs();
            tokens += pool.len() as u64;

            // Advance and early-terminate (with cache compaction). During
            // an RRA decode iteration the resident set is exactly the pool,
            // so KV growth is one bulk arena scan instead of a tree lookup
            // per query.
            kv.grow_all(1);
            let mut i = 0;
            while i < pool.len() {
                pool[i].progress += 1;
                if pool[i].progress >= pool[i].req.output_len {
                    let done = pool.swap_remove(i);
                    kv.release(done.req.id);
                    latencies.push(t - done.t_encoded);
                    if opts.arrival_rate.is_some() {
                        sojourns.push(t - done.arrival);
                    }
                    completion_times.push(t);
                } else {
                    i += 1;
                }
            }
        }
        if let Some(tr) = trace.as_mut() {
            tr.record("workers", SpanKind::Decode, dec_phase_start, t, dec_phase_batch);
        }
    }

    let (throughput, makespan) = windowed_throughput(&completion_times, opts.warmup_frac);
    Ok(RunReport {
        completed: latencies.len(),
        tokens_generated: tokens,
        makespan: Secs::new(makespan),
        throughput,
        latencies,
        encoder_stage_times: enc_stage_times,
        decoder_stage_times: dec_stage_times,
        peak_kv_bytes: kv.peak_bytes(),
        param_bytes: exec.param_bytes(),
        trace,
        sojourn_times: sojourns,
    })
}
