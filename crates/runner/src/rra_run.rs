//! Discrete-event replay of an RRA schedule.

use exegpt::DynamicAdjuster;
use exegpt_dist::CompletionDist;
use exegpt_sim::{RraConfig, SimError, Simulator};
use exegpt_workload::{PoissonStream, Request, RequestStream, TimedRequest};

use crate::error::RunError;
use crate::kv::{KvTracker, ReservePolicy};
use crate::report::RunReport;
use crate::runner::{windowed_throughput, RunOptions};
use crate::trace::{SpanKind, Trace};

struct Active {
    req: Request,
    progress: usize,
    t_encoded: f64,
    arrival: f64,
}

pub(crate) fn run(
    sim: &Simulator,
    cfg: &RraConfig,
    opts: &RunOptions,
) -> Result<RunReport, RunError> {
    // The simulator's feasibility checks and derived pool size apply as-is.
    let estimate = sim.evaluate_rra(cfg)?;
    let scheduled_b_d = estimate.breakdown.decode_batch;
    let plan = sim.rra_plan(cfg, scheduled_b_d)?;
    let stages = plan.layout.num_stages();
    let profile = sim.profile();
    let w = sim.workload();

    // KV accounting on the bottleneck GPU (most decode layers per TP rank).
    let worst_layers = plan
        .dec_alloc
        .iter()
        .zip(plan.layout.stages())
        .map(|(&l, s)| l as f64 / s.tp as f64)
        .fold(0.0f64, f64::max);
    let bytes_per_token = sim.model().kv_bytes_per_token_per_layer() as f64 * worst_layers;
    let kv_capacity = sim
        .usable_capacity()
        .saturating_sub(estimate.memory.decoder_gpu.param_bytes)
        .saturating_sub(estimate.memory.decoder_gpu.activation_bytes);
    let mut kv = KvTracker::new(bytes_per_token, kv_capacity, ReservePolicy::Incremental);

    let adjuster = DynamicAdjuster::new(cfg.b_e, w.input().mean(), opts.adjust_threshold);
    let _ = CompletionDist::new(w.output(), cfg.n_d); // distribution sanity only

    let stream_workload = opts.request_workload.as_ref().unwrap_or(w);
    // FIFO queue (front = oldest), sorted by arrival time.
    let mut pending: Vec<TimedRequest> = match opts.arrival_rate {
        Some(rate) => {
            PoissonStream::new(stream_workload, rate, opts.seed).take(opts.num_queries).collect()
        }
        None => RequestStream::new(stream_workload, opts.seed)
            .take(opts.num_queries)
            .map(|request| TimedRequest { request, arrival: 0.0 })
            .collect(),
    };

    let mut pool: Vec<Active> = Vec::new();
    let mut t = 0.0f64;
    let mut latencies = Vec::with_capacity(opts.num_queries);
    let mut sojourns = Vec::new();
    let mut completion_times = Vec::with_capacity(opts.num_queries);
    let mut enc_stage_times = Vec::new();
    let mut dec_stage_times = Vec::new();
    let mut tokens: u64 = 0;
    let mut trace = opts.record_trace.then(Trace::new);

    while latencies.len() < opts.num_queries {
        // ---- Encoding phase: dynamic admission (§5.2) -------------------
        // Only queries that have arrived are admissible (prefix: the queue
        // is arrival-sorted).
        let arrived = pending.partition_point(|r| r.arrival <= t);
        let lens: Vec<usize> = pending[..arrived].iter().map(|r| r.request.input_len).collect();
        let selected = adjuster.select_batch(&lens, pool.len(), scheduled_b_d);
        let mut admitted: Vec<TimedRequest> = Vec::with_capacity(selected.len());
        let mut taken = vec![false; pending.len()];
        for &idx in &selected {
            let req = pending[idx];
            if !kv.try_admit(req.request.id, req.request.input_len, 0) {
                break; // cache full: stop admitting this phase
            }
            taken[idx] = true;
            admitted.push(req);
        }
        if !admitted.is_empty() {
            let mut keep = Vec::with_capacity(pending.len() - admitted.len());
            for (i, req) in pending.into_iter().enumerate() {
                if !taken[i] {
                    keep.push(req);
                }
            }
            pending = keep;
        }
        if admitted.is_empty() && pool.is_empty() {
            if pending.is_empty() {
                break;
            }
            if arrived == 0 {
                // Idle: nothing has arrived yet; advance to the next arrival.
                t = pending[0].arrival;
                continue;
            }
            return Err(RunError::Stalled {
                why: format!(
                    "query {} ({} input tokens) cannot fit in the kv cache",
                    pending[0].request.id, pending[0].request.input_len
                ),
            });
        }

        if !admitted.is_empty() {
            let mean_in: f64 = admitted.iter().map(|r| r.request.input_len as f64).sum::<f64>()
                / admitted.len() as f64;
            let m_e = stages.min(admitted.len()).max(1);
            let micro = admitted.len() as f64 / m_e as f64;
            let mut stage_times = Vec::with_capacity(stages);
            for (i, stage) in plan.layout.stages().iter().enumerate() {
                let t_layer =
                    profile.encode_layer_time(micro, mean_in, stage.tp).map_err(SimError::from)?;
                let handoff =
                    profile.handoff_time(micro * mean_in, plan.layout.boundary_intra_node(i));
                stage_times.push(plan.enc_alloc[i] as f64 * t_layer + handoff);
            }
            let bottleneck = stage_times.iter().copied().fold(0.0, f64::max);
            let t_enc: f64 = stage_times.iter().sum::<f64>() + (m_e as f64 - 1.0) * bottleneck;
            enc_stage_times.push(bottleneck);
            let t_start = t;
            t += t_enc;
            if let Some(tr) = trace.as_mut() {
                tr.record("workers", SpanKind::Encode, t_start, t, admitted.len());
            }
            for tr in admitted {
                pool.push(Active {
                    req: tr.request,
                    progress: 0,
                    t_encoded: t_start,
                    arrival: tr.arrival,
                });
            }
        }

        // ---- Decoding phase: N_D iterations with early termination ------
        let m_d = stages.min(pool.len()).max(1);
        let dec_phase_start = t;
        let dec_phase_batch = pool.len();
        for u in 0..cfg.n_d {
            if pool.is_empty() {
                break;
            }
            let active = pool.len() as f64;
            let ctx: f64 =
                pool.iter().map(|a| (a.req.input_len + a.progress) as f64).sum::<f64>() / active;
            let micro = active / m_d as f64;
            let mut worst = 0.0f64;
            for (i, stage) in plan.layout.stages().iter().enumerate() {
                let t_layer = profile
                    .decode_layer_time(micro, ctx, w.input().mean(), stage.tp)
                    .map_err(SimError::from)?;
                let handoff = profile.handoff_time(micro, plan.layout.boundary_intra_node(i));
                worst = worst.max(plan.dec_alloc[i] as f64 * t_layer + handoff);
            }
            let mut t_iter = m_d as f64 * worst;
            if u == 0 {
                t_iter += (stages as f64 - 1.0) * worst; // pipeline fill
            }
            dec_stage_times.push(worst);
            t += t_iter;
            tokens += pool.len() as u64;

            // Advance and early-terminate (with cache compaction).
            let mut i = 0;
            while i < pool.len() {
                pool[i].progress += 1;
                let _ = kv.grow(pool[i].req.id, 1);
                if pool[i].progress >= pool[i].req.output_len {
                    let done = pool.swap_remove(i);
                    kv.release(done.req.id);
                    latencies.push(t - done.t_encoded);
                    if opts.arrival_rate.is_some() {
                        sojourns.push(t - done.arrival);
                    }
                    completion_times.push(t);
                } else {
                    i += 1;
                }
            }
        }
        if let Some(tr) = trace.as_mut() {
            tr.record("workers", SpanKind::Decode, dec_phase_start, t, dec_phase_batch);
        }
    }

    let (throughput, makespan) = windowed_throughput(&completion_times, opts.warmup_frac);
    Ok(RunReport {
        completed: latencies.len(),
        tokens_generated: tokens,
        makespan,
        throughput,
        latencies,
        encoder_stage_times: enc_stage_times,
        decoder_stage_times: dec_stage_times,
        peak_kv_bytes: kv.peak_bytes(),
        param_bytes: estimate.memory.decoder_gpu.param_bytes,
        trace,
        sojourn_times: sojourns,
    })
}
