//! Reusable phase/KV execution machinery.
//!
//! [`PhaseExecutor`] encapsulates everything timing-related about running
//! one concrete schedule on the simulated cluster: the pipeline plan, the
//! KV-accounting parameters of the bottleneck GPU, and the per-phase /
//! per-iteration time formulas. The offline replays ([`Runner`]) and the
//! online serving loop (`exegpt-serve`) both drive it, so a schedule is
//! timed identically whether it is replayed over a pre-drawn batch or
//! served against a live arrival stream — and a plan swap mid-serve is just
//! constructing a new executor at a phase boundary.
//!
//! [`Runner`]: crate::Runner

use exegpt::DynamicAdjuster;
use exegpt_sim::{
    Estimate, RraConfig, RraPlan, ScheduleConfig, SimError, Simulator, WaaConfig, WaaPlan,
};
use exegpt_units::{Bytes, Secs};

use crate::error::RunError;
use crate::kv::{KvTracker, ReservePolicy};

/// Exposed fraction of the WAA KV handover (matches the simulator's overlap
/// assumption).
pub(crate) const KV_TRANSFER_EXPOSED: f64 = 0.3;

/// Timing of one encoding phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodeTiming {
    /// Virtual time the phase occupies (RRA: micro-batched pipeline
    /// fill-and-drain; WAA: the encoder pipeline period).
    pub total: Secs,
    /// Bottleneck-stage execution time (the Table 7 variance series).
    pub bottleneck: Secs,
    /// Input tokens entering the pipeline (drives the WAA KV handover).
    pub tokens: f64,
}

/// Timing of one decoding iteration over the pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeTiming {
    /// Virtual time the iteration occupies.
    pub total: Secs,
    /// Bottleneck-stage execution time.
    pub bottleneck: Secs,
}

#[derive(Debug, Clone)]
enum Variant {
    Rra { cfg: RraConfig, plan: RraPlan, stages: usize, scheduled_b_d: usize },
    Waa { cfg: WaaConfig, plan: WaaPlan, stages_d: usize },
}

/// The phase/KV machinery of one schedule on one simulated deployment.
///
/// Construction validates the schedule (feasibility, memory) through the
/// simulator exactly as scheduling did; the executor then answers pure
/// timing queries and hands out correctly parameterized [`KvTracker`]s and
/// [`DynamicAdjuster`]s.
#[derive(Debug, Clone)]
pub struct PhaseExecutor {
    sim: Simulator,
    variant: Variant,
    estimate: Estimate,
    bytes_per_token: f64,
    kv_capacity: u64,
}

impl PhaseExecutor {
    /// Builds the executor for `schedule` on `sim`'s deployment.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Schedule`] when the schedule is invalid or
    /// infeasible on this deployment.
    pub fn new(sim: &Simulator, schedule: &ScheduleConfig) -> Result<Self, RunError> {
        let (variant, estimate) = match schedule {
            ScheduleConfig::Rra(cfg) => {
                let estimate = sim.evaluate_rra(cfg)?;
                let scheduled_b_d = estimate.breakdown.decode_batch;
                let plan = sim.rra_plan(cfg, scheduled_b_d)?;
                let stages = plan.layout.num_stages();
                (Variant::Rra { cfg: *cfg, plan, stages, scheduled_b_d }, estimate)
            }
            ScheduleConfig::Waa(cfg) => {
                let estimate = sim.evaluate_waa(cfg)?;
                let plan = sim.waa_plan(cfg)?;
                let stages_d = plan.dec_layout.num_stages();
                (Variant::Waa { cfg: *cfg, plan, stages_d }, estimate)
            }
        };

        // KV accounting on the bottleneck decode GPU (most decode layers
        // per TP rank).
        let worst_layers = match &variant {
            Variant::Rra { plan, .. } => plan
                .dec_alloc
                .iter()
                .zip(plan.layout.stages())
                .map(|(&l, s)| l as f64 / s.tp as f64)
                .fold(0.0f64, f64::max),
            Variant::Waa { plan, .. } => plan
                .dec_alloc
                .iter()
                .zip(plan.dec_layout.stages())
                .map(|(&l, s)| l as f64 / s.tp as f64)
                .fold(0.0f64, f64::max),
        };
        let bytes_per_token = sim.model().kv_bytes_per_token_per_layer() as f64 * worst_layers;
        let kv_capacity = sim
            .usable_capacity()
            .saturating_sub(estimate.memory.decoder_gpu.param_bytes)
            .saturating_sub(estimate.memory.decoder_gpu.activation_bytes);

        Ok(Self { sim: sim.clone(), variant, estimate, bytes_per_token, kv_capacity })
    }

    /// The simulator (deployment + workload) this executor times against.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The schedule this executor runs.
    pub fn schedule(&self) -> ScheduleConfig {
        match &self.variant {
            Variant::Rra { cfg, .. } => ScheduleConfig::Rra(*cfg),
            Variant::Waa { cfg, .. } => ScheduleConfig::Waa(*cfg),
        }
    }

    /// The simulator's estimate for the schedule.
    pub fn estimate(&self) -> &Estimate {
        &self.estimate
    }

    /// The scheduled steady-state decoding batch `B_D`.
    pub fn scheduled_decode_batch(&self) -> usize {
        match &self.variant {
            Variant::Rra { scheduled_b_d, .. } => *scheduled_b_d,
            Variant::Waa { plan, .. } => plan.b_d,
        }
    }

    /// Decoding iterations per encoding opportunity: `N_D` for RRA, 1 for
    /// WAA (one pool iteration per coupled round).
    pub fn decode_iters_per_phase(&self) -> usize {
        match &self.variant {
            Variant::Rra { cfg, .. } => cfg.n_d,
            Variant::Waa { .. } => 1,
        }
    }

    /// Whether encode and decode run as coupled pipelines (WAA): a round
    /// takes `max(encode, decode, handover)` instead of their sum.
    pub fn is_coupled(&self) -> bool {
        matches!(self.variant, Variant::Waa { .. })
    }

    /// Micro-batch parallelism of a decoding iteration over a pool of
    /// `pool_len` queries.
    pub fn decode_parallelism(&self, pool_len: usize) -> usize {
        match &self.variant {
            Variant::Rra { stages, .. } => (*stages).min(pool_len).max(1),
            Variant::Waa { cfg, .. } => cfg.b_m.min(pool_len).max(1),
        }
    }

    /// A fresh incremental-policy [`KvTracker`] sized for this plan's
    /// bottleneck GPU.
    pub fn kv_tracker(&self) -> KvTracker {
        KvTracker::new(self.bytes_per_token, self.kv_capacity, ReservePolicy::Incremental)
    }

    /// Parameter bytes resident on the bottleneck decode GPU.
    pub fn param_bytes(&self) -> u64 {
        self.estimate.memory.decoder_gpu.param_bytes
    }

    /// The §5.2 dynamic workload adjuster for this schedule.
    pub fn adjuster(&self, threshold_frac: f64) -> DynamicAdjuster {
        let b_e = match &self.variant {
            Variant::Rra { cfg, .. } => cfg.b_e,
            Variant::Waa { cfg, .. } => cfg.b_e,
        };
        DynamicAdjuster::new(b_e, self.sim.workload().input().mean(), threshold_frac)
    }

    /// Times one encoding phase admitting queries of the given input
    /// lengths (must be non-empty).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Schedule`] when the batch falls outside the
    /// profiled range.
    pub fn encode_timing(&self, input_lens: &[usize]) -> Result<EncodeTiming, RunError> {
        debug_assert!(!input_lens.is_empty(), "encode phases admit at least one query");
        let profile = self.sim.profile();
        let mean_in: f64 =
            input_lens.iter().map(|&l| l as f64).sum::<f64>() / input_lens.len() as f64;
        match &self.variant {
            Variant::Rra { plan, stages, .. } => {
                let m_e = (*stages).min(input_lens.len()).max(1);
                let micro = input_lens.len() as f64 / m_e as f64;
                // Single in-order pass (no per-phase buffer): the sum folds
                // left over the stages exactly as the buffered version did,
                // so the timings are bit-identical.
                let mut bottleneck = Secs::ZERO;
                let mut fill = Secs::ZERO;
                for (i, stage) in plan.layout.stages().iter().enumerate() {
                    let t_layer = profile
                        .encode_layer_time(micro, mean_in, stage.tp)
                        .map_err(SimError::from)?;
                    let handoff =
                        profile.handoff_time(micro * mean_in, plan.layout.boundary_intra_node(i));
                    let t = plan.enc_alloc[i] as f64 * t_layer + handoff;
                    fill += t;
                    bottleneck = bottleneck.max(t);
                }
                let total = fill + bottleneck * (m_e as f64 - 1.0);
                Ok(EncodeTiming { total, bottleneck, tokens: input_lens.len() as f64 * mean_in })
            }
            Variant::Waa { plan, .. } => {
                let mut bottleneck = Secs::ZERO;
                for (i, _) in plan.enc_layout.stages().iter().enumerate() {
                    let t_layer = profile
                        .encode_layer_time(input_lens.len() as f64, mean_in, 1)
                        .map_err(SimError::from)?;
                    let handoff = profile.handoff_time(
                        input_lens.len() as f64 * mean_in,
                        plan.enc_layout.boundary_intra_node(i),
                    );
                    bottleneck = bottleneck.max(plan.enc_alloc[i] as f64 * t_layer + handoff);
                }
                Ok(EncodeTiming {
                    total: bottleneck,
                    bottleneck,
                    tokens: input_lens.len() as f64 * mean_in,
                })
            }
        }
    }

    /// Times one decoding iteration: `parallelism` from
    /// [`decode_parallelism`](Self::decode_parallelism) (held fixed across
    /// a phase, as the replays do), `active` queries in the pool, average
    /// context length `mean_ctx`, and whether this iteration pays the
    /// pipeline fill (first iteration of an RRA decoding phase).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Schedule`] when the pool falls outside the
    /// profiled range.
    pub fn decode_timing(
        &self,
        parallelism: usize,
        active: usize,
        mean_ctx: f64,
        pipeline_fill: bool,
    ) -> Result<DecodeTiming, RunError> {
        let profile = self.sim.profile();
        let mean_input = self.sim.workload().input().mean();
        match &self.variant {
            Variant::Rra { plan, stages, .. } => {
                let micro = active as f64 / parallelism as f64;
                let mut worst = Secs::ZERO;
                for (i, stage) in plan.layout.stages().iter().enumerate() {
                    let t_layer = profile
                        .decode_layer_time(micro, mean_ctx, mean_input, stage.tp)
                        .map_err(SimError::from)?;
                    let handoff = profile.handoff_time(micro, plan.layout.boundary_intra_node(i));
                    worst = worst.max(plan.dec_alloc[i] as f64 * t_layer + handoff);
                }
                let mut total = parallelism as f64 * worst;
                if pipeline_fill {
                    total += (*stages as f64 - 1.0) * worst;
                }
                Ok(DecodeTiming { total, bottleneck: worst })
            }
            Variant::Waa { plan, stages_d, .. } => {
                let micro = active as f64 / parallelism as f64;
                let mut worst = Secs::ZERO;
                for (i, stage) in plan.dec_layout.stages().iter().enumerate() {
                    let t_layer = profile
                        .decode_layer_time(micro, mean_ctx, mean_input, stage.tp)
                        .map_err(SimError::from)?;
                    let handoff =
                        profile.handoff_time(micro, plan.dec_layout.boundary_intra_node(i));
                    worst = worst.max(plan.dec_alloc[i] as f64 * t_layer + handoff);
                }
                Ok(DecodeTiming {
                    total: parallelism.max(*stages_d) as f64 * worst,
                    bottleneck: worst,
                })
            }
        }
    }

    /// Exposed KV-handover time of a WAA round moving `enc_tokens` input
    /// tokens from the encode to the decode group (0 for RRA, which shares
    /// GPUs between phases).
    pub fn handover_time(&self, enc_tokens: f64) -> Secs {
        match &self.variant {
            Variant::Rra { .. } => Secs::ZERO,
            Variant::Waa { plan, .. } => {
                self.sim.profile().kv_transfer_time(enc_tokens, plan.kv_layers)
                    * KV_TRANSFER_EXPOSED
            }
        }
    }

    /// Time to re-migrate `kv_bytes` of resident KV cache across the
    /// cluster after a plan swap onto a changed topology (failover or
    /// recovery). The cache moves point-to-point over the slower of the
    /// two link classes — a deliberately conservative single-stream bound:
    /// unlike the per-phase WAA handover, a failover migration is not
    /// overlapped with compute.
    pub fn kv_migration_time(&self, kv_bytes: u64) -> Secs {
        if kv_bytes == 0 {
            return Secs::ZERO;
        }
        let bytes = Bytes::from_u64(kv_bytes);
        let cluster = self.sim.cluster();
        let intra = cluster.intra().p2p_time(bytes);
        let inter =
            if cluster.num_nodes() > 1 { cluster.inter().p2p_time(bytes) } else { Secs::ZERO };
        intra.max(inter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, OnceLock};

    use exegpt_cluster::ClusterSpec;
    use exegpt_model::ModelConfig;
    use exegpt_profiler::{LayerProfile, ProfileOptions, Profiler};
    use exegpt_sim::{TpConfig, WaaVariant};
    use exegpt_workload::Task;

    fn sim() -> Simulator {
        static PROFILE: OnceLock<Arc<LayerProfile>> = OnceLock::new();
        let model = ModelConfig::opt_13b();
        let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
        let profile = PROFILE
            .get_or_init(|| {
                Arc::new(
                    Profiler::new(model.clone(), cluster.clone())
                        .run(&ProfileOptions::default())
                        .expect("profiles"),
                )
            })
            .clone();
        Simulator::new(model, cluster, profile, Task::Translation.workload().expect("valid"))
    }

    #[test]
    fn rra_executor_reports_schedule_shape() {
        let sim = sim();
        let cfg = ScheduleConfig::Rra(RraConfig::new(8, 16, TpConfig::none()));
        let exec = PhaseExecutor::new(&sim, &cfg).expect("feasible");
        assert_eq!(exec.decode_iters_per_phase(), 16);
        assert!(!exec.is_coupled());
        assert!(exec.scheduled_decode_batch() > 0);
        assert_eq!(exec.schedule(), cfg);
        assert_eq!(exec.handover_time(1024.0), Secs::ZERO, "RRA has no group handover");
        let kv = exec.kv_tracker();
        assert!(kv.capacity_bytes() > 0);
    }

    #[test]
    fn timings_are_positive_and_fill_costs_extra() {
        let sim = sim();
        let cfg = ScheduleConfig::Rra(RraConfig::new(8, 16, TpConfig::none()));
        let exec = PhaseExecutor::new(&sim, &cfg).expect("feasible");
        let enc = exec.encode_timing(&[128; 8]).expect("in range");
        assert!(enc.total >= enc.bottleneck && enc.bottleneck > Secs::ZERO);
        let m_d = exec.decode_parallelism(32);
        let fill = exec.decode_timing(m_d, 32, 140.0, true).expect("in range");
        let steady = exec.decode_timing(m_d, 32, 140.0, false).expect("in range");
        assert!(fill.total > steady.total, "pipeline fill adds time");
        assert_eq!(fill.bottleneck, steady.bottleneck);
    }

    #[test]
    fn waa_executor_is_coupled_with_handover() {
        let sim = sim();
        let cfg = ScheduleConfig::Waa(WaaConfig::new(2, 1, TpConfig::none(), WaaVariant::Compute));
        let exec = PhaseExecutor::new(&sim, &cfg).expect("feasible");
        assert!(exec.is_coupled());
        assert_eq!(exec.decode_iters_per_phase(), 1);
        assert!(exec.handover_time(1024.0) > Secs::ZERO);
        let enc = exec.encode_timing(&[128; 2]).expect("in range");
        assert_eq!(enc.total, enc.bottleneck, "WAA encode is one pipeline period");
    }
}
