//! The runner facade.

use std::sync::Arc;

use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_profiler::LayerProfile;
use exegpt_sim::{ScheduleConfig, Simulator, Workload};

use crate::error::RunError;
use crate::report::RunReport;
use crate::{rra_run, waa_run};

/// Options for one execution run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Number of queries to execute (all pending at time zero — the
    /// saturation regime the paper's throughput numbers use).
    pub num_queries: usize,
    /// Seed for sampling query lengths.
    pub seed: u64,
    /// Fraction of completions treated as warm-up and excluded from the
    /// throughput window.
    pub warmup_frac: f64,
    /// Dynamic-adjustment workload threshold (paper §5.2).
    pub adjust_threshold: f64,
    /// Sample request lengths from this workload instead of the planning
    /// workload. This is how the distribution-shift study (Figure 11) runs
    /// a *non-adjusted* schedule: plans stay sized for the old
    /// distribution while the traffic follows the new one.
    pub request_workload: Option<Workload>,
    /// Record an execution [`Trace`](crate::Trace) (per-phase spans) in the
    /// report.
    pub record_trace: bool,
    /// Open-loop serving: queries arrive as a Poisson process of this rate
    /// (queries/second) instead of all being queued at time zero. Enables
    /// the SLA-(a) style sojourn-time statistics in the report (§7.6).
    pub arrival_rate: Option<f64>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            num_queries: 500,
            seed: 0,
            warmup_frac: 0.1,
            adjust_threshold: 0.15,
            request_workload: None,
            record_trace: false,
            arrival_rate: None,
        }
    }
}

impl RunOptions {
    fn validate(&self) -> Result<(), RunError> {
        if self.num_queries == 0 {
            return Err(RunError::InvalidOptions {
                what: "num_queries",
                why: "must be at least 1".into(),
            });
        }
        if !(0.0..1.0).contains(&self.warmup_frac) {
            return Err(RunError::InvalidOptions {
                what: "warmup_frac",
                why: "must be in [0, 1)".into(),
            });
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
        if !(self.adjust_threshold >= 0.0) {
            return Err(RunError::InvalidOptions {
                what: "adjust_threshold",
                why: "must be non-negative".into(),
            });
        }
        if let Some(rate) = self.arrival_rate {
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must be rejected too
            if !(rate > 0.0) {
                return Err(RunError::InvalidOptions {
                    what: "arrival_rate",
                    why: "must be positive".into(),
                });
            }
        }
        Ok(())
    }
}

/// XRunner: executes a schedule as a discrete-event replay with sampled
/// query lengths (see the crate docs).
#[derive(Debug, Clone)]
pub struct Runner {
    sim: Simulator,
}

impl Runner {
    /// Creates a runner for a (model, cluster, profile, workload) tuple.
    pub fn new(
        model: ModelConfig,
        cluster: ClusterSpec,
        profile: Arc<LayerProfile>,
        workload: Workload,
    ) -> Self {
        Self { sim: Simulator::new(model, cluster, profile, workload) }
    }

    /// Creates a runner sharing an existing simulator's context — the usual
    /// path after scheduling, guaranteeing both see identical profiles.
    pub fn from_simulator(sim: Simulator) -> Self {
        Self { sim }
    }

    /// The simulator sharing this runner's context.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Executes `schedule` over `opts.num_queries` sampled queries.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Schedule`] when the schedule is invalid or
    /// infeasible, [`RunError::InvalidOptions`] for bad options, or
    /// [`RunError::Stalled`] when no progress is possible.
    pub fn run(&self, schedule: &ScheduleConfig, opts: &RunOptions) -> Result<RunReport, RunError> {
        opts.validate()?;
        match schedule {
            ScheduleConfig::Rra(cfg) => rra_run::run(&self.sim, cfg, opts),
            ScheduleConfig::Waa(cfg) => waa_run::run(&self.sim, cfg, opts),
        }
    }
}

/// Computes the throughput window: completions after warm-up, over the time
/// between the warm-up completion and the last completion.
pub(crate) fn windowed_throughput(completion_times: &[f64], warmup_frac: f64) -> (f64, f64) {
    if completion_times.is_empty() {
        return (0.0, 0.0);
    }
    let mut times = completion_times.to_vec();
    times.sort_by(f64::total_cmp);
    let warm = ((times.len() as f64 * warmup_frac) as usize).min(times.len() - 1);
    let t0 = if warm == 0 { 0.0 } else { times[warm - 1] };
    let t1 = times.last().copied().unwrap_or(0.0);
    let counted = (times.len() - warm) as f64;
    if t1 <= t0 {
        // Degenerate window (e.g. one static batch completing everything at
        // once): fall back to the whole-run average.
        return (times.len() as f64 / t1.max(f64::MIN_POSITIVE), t1);
    }
    (counted / (t1 - t0), t1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_throughput_handles_edges() {
        assert_eq!(windowed_throughput(&[], 0.1), (0.0, 0.0));
        // Ten completions one second apart, 10% warm-up: 9 over 9 seconds.
        let times: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let (thr, end) = windowed_throughput(&times, 0.1);
        assert!((thr - 1.0).abs() < 1e-9);
        assert_eq!(end, 10.0);
    }

    #[test]
    fn options_validate() {
        assert!(RunOptions { num_queries: 0, ..Default::default() }.validate().is_err());
        assert!(RunOptions { warmup_frac: 1.0, ..Default::default() }.validate().is_err());
        assert!(RunOptions { adjust_threshold: -1.0, ..Default::default() }.validate().is_err());
        assert!(RunOptions { arrival_rate: Some(0.0), ..Default::default() }.validate().is_err());
        assert!(RunOptions::default().validate().is_ok());
    }
}
