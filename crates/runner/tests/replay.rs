//! Behavioural tests of the discrete-event replay: conservation,
//! determinism, and agreement with the analytic simulator.

use std::sync::Arc;

use exegpt::{RraConfig, ScheduleConfig, TpConfig, WaaConfig, WaaVariant};
use exegpt_cluster::ClusterSpec;
use exegpt_model::ModelConfig;
use exegpt_profiler::{ProfileOptions, Profiler};
use exegpt_runner::{RunError, RunOptions, Runner};
use exegpt_sim::Simulator;
use exegpt_workload::{RequestStream, Task};

fn runner(task: Task) -> Runner {
    let model = ModelConfig::opt_13b();
    let cluster = ClusterSpec::a40_cluster().subcluster(4).expect("fits");
    let profile = Profiler::new(model.clone(), cluster.clone())
        .run(&ProfileOptions::default())
        .expect("profiling succeeds");
    let sim = Simulator::new(model, cluster, Arc::new(profile), task.workload().expect("valid"));
    Runner::from_simulator(sim)
}

fn rra() -> ScheduleConfig {
    ScheduleConfig::Rra(RraConfig::new(16, 16, TpConfig::none()))
}

fn waa() -> ScheduleConfig {
    ScheduleConfig::Waa(WaaConfig::new(2, 3, TpConfig::none(), WaaVariant::Compute))
}

#[test]
fn rra_completes_every_query_and_every_token() {
    let r = runner(Task::Translation);
    let opts = RunOptions { num_queries: 300, seed: 9, ..Default::default() };
    let report = r.run(&rra(), &opts).expect("runs");
    assert_eq!(report.completed, 300);
    assert_eq!(report.latencies.len(), 300);
    // Output lengths are enforced: exactly the sampled token budget is
    // generated — conservation of work.
    let expected: u64 = RequestStream::new(r.simulator().workload(), 9)
        .take(300)
        .map(|q| q.output_len as u64)
        .sum();
    assert_eq!(report.tokens_generated, expected);
    assert!(report.throughput > 0.0 && report.makespan > exegpt_units::Secs::ZERO);
    assert!(report.latencies.iter().all(|&l| l > 0.0 && l.is_finite()));
}

#[test]
fn waa_completes_every_query_and_every_token() {
    let r = runner(Task::Summarization);
    let opts = RunOptions { num_queries: 300, seed: 5, ..Default::default() };
    let report = r.run(&waa(), &opts).expect("runs");
    assert_eq!(report.completed, 300);
    let expected: u64 = RequestStream::new(r.simulator().workload(), 5)
        .take(300)
        .map(|q| q.output_len as u64)
        .sum();
    assert_eq!(report.tokens_generated, expected);
}

#[test]
fn replay_is_deterministic() {
    let r = runner(Task::Translation);
    let opts = RunOptions { num_queries: 150, seed: 3, ..Default::default() };
    let a = r.run(&rra(), &opts).expect("runs");
    let b = r.run(&rra(), &opts).expect("runs");
    assert_eq!(a, b);
    let c = r.run(&rra(), &RunOptions { seed: 4, ..opts }).expect("runs");
    assert_ne!(a, c);
}

#[test]
fn runner_agrees_with_simulator_on_throughput() {
    // The replay uses sampled lengths and dynamic adjustment, the simulator
    // uses expectations: steady-state throughput should agree within ~35%.
    let r = runner(Task::Translation);
    let cfg = RraConfig::new(16, 16, TpConfig::none());
    let est = r.simulator().evaluate_rra(&cfg).expect("feasible");
    let report = r
        .run(&ScheduleConfig::Rra(cfg), &RunOptions { num_queries: 600, ..Default::default() })
        .expect("runs");
    let ratio = report.throughput / est.throughput;
    assert!(
        (0.65..1.55).contains(&ratio),
        "measured {} vs estimated {} (ratio {ratio:.2})",
        report.throughput,
        est.throughput
    );
}

#[test]
fn waa_runner_agrees_with_simulator_on_throughput() {
    let r = runner(Task::Summarization);
    let cfg = WaaConfig::new(2, 3, TpConfig::none(), WaaVariant::Compute);
    let est = r.simulator().evaluate_waa(&cfg).expect("feasible");
    let report = r
        .run(&ScheduleConfig::Waa(cfg), &RunOptions { num_queries: 600, ..Default::default() })
        .expect("runs");
    let ratio = report.throughput / est.throughput;
    assert!(
        (0.6..1.6).contains(&ratio),
        "measured {} vs estimated {} (ratio {ratio:.2})",
        report.throughput,
        est.throughput
    );
}

#[test]
fn decoder_stage_variance_is_small() {
    // Table 7: decoder execution-time variance is low (few percent).
    let r = runner(Task::Summarization);
    let report =
        r.run(&rra(), &RunOptions { num_queries: 500, ..Default::default() }).expect("runs");
    let (mean, half_range) = report.decoder_stage_stats();
    assert!(mean > 0.0);
    assert!(
        half_range / mean < 0.35,
        "decoder stage spread too large: ±{:.1}%",
        100.0 * half_range / mean
    );
}

#[test]
fn kv_peak_is_tracked_and_bounded() {
    let r = runner(Task::Translation);
    let report =
        r.run(&rra(), &RunOptions { num_queries: 300, ..Default::default() }).expect("runs");
    assert!(report.peak_kv_bytes > 0);
    let capacity = r.simulator().usable_capacity();
    assert!(report.peak_kv_bytes + report.param_bytes <= capacity);
}

#[test]
fn infeasible_schedules_are_rejected_up_front() {
    let r = runner(Task::Translation);
    let huge = ScheduleConfig::Rra(RraConfig::new(512, 4, TpConfig::none()));
    assert!(matches!(r.run(&huge, &RunOptions::default()), Err(RunError::Schedule(_))));
}

#[test]
fn invalid_options_are_rejected() {
    let r = runner(Task::Translation);
    let err = r.run(&rra(), &RunOptions { num_queries: 0, ..Default::default() });
    assert!(matches!(err, Err(RunError::InvalidOptions { what: "num_queries", .. })));
}

#[test]
fn t5_runs_both_schedules() {
    let model = ModelConfig::t5_11b();
    let cluster = ClusterSpec::a40_cluster().subcluster(8).expect("fits");
    let profile = Profiler::new(model.clone(), cluster.clone())
        .run(&ProfileOptions::default())
        .expect("profiling succeeds");
    let sim = Simulator::new(
        model,
        cluster,
        Arc::new(profile),
        Task::Summarization.workload().expect("valid"),
    );
    let r = Runner::from_simulator(sim);
    let opts = RunOptions { num_queries: 120, ..Default::default() };
    let rra_rep = r.run(&rra(), &opts).expect("rra runs");
    assert_eq!(rra_rep.completed, 120);
    let waa_rep = r
        .run(
            &ScheduleConfig::Waa(WaaConfig::new(4, 3, TpConfig::none(), WaaVariant::Compute)),
            &opts,
        )
        .expect("waa runs");
    assert_eq!(waa_rep.completed, 120);
}

#[test]
fn traces_are_recorded_on_request() {
    let r = runner(Task::Translation);
    let opts = RunOptions { num_queries: 150, record_trace: true, ..Default::default() };
    let rep = r.run(&rra(), &opts).expect("runs");
    let trace = rep.trace.expect("trace recorded");
    assert!(!trace.spans().is_empty());
    // Spans are well-formed and within the makespan.
    for s in trace.spans() {
        assert!(s.t1 > s.t0 && s.t0 >= 0.0);
    }
    let gantt = trace.render_gantt(0.0, 60);
    assert!(gantt.contains("workers"));
    // WAA traces have dedicated lanes.
    let wrep = r
        .run(&waa(), &RunOptions { num_queries: 150, record_trace: true, ..Default::default() })
        .expect("runs");
    let wg = wrep.trace.expect("trace recorded").render_gantt(0.0, 60);
    assert!(wg.contains("encoders") && wg.contains("decoders"));
    // Off by default.
    let plain = r.run(&rra(), &RunOptions { num_queries: 50, ..Default::default() }).expect("runs");
    assert!(plain.trace.is_none());
}

#[test]
fn open_loop_serving_measures_sojourn_times() {
    let r = runner(Task::Translation);
    // A rate well under the schedule's capacity: queueing is light and the
    // system keeps up with arrivals.
    let opts = RunOptions { num_queries: 300, arrival_rate: Some(4.0), ..Default::default() };
    let rep = r.run(&rra(), &opts).expect("runs");
    assert_eq!(rep.completed, 300);
    assert_eq!(rep.sojourn_times.len(), 300);
    // Sojourn (arrival -> done) includes queueing on top of generation.
    let mean_lat = rep.mean_latency();
    let mean_soj = rep.sojourn_times.iter().sum::<f64>() / rep.sojourn_times.len() as f64;
    assert!(mean_soj >= mean_lat, "sojourn {mean_soj} < latency {mean_lat}");
    // Underloaded: completion rate tracks the arrival rate, not capacity.
    assert!(
        (2.5..5.0).contains(&rep.throughput),
        "underloaded throughput should be ~4 q/s, got {}",
        rep.throughput
    );
    // SLA-(a): the 99th-percentile sojourn is finite and reported.
    assert!(rep.p99_sojourn() > 0.0 && rep.p99_sojourn().is_finite());

    // Saturated runs do not report sojourns.
    let sat = r.run(&rra(), &RunOptions { num_queries: 100, ..Default::default() }).expect("runs");
    assert!(sat.sojourn_times.is_empty());
    assert_eq!(sat.p99_sojourn(), 0.0);
}

#[test]
fn waa_supports_open_loop_serving_too() {
    let r = runner(Task::Summarization);
    let opts = RunOptions { num_queries: 200, arrival_rate: Some(5.0), ..Default::default() };
    let rep = r.run(&waa(), &opts).expect("runs");
    assert_eq!(rep.completed, 200);
    assert_eq!(rep.sojourn_times.len(), 200);
}
