//! Property-based invariants of the KV-cache tracker: no leaks, no
//! double-accounting, capacity always respected, under arbitrary
//! admit/grow/release interleavings and all three disciplines.

// Test-only bookkeeping; xlint skips tests and clippy should too.
#![allow(clippy::disallowed_types)]

use exegpt_runner::{KvTracker, ReservePolicy};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Admit { id: u64, input: usize, max_out: usize },
    Grow { id: u64, tokens: usize },
    Release { id: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..16, 1usize..200, 0usize..300).prop_map(|(id, input, max_out)| Op::Admit {
            id,
            input,
            max_out
        }),
        (0u64..16, 1usize..50).prop_map(|(id, tokens)| Op::Grow { id, tokens }),
        (0u64..16).prop_map(|id| Op::Release { id }),
    ]
}

fn arb_policy() -> impl Strategy<Value = ReservePolicy> {
    prop_oneof![
        Just(ReservePolicy::UpFront),
        Just(ReservePolicy::Incremental),
        Just(ReservePolicy::Paged { page_tokens: 16 }),
        Just(ReservePolicy::Paged { page_tokens: 1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Capacity is never exceeded; releasing everything returns to zero;
    /// the peak is the running maximum.
    #[test]
    fn tracker_conserves_bytes(
        ops in prop::collection::vec(arb_op(), 1..120),
        policy in arb_policy(),
        capacity in 1_000u64..100_000,
    ) {
        let mut kv = KvTracker::new(1.0, capacity, policy);
        let mut live: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut peak_seen = 0u64;
        for op in ops {
            match op {
                Op::Admit { id, input, max_out } => {
                    if !live.contains(&id) && kv.try_admit(id, input, max_out) {
                        live.insert(id);
                    }
                }
                Op::Grow { id, tokens } => {
                    let _ = kv.grow(id, tokens);
                }
                Op::Release { id } => {
                    kv.release(id);
                    live.remove(&id);
                }
            }
            prop_assert!(kv.used_bytes() <= capacity, "capacity exceeded");
            peak_seen = peak_seen.max(kv.used_bytes());
            prop_assert_eq!(kv.peak_bytes(), peak_seen);
            prop_assert_eq!(kv.resident(), live.len());
        }
        for id in live {
            kv.release(id);
        }
        prop_assert_eq!(kv.used_bytes(), 0, "bytes leaked after releasing all");
    }

    /// Paged reservations are always at least the incremental ones and
    /// waste at most one page per resident query.
    #[test]
    fn paging_overhead_is_bounded(
        admissions in prop::collection::vec((1usize..300, 0usize..100), 1..32),
        page in 1usize..64,
    ) {
        let mut paged = KvTracker::new(1.0, u64::MAX >> 1, ReservePolicy::Paged { page_tokens: page });
        let mut incr = KvTracker::new(1.0, u64::MAX >> 1, ReservePolicy::Incremental);
        for (i, &(input, growth)) in admissions.iter().enumerate() {
            let id = i as u64;
            prop_assert!(paged.try_admit(id, input, 0));
            prop_assert!(incr.try_admit(id, input, 0));
            prop_assert!(paged.grow(id, growth));
            prop_assert!(incr.grow(id, growth));
        }
        let n = admissions.len() as u64;
        prop_assert!(paged.used_bytes() >= incr.used_bytes());
        prop_assert!(
            paged.used_bytes() <= incr.used_bytes() + n * page as u64,
            "paged {} vs incr {} with {} queries of page {page}",
            paged.used_bytes(),
            incr.used_bytes(),
            n
        );
    }
}
