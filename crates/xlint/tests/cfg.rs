//! Golden CFG dumps for the trickiest control-flow shapes the flow rules
//! lean on — nested matches, labeled breaks, early returns — plus the
//! soup property: lowering arbitrary token streams never panics.
//!
//! The dumps are *goldens*: any change to the lowering shows up as a
//! string diff here, which is exactly the review surface we want for a
//! component whose soundness argument is "conservative over-approximation
//! of paths". Update them only with a matching DESIGN.md §6.3 edit.

use exegpt_xlint::cfg::dump_source;
use exegpt_xlint::{lint_source, FileContext};
use proptest::prelude::*;

const NESTED_MATCH: &str = "\
fn pick(v: Kind) -> u32 {
    match v {
        Kind::A(x) => match x {
            0 => 1,
            _ => 2,
        },
        Kind::B { n } => n,
    }
}
";

#[test]
fn nested_match_arms_are_parallel_blocks_binding_from_the_scrutinee() {
    assert_eq!(
        dump_source(NESTED_MATCH),
        "\
fn pick:
  b0 (entry):
    L2 cond
    -> b3 b7
  b1 (exit):
    -> ∅
  b2:
    -> b1
  b3:
    L3 cond bind x
    L3 cond
    -> b5 b6
  b4:
    -> b2
  b5:
    L4 cond
    L4 expr
    -> b4
  b6:
    L5 cond
    L5 expr
    -> b4
  b7:
    L7 cond bind n
    L7 expr
    -> b2
"
    );
}

const LABELED_BREAKS: &str = "\
fn drain(q: &mut Queue) {
    'outer: loop {
        while q.busy() {
            if q.poisoned() {
                break 'outer;
            }
            q.pop();
        }
        break;
    }
    q.seal();
}
";

#[test]
fn labeled_break_escapes_both_loops_to_the_statement_after() {
    // `break 'outer` (L5 in b9) jumps straight to b3, the `q.seal()`
    // block after the outer loop; the plain `break` (b6) lands there too.
    assert_eq!(
        dump_source(LABELED_BREAKS),
        "\
fn drain:
  b0 (entry):
    -> b2
  b1 (exit):
    -> ∅
  b2:
    -> b4 b3
  b3:
    L11 expr
    -> b1
  b4:
    -> b5
  b5:
    L3 cond
    -> b7 b6
  b6:
    L9 expr
    -> b3
  b7:
    L4 cond
    -> b9 b8
  b8:
    L7 expr
    -> b5
  b9:
    L5 expr
    -> b3
  b10:
    -> b8
  b11:
    -> b2
"
    );
}

const EARLY_RETURNS: &str = "\
fn admit(r: &Req) -> Result<u32, E> {
    if r.empty() {
        return Err(E::Empty);
    }
    let cap = r.capacity()?;
    if cap == 0 {
        return Ok(0);
    }
    Ok(cap)
}
";

#[test]
fn returns_and_try_operators_edge_to_exit() {
    // Both `return`s edge to b1 (exit), and the `?` on L5 splits its
    // block: b2 continues to b5 on `Ok` and to b1 on `Err`.
    assert_eq!(
        dump_source(EARLY_RETURNS),
        "\
fn admit:
  b0 (entry):
    L2 cond
    -> b3 b2
  b1 (exit):
    -> ∅
  b2:
    L5 let cap
    -> b5 b1
  b3:
    L3 return
    -> b1
  b4:
    -> b2
  b5:
    L6 cond
    -> b7 b6
  b6:
    L9 expr
    -> b1
  b7:
    L7 return
    -> b1
  b8:
    -> b6
"
    );
}

// The vocabulary skews toward control flow so random joins form deeply
// nested broken loops, matches and try-expressions.
const VOCAB: [&str; 24] = [
    "fn f() {",
    "fn",
    "if",
    "else",
    "match",
    "loop",
    "while",
    "for x in",
    "break",
    "continue",
    "return",
    "'outer:",
    "let x =",
    "let mut",
    "=>",
    "?",
    ";",
    "{",
    "}",
    "(",
    ")",
    "ident",
    "Instant::now()",
    "sched.schedule(x)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cfg_and_fixpoint_never_panic(picks in prop::collection::vec(0usize..VOCAB.len(), 0..48)) {
        let src: String = picks.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ");
        // dump_source exercises body_range + build + render on whatever
        // parses as a fn; the lint pipeline then runs the full dataflow
        // fixpoint (D4/U3/P3) over the same soup.
        let _ = dump_source(&src);
        let _ = lint_source("soup.rs", &src, FileContext::default());
        let strict = FileContext {
            numeric_core: true,
            units_core: true,
            crate_idx: Some(0),
            ..FileContext::default()
        };
        let _ = lint_source("soup.rs", &src, strict);
    }
}
