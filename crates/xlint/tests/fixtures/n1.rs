fn mix(total: usize, frac: f64) -> u64 {
    let scaled = total as f64 * frac;
    scaled as u64
}
