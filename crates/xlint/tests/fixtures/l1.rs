// L1 fixture: cross-crate imports against the declared layering DAG.
// Linted as a `core` (layer 5) source: fleet (9) and serve (8) sit above,
// sim (3) and cluster (1) below.
use exegpt_fleet::FleetPlan;
use exegpt_serve::ServeLoop;
use exegpt_sim::Estimate;
use exegpt_cluster::ClusterSpec;

fn wire() {
    let p = exegpt_fleet::router();
    let s = exegpt_sim::model();
    drop((p, s));
}

#[cfg(test)]
mod tests {
    // Test code may look upward (mirrors the dev-dependency exemption).
    use exegpt_fleet::FleetPlan;
}
