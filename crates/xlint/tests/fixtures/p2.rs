// P2 fixture: discarded fallible results, resolved against this file's
// own items.
fn make() -> Result<u32, String> {
    Ok(1)
}

#[must_use]
fn score() -> u32 {
    7
}

struct Store;

impl Store {
    fn save(&self) -> Result<(), String> {
        Ok(())
    }
}

fn infallible() -> u32 {
    0
}

fn discards(s: &Store) {
    let _ = make(); // flagged: silent Result discard
    make(); // flagged: bare fallible statement
    let _ = score(); // flagged: #[must_use] discard
    s.save(); // flagged: bare fallible method statement
    let _ = make(); // xlint::allow(P2, demonstrating a budgeted suppression)
}

fn handles(s: &Store) -> Result<(), String> {
    let got = make().map_err(|e| e)?; // bound and propagated
    drop(got);
    if make().is_ok() {} // inspected
    let _ = make().ok(); // final callee is `ok`, not `make`
    let _ = infallible(); // infallible local fn
    let _ = unknown_fn(); // foreign callee: not locally resolvable
    let _ = writeln!(sink, "macros are excluded");
    infallible();
    s.save()
}
