fn take(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn must(v: Option<u32>) -> u32 {
    v.expect("present")
}

fn boom() -> ! {
    panic!("unreachable");
}
