use std::collections::HashMap; // xlint::allow(D1, fixture shows a justified same-line suppression)

// xlint::allow(D1, fixture shows a next-line suppression)
type Cache = HashMap<u32, u32>;

// xlint::allow(Q9, no such rule)
fn unknown_rule() {}

// xlint::allow(F1, nothing on the next line violates F1)
fn stale_pragma() {}

// xlint::allow(D1)
fn reasonless_pragma() {}
