mod inner {
    pub fn persist() -> Result<(), E> {
        Ok(())
    }
}
use inner::persist as store_fn;
pub fn run() {
    let _ = store_fn();
}
