fn degenerate(std: f64) -> bool {
    std == 0.0
}

fn differs(a: f64) -> bool {
    a != 1.5
}
