pub fn raw_param(latency: f64) -> Secs {
    Secs::new(latency)
}
pub fn raw_return(t: Secs) -> f64 {
    t.as_secs()
}
pub struct Widget;
impl Widget {
    pub fn method_with_raw(&self, bandwidth: f64) -> Secs {
        Secs::new(bandwidth)
    }
    pub(crate) fn internal(efficiency: f64) -> f64 {
        efficiency
    }
    fn private(efficiency: f64) -> f64 {
        efficiency
    }
}
pub fn typed(t: Secs, b: Bytes) -> BytesPerSec {
    b / t
}
pub fn slowed(factor: f64) -> Secs {
    Secs::new(factor)
}
pub fn efficiency_of(f: Flops) -> f64 {
    f.as_f64()
}
// xlint::allow(U1, measured headroom is dimensionless but outside the vocabulary)
pub fn headroom() -> f64 {
    0.5
}
