use std::time::Instant;

fn elapsed_ms() -> u128 {
    let start = Instant::now();
    start.elapsed().as_millis()
}

fn wall_secs() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
