// D3 fixture: concurrency primitives outside the audited pool modules.
use std::thread;

fn spawn_things() {
    std::thread::spawn(|| {});
    let m = Mutex::new(1);
    let l = RwLock::new(2);
    let a = AtomicUsize::new(0);
    drop((m, l, a));
    // Relaxed on a counter-named receiver is the audited idiom, but the
    // primitive itself still needs an audited module.
    hits.fetch_add(1, Ordering::Relaxed);
    let ready = flag.load(Ordering::Relaxed);
    drop(ready);
    // std::cmp::Ordering is a different type entirely.
    match a_cmp_b {
        Ordering::Less => {}
        _ => {}
    }
    let g = Mutex::new(3); // xlint::allow(D3, fixture: justified lock with a reason)
    drop(g);
}
