pub fn cross_reentry(t: Secs) -> Bytes {
    let raw = t.as_secs();
    Bytes::new(raw)
}
pub fn round_trip(t: Secs) -> Secs {
    let raw = t.as_secs();
    Secs::new(raw)
}
pub fn suffix_reentry(kv_bytes: F) -> Secs {
    let raw = kv_bytes.as_f64();
    Secs::new(raw)
}
pub fn laundered(t: Secs) -> Bytes {
    let raw = convert::widen_u64(t.as_secs());
    Bytes::new(raw)
}
