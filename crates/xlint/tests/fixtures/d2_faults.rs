//! A fault event stamped off the wall clock: the exact bug the fault
//! layer's virtual-clock discipline forbids (replay determinism).

pub struct FaultStamp {
    pub t: f64,
}

pub fn stamp_fault(virtual_t: f64) -> FaultStamp {
    let drift = std::time::Instant::now().elapsed().as_secs_f64();
    FaultStamp { t: virtual_t + drift }
}

pub fn detection_deadline() -> u64 {
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

pub fn jittered_backoff() -> u64 {
    rand::thread_rng().gen()
}
