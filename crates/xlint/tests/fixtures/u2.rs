fn demo() {
    let total_secs = kv_bytes(4096);
    let mut peak_bytes = elapsed_secs();
    let weights_bytes = param_bytes(12);
    let t_secs = compute(kv_bytes(1));
    let plain = kv_bytes(1);
    // xlint::allow(U2, transitional shim: the clock is byte-addressed here)
    let shim_secs = kv_bytes(2);
    let _ = (total_secs, peak_bytes, weights_bytes, t_secs, plain, shim_secs);
}
