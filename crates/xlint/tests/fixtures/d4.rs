pub fn emit_latency(event_log: &mut Vec<Event>, sched: &mut Planner) {
    let t0 = Instant::now();
    let dt = convert::lossless_f64(t0);
    event_log.push(Event::Latency(dt));
    sched.schedule(dt);
}
pub fn observe_entropy(registry: &Registry) {
    let seed = thread_rng();
    registry.metrics.observe(seed);
}
pub fn env_capacity(sched: &mut Planner) {
    let cap = env::var("EXEGPT_CAP");
    sched.reschedule(cap);
}
pub fn clean_path(event_log: &mut Vec<Event>, ticks: u64) {
    let dt = ticks + ticks;
    event_log.push(Event::Latency(dt));
}
