use std::collections::HashMap;
use std::collections::HashSet;

fn counts(keys: &[String]) -> HashMap<String, usize> {
    let mut map = HashMap::new();
    let mut seen: HashSet<&str> = Default::default();
    for k in keys {
        if seen.insert(k) {
            map.insert(k.clone(), 1);
        }
    }
    map
}
