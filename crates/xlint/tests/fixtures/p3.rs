fn persist(x: u32) -> Result<(), Error> {
    mark(x)
}
pub fn drops_everywhere() {
    let st = persist(1);
    let done = persist(2);
    log_status(done);
}
pub fn branches_consume(flag: bool) {
    let st = persist(3);
    if flag {
        st.ok();
    }
}
pub fn audited_drop() {
    // xlint::allow(P3, fire-and-forget cache warm, checked at shutdown)
    let warm = persist(4);
}
