//! Fixture round-trips: every rule fires on its fixture file, scoping
//! waives the right rules, pragmas suppress (and stale pragmas are flagged),
//! and — the self-test the CI gate relies on — the workspace itself is
//! clean.

use std::path::{Path, PathBuf};

use exegpt_xlint::{
    baseline, context_for, find_workspace_root, lint_files, lint_source, lint_workspace, workspace,
    FileReport, Rule,
};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join(name)
}

/// Lints a fixture as if it lived at `label` inside the workspace, so the
/// path-derived rule scoping applies.
fn lint_fixture_as(name: &str, label: &str) -> FileReport {
    let src = std::fs::read_to_string(fixture_path(name)).expect("fixture is readable");
    lint_source(label, &src, context_for(label))
}

fn rule_lines(report: &FileReport, rule: Rule) -> Vec<usize> {
    let mut lines: Vec<usize> =
        report.findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect();
    lines.dedup();
    lines
}

#[test]
fn d1_fixture_flags_every_hash_collection() {
    let report = lint_fixture_as("d1.rs", "crates/serve/src/fixture.rs");
    assert!(report.findings.iter().all(|f| f.rule == Rule::D1), "{:?}", report.findings);
    assert_eq!(rule_lines(&report, Rule::D1), vec![1, 2, 4, 5, 6]);
}

#[test]
fn d2_fixture_flags_clock_and_entropy() {
    let report = lint_fixture_as("d2.rs", "crates/runner/src/fixture.rs");
    let d2 = rule_lines(&report, Rule::D2);
    assert_eq!(d2, vec![4, 9, 14], "{:?}", report.findings);
    // The bench crate is allowed to time things.
    let waived = lint_fixture_as("d2.rs", "crates/bench/src/fixture.rs");
    assert_eq!(rule_lines(&waived, Rule::D2), Vec::<usize>::new());
}

#[test]
fn d2_fixture_keeps_fault_timestamps_on_the_virtual_clock() {
    // Fault activation, detection deadlines and retry backoff must all be
    // computed on the virtual clock — wall-clock or entropy anywhere in
    // the fault layer would break byte-identical replay.
    let report = lint_fixture_as("d2_faults.rs", "crates/faults/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::D2), vec![9, 14, 19], "{:?}", report.findings);
    // The waiver for bench does not extend to the fault layer.
    let waived = lint_fixture_as("d2_faults.rs", "crates/bench/src/fixture.rs");
    assert_eq!(rule_lines(&waived, Rule::D2), Vec::<usize>::new());
}

/// Self-test over the real sources of one crate (recursive, so `bin/`
/// subdirectories are covered): the full rule set, including the
/// syntax-aware L1/P2/D3 families, must come back clean. Returns the
/// number of `.rs` files checked.
fn assert_crate_passes_full_rule_set(crate_dir: &str) -> usize {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root resolves");
    fn walk(dir: &Path, rel: &str, checked: &mut usize) {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .expect("crate sources are readable")
            .map(|e| e.expect("entry").path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().expect("file name").to_string_lossy().into_owned();
            if path.is_dir() {
                walk(&path, &format!("{rel}/{name}"), checked);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let label = format!("{rel}/{name}");
                let src = std::fs::read_to_string(&path).expect("source is readable");
                let report = lint_source(&label, &src, context_for(&label));
                assert!(report.findings.is_empty(), "{label}:\n{:?}", report.findings);
                *checked += 1;
            }
        }
    }
    let mut checked = 0;
    walk(
        &root.join("crates").join(crate_dir).join("src"),
        &format!("crates/{crate_dir}/src"),
        &mut checked,
    );
    checked
}

#[test]
fn faults_crate_passes_the_full_rule_set() {
    // The seeded fault generator is the only randomness the fault layer
    // touches, and every timestamp is virtual.
    let checked = assert_crate_passes_full_rule_set("faults");
    assert!(checked >= 4, "scanned only {checked} faults sources");
}

#[test]
fn fleet_crate_passes_the_full_rule_set() {
    // The fleet fabric merges N replica clocks into one deterministic
    // virtual clock, so the determinism rules (no hash iteration order, no
    // wall clock, no float equality) are load-bearing for it: one
    // violation anywhere and byte-identical replay is gone.
    let checked = assert_crate_passes_full_rule_set("fleet");
    assert!(checked >= 7, "scanned only {checked} fleet sources");
}

#[test]
fn workload_crate_passes_the_full_rule_set() {
    // Workload generation is seeded; any entropy or hash-order dependence
    // here changes every downstream trace.
    let checked = assert_crate_passes_full_rule_set("workload");
    assert!(checked >= 2, "scanned only {checked} workload sources");
}

#[test]
fn bench_crate_passes_the_full_rule_set() {
    // Bench is the one crate allowed wall clocks and panics, but the rest
    // of the rule set (hash order, float equality, layering) still holds.
    let checked = assert_crate_passes_full_rule_set("bench");
    assert!(checked >= 2, "scanned only {checked} bench sources");
}

#[test]
fn units_crate_passes_the_full_rule_set() {
    // The unit newtypes sit under everything; a violation here is
    // workspace-wide.
    let checked = assert_crate_passes_full_rule_set("units");
    assert!(checked >= 1, "scanned only {checked} units sources");
}

#[test]
fn profiler_crate_passes_the_full_rule_set() {
    // The profile cache is the justified-concurrency case: its two lock
    // sites carry D3 pragmas counted against the suppression budget.
    let checked = assert_crate_passes_full_rule_set("profiler");
    assert!(checked >= 3, "scanned only {checked} profiler sources");
}

#[test]
fn baselines_crate_passes_the_full_rule_set() {
    // The comparison systems (ORCA, vLLM, FT/DSI emulations) share the
    // deterministic pipeline and replay guarantees.
    let checked = assert_crate_passes_full_rule_set("baselines");
    assert!(checked >= 3, "scanned only {checked} baselines sources");
}

#[test]
fn scenario_crate_passes_the_full_rule_set() {
    // The scenario layer's whole contract is determinism from config: no
    // wall clock in the loader (D2), no panics in lib code (P1), and
    // byte-identical lowering. Its only RNG is the seeded StdRng behind
    // the arbitrary generators.
    let checked = assert_crate_passes_full_rule_set("scenario");
    assert!(checked >= 8, "scanned only {checked} scenario sources");
}

#[test]
fn n1_fixture_flags_casts_only_in_the_numeric_core() {
    let report = lint_fixture_as("n1.rs", "crates/core/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::N1), vec![2, 3], "{:?}", report.findings);
    let sim = lint_fixture_as("n1.rs", "crates/sim/src/fixture.rs");
    assert_eq!(rule_lines(&sim, Rule::N1), vec![2, 3]);
    // The hardware model's arithmetic feeds the same search (PR: unit layer).
    let cluster = lint_fixture_as("n1.rs", "crates/cluster/src/fixture.rs");
    assert_eq!(rule_lines(&cluster, Rule::N1), vec![2, 3]);
    // Other crates and bin targets present numbers; N1 does not apply.
    let waived = lint_fixture_as("n1.rs", "crates/runner/src/fixture.rs");
    assert_eq!(rule_lines(&waived, Rule::N1), Vec::<usize>::new());
    let bin = lint_fixture_as("n1.rs", "crates/core/src/bin/fixture-cli.rs");
    assert_eq!(rule_lines(&bin, Rule::N1), Vec::<usize>::new());
}

#[test]
fn f1_fixture_flags_float_equality() {
    let report = lint_fixture_as("f1.rs", "crates/dist/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::F1), vec![2, 6], "{:?}", report.findings);
}

#[test]
fn p1_fixture_flags_panics_outside_bins_and_bench() {
    let report = lint_fixture_as("p1.rs", "crates/model/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::P1), vec![2, 6, 10], "{:?}", report.findings);
    for waived_label in ["crates/bench/src/fixture.rs", "crates/model/src/main.rs"] {
        let waived = lint_fixture_as("p1.rs", waived_label);
        assert_eq!(rule_lines(&waived, Rule::P1), Vec::<usize>::new(), "{waived_label}");
    }
}

#[test]
fn u1_fixture_flags_raw_float_signatures_only_in_units_core() {
    for label in ["crates/cluster/src/fixture.rs", "crates/sim/src/fixture.rs"] {
        let report = lint_fixture_as("u1.rs", label);
        // `slowed(factor: f64)` and `efficiency_of(...) -> f64` stay clean:
        // the dimensionless vocabulary (ratio/frac/efficiency/…) exempts
        // floats that genuinely carry no unit. `headroom` is outside the
        // vocabulary, so it still needs its pragma.
        assert_eq!(rule_lines(&report, Rule::U1), vec![1, 4, 9], "{label}: {:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1, "{label}: the pragma'd headroom is suppressed");
    }
    // Outside the unit-carrying crates (and in bin targets) U1 is waived;
    // the now-unused pragma surfaces as X0 instead.
    for label in ["crates/runner/src/fixture.rs", "crates/cluster/src/bin/tool.rs"] {
        let waived = lint_fixture_as("u1.rs", label);
        assert_eq!(rule_lines(&waived, Rule::U1), Vec::<usize>::new(), "{label}");
        assert_eq!(rule_lines(&waived, Rule::X0), vec![28], "{label}: stale pragma is X0");
    }
}

#[test]
fn u2_fixture_flags_suffix_conflicts_everywhere() {
    // U2 is crate-agnostic: naming consistency has no boundary crate.
    for label in ["crates/runner/src/fixture.rs", "crates/sim/src/fixture.rs"] {
        let report = lint_fixture_as("u2.rs", label);
        assert_eq!(rule_lines(&report, Rule::U2), vec![2, 3], "{label}: {:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1, "{label}");
        assert!(report.suppressed[0].reason.contains("transitional"));
    }
}

#[test]
fn pragmas_suppress_and_stale_pragmas_are_flagged() {
    let report = lint_fixture_as("pragmas.rs", "crates/serve/src/fixture.rs");
    assert_eq!(report.suppressed.len(), 2, "{:?}", report.suppressed);
    assert!(report.suppressed.iter().all(|s| s.finding.rule == Rule::D1));
    assert!(report.suppressed.iter().all(|s| !s.reason.is_empty()));
    // No raw D1 survives; the unknown, stale, and reasonless pragmas each
    // surface as X0.
    assert_eq!(rule_lines(&report, Rule::D1), Vec::<usize>::new());
    assert_eq!(rule_lines(&report, Rule::X0), vec![6, 9, 12], "{:?}", report.findings);
}

#[test]
fn lint_files_reports_fixture_violations_like_the_cli() {
    let paths: Vec<PathBuf> =
        ["d1.rs", "d2.rs", "f1.rs", "p1.rs"].iter().map(|n| fixture_path(n)).collect();
    let report = lint_files(&paths).expect("fixtures lint");
    assert!(!report.is_clean(), "fixtures must make the CLI exit non-zero");
    assert_eq!(report.files_scanned, 4);
    for rule in [Rule::D1, Rule::D2, Rule::F1, Rule::P1] {
        assert!(report.count(rule) > 0, "expected at least one {} finding", rule.id());
    }
}

#[test]
fn l1_fixture_flags_upward_imports_by_layer() {
    // As a `core` source, fleet (above) and serve (above) are upward
    // edges; sim and cluster (below) are fine, and test code is exempt.
    let report = lint_fixture_as("l1.rs", "crates/core/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::L1), vec![4, 5, 10], "{:?}", report.findings);
    // As a `bench` source (top layer) every import points downward.
    let top = lint_fixture_as("l1.rs", "crates/bench/src/fixture.rs");
    assert_eq!(rule_lines(&top, Rule::L1), Vec::<usize>::new(), "{:?}", top.findings);
}

#[test]
fn l1_manifest_check_demonstrates_the_ci_failure_for_upward_deps() {
    // The same declared DAG gates Cargo.toml edges: an upward dependency
    // makes the report non-clean, which is exactly the CI gate's exit 1.
    let me = workspace::crate_index_for_dir("sim").expect("sim is declared");
    let manifest = "[package]\nname = \"exegpt-sim\"\n\n[dependencies]\n\
                    exegpt-serve.workspace = true\n";
    let findings = workspace::lint_manifest_text("crates/sim/Cargo.toml", me, manifest);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::L1);
    let mut report = exegpt_xlint::Report::default();
    report.findings.extend(findings);
    assert!(!report.is_clean(), "upward manifest edge must fail the gate");
}

#[test]
fn p2_fixture_flags_discards_and_honors_handling() {
    let report = lint_fixture_as("p2.rs", "crates/runner/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::P2), vec![25, 26, 27, 28], "{:?}", report.findings);
    assert_eq!(report.suppressed.len(), 1, "the pragma'd discard is suppressed");
    assert_eq!(report.suppressed[0].finding.rule, Rule::P2);
    assert!(report.findings.iter().all(|f| f.rule == Rule::P2), "{:?}", report.findings);
    // Bin targets (like P1) may discard deliberately.
    let bin = lint_fixture_as("p2.rs", "crates/runner/src/bin/tool.rs");
    assert_eq!(rule_lines(&bin, Rule::P2), Vec::<usize>::new());
}

#[test]
fn p2_fixture_resolves_use_aliases() {
    // `use inner::persist as store_fn;` — the discarded call through the
    // alias still resolves to the local fallible fn.
    let report = lint_fixture_as("p2_alias.rs", "crates/runner/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::P2), vec![8], "{:?}", report.findings);
}

#[test]
fn d4_fixture_flags_nondeterministic_flows_into_sinks() {
    // In library code D2 flags the *sources* (lines 2 and 8) and D4 flags
    // the *flows*: laundering through `convert::` clears unit strips but
    // never nondeterminism, so the event push, the plan call, the metrics
    // write and the env-derived reschedule all fire.
    let report = lint_fixture_as("d4.rs", "crates/serve/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::D2), vec![2, 8], "{:?}", report.findings);
    assert_eq!(rule_lines(&report, Rule::D4), vec![4, 5, 9, 13], "{:?}", report.findings);
    // The bench waiver scopes D2's sources, not D4's sinks: bench may
    // *time* things, but a wall-clock value still must not reach an event
    // log or a plan. Env reads become explicit inputs there (bin-like).
    let bench = lint_fixture_as("d4.rs", "crates/bench/src/fixture.rs");
    assert_eq!(rule_lines(&bench, Rule::D2), Vec::<usize>::new());
    assert_eq!(rule_lines(&bench, Rule::D4), vec![4, 5, 9], "{:?}", bench.findings);
}

#[test]
fn u3_fixture_flags_cross_unit_reentry_only() {
    let report = lint_fixture_as("u3.rs", "crates/runner/src/fixture.rs");
    // Cross-unit re-entry (secs-stripped into `Bytes::new`, a `_bytes`
    // suffixed strip into `Secs::new`) fires; the same-unit round trip
    // and the `convert::`-laundered path stay clean.
    assert_eq!(rule_lines(&report, Rule::U3), vec![3, 11], "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.rule == Rule::U3), "{:?}", report.findings);
}

#[test]
fn p3_fixture_flags_definitely_dropped_results() {
    let report = lint_fixture_as("p3.rs", "crates/runner/src/fixture.rs");
    // `st` in `drops_everywhere` is never mentioned again → definite loss.
    // `done` is consumed, and the `st` in `branches_consume` is consumed
    // on *some* path — P3 under-approximates, so neither fires.
    assert_eq!(rule_lines(&report, Rule::P3), vec![5], "{:?}", report.findings);
    assert_eq!(report.suppressed.len(), 1, "the pragma'd warm-up drop is suppressed");
    assert_eq!(report.suppressed[0].finding.rule, Rule::P3);
    // Bin targets may fire-and-forget (P3 is scoped like P1/P2).
    let bin = lint_fixture_as("p3.rs", "crates/runner/src/bin/tool.rs");
    assert_eq!(rule_lines(&bin, Rule::P3), Vec::<usize>::new());
}

#[test]
fn d3_fixture_flags_concurrency_outside_audited_modules() {
    let report = lint_fixture_as("d3.rs", "crates/serve/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::D3), vec![2, 5, 6, 7, 8, 13], "{:?}", report.findings);
    assert_eq!(report.suppressed.len(), 1, "the pragma'd Mutex is suppressed");
    // The audited pool modules may hold the primitives, but Relaxed on a
    // non-counter receiver is still flagged there.
    let audited = lint_fixture_as("d3.rs", "crates/core/src/scheduler.rs");
    assert_eq!(rule_lines(&audited, Rule::D3), vec![13], "{:?}", audited.findings);
}

#[test]
fn ratchet_demonstrates_the_ci_failure_for_new_suppressions() {
    // A fixture whose pragma count exceeds its committed budget: the
    // budget check appends an X1 finding, so the gate exits 1.
    let report = lint_fixture_as("p2.rs", "crates/runner/src/fixture.rs");
    let mut full = exegpt_xlint::Report::default();
    full.suppressed.extend(report.suppressed);
    let counts = baseline::suppression_counts(&full);
    assert_eq!(counts.get("crates/runner"), Some(&1));
    let zero = baseline::Baseline::default();
    let over = baseline::check_budget("xlint-baseline.toml", &counts, &zero);
    assert_eq!(over.len(), 1, "{over:?}");
    assert_eq!(over[0].rule, Rule::X1);
    full.findings.extend(over);
    assert!(!full.is_clean(), "budget exceedance must fail the gate");
    // Raising the budget to the live count clears it.
    let raised = baseline::Baseline { budgets: counts.clone() };
    assert!(baseline::check_budget("xlint-baseline.toml", &counts, &raised).is_empty());
}

#[test]
fn committed_baseline_covers_the_live_workspace_suppressions() {
    // End-to-end ratchet: the committed xlint-baseline.toml must hold the
    // workspace's current pragma counts exactly — under budget means the
    // file should be ratcheted down, over budget fails CI.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root resolves");
    let text = std::fs::read_to_string(root.join("xlint-baseline.toml"))
        .expect("xlint-baseline.toml is committed at the workspace root");
    let base = baseline::parse_baseline(&text).expect("committed baseline parses");
    let report = lint_workspace(&root).expect("workspace lints");
    let counts = baseline::suppression_counts(&report);
    let over = baseline::check_budget("xlint-baseline.toml", &counts, &base);
    assert!(over.is_empty(), "suppression budget exceeded:\n{over:?}");
    let slack = baseline::ratchet_candidates(&counts, &base);
    assert!(
        slack.is_empty(),
        "baseline is over-provisioned, ratchet it down with --write-baseline: {slack:?}"
    );
}

#[test]
fn sarif_rendering_of_fixture_findings_is_wellformed() {
    let file_report = lint_fixture_as("d3.rs", "crates/serve/src/fixture.rs");
    let mut report = exegpt_xlint::Report::default();
    report.findings.extend(file_report.findings);
    report.suppressed.extend(file_report.suppressed);
    report.files_scanned = 1;
    let sarif = report.render_sarif();
    assert!(sarif.contains("\"ruleId\": \"D3\""));
    assert!(sarif.contains("\"kind\": \"inSource\""));
    assert!(sarif.contains("\"executionSuccessful\": false"));
}

#[test]
fn workspace_is_clean_so_the_ci_gate_passes() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root resolves");
    let report = lint_workspace(&root).expect("workspace lints");
    assert!(report.is_clean(), "xlint --workspace must exit 0; found:\n{}", report.render_text());
    assert!(report.files_scanned > 50, "scanned only {} files", report.files_scanned);
    // The documented suppressions (cache sharding, preset constructors)
    // stay visible in the report rather than vanishing.
    assert!(!report.suppressed.is_empty());
}
