//! Fixture round-trips: every rule fires on its fixture file, scoping
//! waives the right rules, pragmas suppress (and stale pragmas are flagged),
//! and — the self-test the CI gate relies on — the workspace itself is
//! clean.

use std::path::{Path, PathBuf};

use exegpt_xlint::{
    context_for, find_workspace_root, lint_files, lint_source, lint_workspace, FileReport, Rule,
};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join(name)
}

/// Lints a fixture as if it lived at `label` inside the workspace, so the
/// path-derived rule scoping applies.
fn lint_fixture_as(name: &str, label: &str) -> FileReport {
    let src = std::fs::read_to_string(fixture_path(name)).expect("fixture is readable");
    lint_source(label, &src, context_for(label))
}

fn rule_lines(report: &FileReport, rule: Rule) -> Vec<usize> {
    let mut lines: Vec<usize> =
        report.findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect();
    lines.dedup();
    lines
}

#[test]
fn d1_fixture_flags_every_hash_collection() {
    let report = lint_fixture_as("d1.rs", "crates/serve/src/fixture.rs");
    assert!(report.findings.iter().all(|f| f.rule == Rule::D1), "{:?}", report.findings);
    assert_eq!(rule_lines(&report, Rule::D1), vec![1, 2, 4, 5, 6]);
}

#[test]
fn d2_fixture_flags_clock_and_entropy() {
    let report = lint_fixture_as("d2.rs", "crates/runner/src/fixture.rs");
    let d2 = rule_lines(&report, Rule::D2);
    assert_eq!(d2, vec![4, 9, 14], "{:?}", report.findings);
    // The bench crate is allowed to time things.
    let waived = lint_fixture_as("d2.rs", "crates/bench/src/fixture.rs");
    assert_eq!(rule_lines(&waived, Rule::D2), Vec::<usize>::new());
}

#[test]
fn d2_fixture_keeps_fault_timestamps_on_the_virtual_clock() {
    // Fault activation, detection deadlines and retry backoff must all be
    // computed on the virtual clock — wall-clock or entropy anywhere in
    // the fault layer would break byte-identical replay.
    let report = lint_fixture_as("d2_faults.rs", "crates/faults/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::D2), vec![9, 14, 19], "{:?}", report.findings);
    // The waiver for bench does not extend to the fault layer.
    let waived = lint_fixture_as("d2_faults.rs", "crates/bench/src/fixture.rs");
    assert_eq!(rule_lines(&waived, Rule::D2), Vec::<usize>::new());
}

#[test]
fn faults_crate_passes_the_full_rule_set() {
    // Self-test over the real sources of the new crate: the seeded fault
    // generator is the only randomness it touches, and every timestamp is
    // virtual, so the determinism rules must come back clean.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root resolves");
    let dir = root.join("crates").join("faults").join("src");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("faults sources are readable") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let name = path.file_name().expect("file name").to_string_lossy().into_owned();
            let label = format!("crates/faults/src/{name}");
            let src = std::fs::read_to_string(&path).expect("source is readable");
            let report = lint_source(&label, &src, context_for(&label));
            assert!(report.findings.is_empty(), "{label}:\n{:?}", report.findings);
            checked += 1;
        }
    }
    assert!(checked >= 4, "scanned only {checked} faults sources");
}

#[test]
fn fleet_crate_passes_the_full_rule_set() {
    // The fleet fabric merges N replica clocks into one deterministic
    // virtual clock, so the determinism rules (no hash iteration order, no
    // wall clock, no float equality) are load-bearing for it: one
    // violation anywhere and byte-identical replay is gone.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root resolves");
    let dir = root.join("crates").join("fleet").join("src");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("fleet sources are readable") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let name = path.file_name().expect("file name").to_string_lossy().into_owned();
            let label = format!("crates/fleet/src/{name}");
            let src = std::fs::read_to_string(&path).expect("source is readable");
            let report = lint_source(&label, &src, context_for(&label));
            assert!(report.findings.is_empty(), "{label}:\n{:?}", report.findings);
            checked += 1;
        }
    }
    assert!(checked >= 7, "scanned only {checked} fleet sources");
}

#[test]
fn n1_fixture_flags_casts_only_in_the_numeric_core() {
    let report = lint_fixture_as("n1.rs", "crates/core/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::N1), vec![2, 3], "{:?}", report.findings);
    let sim = lint_fixture_as("n1.rs", "crates/sim/src/fixture.rs");
    assert_eq!(rule_lines(&sim, Rule::N1), vec![2, 3]);
    // The hardware model's arithmetic feeds the same search (PR: unit layer).
    let cluster = lint_fixture_as("n1.rs", "crates/cluster/src/fixture.rs");
    assert_eq!(rule_lines(&cluster, Rule::N1), vec![2, 3]);
    // Other crates and bin targets present numbers; N1 does not apply.
    let waived = lint_fixture_as("n1.rs", "crates/runner/src/fixture.rs");
    assert_eq!(rule_lines(&waived, Rule::N1), Vec::<usize>::new());
    let bin = lint_fixture_as("n1.rs", "crates/core/src/bin/fixture-cli.rs");
    assert_eq!(rule_lines(&bin, Rule::N1), Vec::<usize>::new());
}

#[test]
fn f1_fixture_flags_float_equality() {
    let report = lint_fixture_as("f1.rs", "crates/dist/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::F1), vec![2, 6], "{:?}", report.findings);
}

#[test]
fn p1_fixture_flags_panics_outside_bins_and_bench() {
    let report = lint_fixture_as("p1.rs", "crates/model/src/fixture.rs");
    assert_eq!(rule_lines(&report, Rule::P1), vec![2, 6, 10], "{:?}", report.findings);
    for waived_label in ["crates/bench/src/fixture.rs", "crates/model/src/main.rs"] {
        let waived = lint_fixture_as("p1.rs", waived_label);
        assert_eq!(rule_lines(&waived, Rule::P1), Vec::<usize>::new(), "{waived_label}");
    }
}

#[test]
fn u1_fixture_flags_raw_float_signatures_only_in_units_core() {
    for label in ["crates/cluster/src/fixture.rs", "crates/sim/src/fixture.rs"] {
        let report = lint_fixture_as("u1.rs", label);
        assert_eq!(rule_lines(&report, Rule::U1), vec![1, 4, 9], "{label}: {:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1, "{label}: the pragma'd fraction is suppressed");
    }
    // Outside the unit-carrying crates (and in bin targets) U1 is waived;
    // the now-unused pragma surfaces as X0 instead.
    for label in ["crates/runner/src/fixture.rs", "crates/cluster/src/bin/tool.rs"] {
        let waived = lint_fixture_as("u1.rs", label);
        assert_eq!(rule_lines(&waived, Rule::U1), Vec::<usize>::new(), "{label}");
        assert_eq!(rule_lines(&waived, Rule::X0), vec![22], "{label}: stale pragma is X0");
    }
}

#[test]
fn u2_fixture_flags_suffix_conflicts_everywhere() {
    // U2 is crate-agnostic: naming consistency has no boundary crate.
    for label in ["crates/runner/src/fixture.rs", "crates/sim/src/fixture.rs"] {
        let report = lint_fixture_as("u2.rs", label);
        assert_eq!(rule_lines(&report, Rule::U2), vec![2, 3], "{label}: {:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1, "{label}");
        assert!(report.suppressed[0].reason.contains("transitional"));
    }
}

#[test]
fn pragmas_suppress_and_stale_pragmas_are_flagged() {
    let report = lint_fixture_as("pragmas.rs", "crates/serve/src/fixture.rs");
    assert_eq!(report.suppressed.len(), 2, "{:?}", report.suppressed);
    assert!(report.suppressed.iter().all(|s| s.finding.rule == Rule::D1));
    assert!(report.suppressed.iter().all(|s| !s.reason.is_empty()));
    // No raw D1 survives; the unknown, stale, and reasonless pragmas each
    // surface as X0.
    assert_eq!(rule_lines(&report, Rule::D1), Vec::<usize>::new());
    assert_eq!(rule_lines(&report, Rule::X0), vec![6, 9, 12], "{:?}", report.findings);
}

#[test]
fn lint_files_reports_fixture_violations_like_the_cli() {
    let paths: Vec<PathBuf> =
        ["d1.rs", "d2.rs", "f1.rs", "p1.rs"].iter().map(|n| fixture_path(n)).collect();
    let report = lint_files(&paths).expect("fixtures lint");
    assert!(!report.is_clean(), "fixtures must make the CLI exit non-zero");
    assert_eq!(report.files_scanned, 4);
    for rule in [Rule::D1, Rule::D2, Rule::F1, Rule::P1] {
        assert!(report.count(rule) > 0, "expected at least one {} finding", rule.id());
    }
}

#[test]
fn workspace_is_clean_so_the_ci_gate_passes() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root resolves");
    let report = lint_workspace(&root).expect("workspace lints");
    assert!(report.is_clean(), "xlint --workspace must exit 0; found:\n{}", report.render_text());
    assert!(report.files_scanned > 50, "scanned only {} files", report.files_scanned);
    // The documented suppressions (cache sharding, preset constructors)
    // stay visible in the report rather than vanishing.
    assert!(!report.suppressed.is_empty());
}
