//! Item-extraction golden tests on deliberately tricky sources, plus the
//! property the whole linter leans on: lexing + parsing + linting never
//! panics, whatever bytes come in.

use exegpt_xlint::parser::{parse_source, Item, ItemKind, Visibility};
use exegpt_xlint::{lint_source, FileContext};
use proptest::prelude::*;

fn named<'a>(items: &'a [Item], name: &str) -> &'a Item {
    items.iter().find(|i| i.name == name).unwrap_or_else(|| panic!("item `{name}` parsed"))
}

#[test]
fn nested_mods_yield_flat_items_with_correct_spans() {
    let src = "\
mod a {
    pub mod b {
        pub(crate) fn inner() -> Result<(), ()> {
            Ok(())
        }
    }
    const K: usize = 3;
}
mod leaf;
";
    let items = parse_source(src);
    let a = named(&items, "a");
    assert!(matches!(a.kind, ItemKind::Mod { inline: true }));
    assert_eq!((a.line, a.end_line), (1, 8));
    let b = named(&items, "b");
    assert_eq!(b.vis, Visibility::Pub);
    assert_eq!((b.line, b.end_line), (2, 6));
    let inner = named(&items, "inner");
    assert_eq!(inner.vis, Visibility::Restricted);
    assert!(matches!(inner.kind, ItemKind::Fn(s) if s.returns_result));
    assert_eq!(named(&items, "K").kind, ItemKind::Const);
    assert!(matches!(named(&items, "leaf").kind, ItemKind::Mod { inline: false }));
}

#[test]
fn cfg_test_modules_still_parse_as_items() {
    // The parser reports structure; *rules* decide whether a region is
    // exempt. A #[cfg(test)] mod must still appear with its span.
    let src = "\
fn shipped() -> Result<u8, u8> { Ok(0) }
#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn probe() {
        assert!(shipped().is_ok());
    }
}
";
    let items = parse_source(src);
    let tests = named(&items, "tests");
    assert_eq!((tests.line, tests.end_line), (3, 9));
    let probe = named(&items, "probe");
    assert!(matches!(probe.kind, ItemKind::Fn(s) if !s.returns_result && !s.must_use));
    assert_eq!(named(&items, "super::*").kind, ItemKind::Use);
}

#[test]
fn raw_strings_and_literals_do_not_confuse_item_boundaries() {
    // The raw string contains `fn fake()` and unbalanced braces; the lexer
    // strips literals, so none of it may surface as items.
    let src = "\
const DOC: &str = r#\"fn fake() -> Result<(), ()> { } } } {\"#;
static BRACES: &str = \"{ fn also_fake() }\";
fn real() {}
";
    let items = parse_source(src);
    assert!(!items.iter().any(|i| i.name.contains("fake")), "{items:?}");
    assert_eq!(named(&items, "DOC").kind, ItemKind::Const);
    assert_eq!(named(&items, "BRACES").kind, ItemKind::Static);
    let real = named(&items, "real");
    assert_eq!((real.line, real.end_line), (3, 3));
}

#[test]
fn macro_heavy_sources_keep_their_surrounding_items() {
    let src = "\
macro_rules! gen {
    ($n:ident) => {
        fn $n() {}
    };
}
gen!(from_macro);
#[must_use]
pub fn after() -> u32 {
    7
}
";
    let items = parse_source(src);
    let mac = named(&items, "gen");
    assert_eq!(mac.kind, ItemKind::MacroDef);
    assert_eq!((mac.line, mac.end_line), (1, 5));
    // `fn $n()` inside the macro body is not an item occurrence the rules
    // should resolve against ($n is not an ident the lexer keeps paired).
    let after = named(&items, "after");
    assert!(matches!(after.kind, ItemKind::Fn(s) if s.must_use));
    assert_eq!(after.vis, Visibility::Pub);
    assert_eq!((after.line, after.end_line), (8, 10), "anchored at the `fn` keyword");
}

#[test]
fn impl_headers_and_trait_bodies_are_recovered() {
    let src = "\
trait Estimator {
    fn estimate(&self) -> Result<u64, ()>;
    fn hint(&self) -> usize {
        0
    }
}
impl<T: Clone> Estimator for Vec<T> {
    fn estimate(&self) -> Result<u64, ()> {
        Ok(self.len() as u64)
    }
}
";
    let items = parse_source(src);
    assert_eq!(named(&items, "Estimator").kind, ItemKind::Trait);
    let impls: Vec<&Item> = items.iter().filter(|i| i.kind == ItemKind::Impl).collect();
    assert_eq!(impls.len(), 1);
    assert!(impls[0].name.contains("Estimator for Vec"), "{}", impls[0].name);
    let estimates: Vec<&Item> = items.iter().filter(|i| i.name == "estimate").collect();
    assert_eq!(estimates.len(), 2, "trait decl and impl method");
    assert!(estimates.iter().all(|i| matches!(i.kind, ItemKind::Fn(s) if s.returns_result)));
}

#[test]
fn malformed_sources_parse_without_panicking() {
    // Truncations and unbalanced nesting must degrade, not crash.
    for src in [
        "fn",
        "fn (",
        "pub",
        "pub(",
        "impl {",
        "mod m { mod n {",
        "use ;;;",
        "#[must_use",
        "fn f() -> Result<",
        "}}}}",
        "const = ;",
        "macro_rules!",
        "extern",
    ] {
        let _ = parse_source(src);
    }
}

// The vocabulary deliberately mixes item keywords, brackets, attributes
// and junk so random joins form deeply broken pseudo-Rust.
const VOCAB: [&str; 24] = [
    "fn",
    "mod",
    "impl",
    "trait",
    "use",
    "pub",
    "const",
    "static",
    "struct",
    "enum",
    "macro_rules!",
    "#[must_use]",
    "#[cfg(test)]",
    "{",
    "}",
    "(",
    ")",
    "<",
    ">",
    ";",
    "-> Result<(), ()>",
    "ident",
    "\"str { fn\"",
    "let _ = f();",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parsing_and_linting_never_panic(picks in prop::collection::vec(0usize..VOCAB.len(), 0..40)) {
        let src: String =
            picks.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ");
        let items = parse_source(&src);
        for it in &items {
            prop_assert!(it.end_line >= it.line || it.end_line == 0);
            prop_assert!(it.end >= it.start);
        }
        // The full rule pipeline (lexer regions, parser-backed P2, L1, D3)
        // must also survive the same soup under every scoping.
        let strict = FileContext {
            numeric_core: true,
            units_core: true,
            crate_idx: Some(0),
            ..FileContext::default()
        };
        let _ = lint_source("soup.rs", &src, strict);
        let _ = lint_source("soup.rs", &src, FileContext::default());
    }
}
