//! SARIF 2.1.0 rendering of a lint [`Report`](crate::Report).
//!
//! SARIF (Static Analysis Results Interchange Format) is the
//! machine-readable schema CI dashboards and code-review tooling ingest;
//! `xlint --workspace --sarif` emits one deterministic run: findings as
//! `error`-level results, pragma-suppressed findings as `note`-level
//! results carrying an `inSource` suppression with the pragma's reason as
//! its justification. Output is byte-stable for a given report (no
//! timestamps, no GUIDs), so archived artifacts diff cleanly.

use std::fmt::Write as _;

use crate::json_str;
use crate::rules::Rule;
use crate::Report;

/// Renders `report` as a single-run SARIF 2.1.0 document.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"exegpt-xlint\",\n");
    let _ = writeln!(out, "          \"version\": {},", json_str(env!("CARGO_PKG_VERSION")));
    out.push_str("          \"informationUri\": \"https://github.com/exegpt/exegpt-rs\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in Rule::ALL.into_iter().enumerate() {
        let _ = writeln!(
            out,
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}",
            json_str(rule.id()),
            json_str(rule.describe()),
            if i + 1 == Rule::ALL.len() { "" } else { "," },
        );
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let total = report.findings.len() + report.suppressed.len();
    let mut emitted = 0usize;
    for f in &report.findings {
        emitted += 1;
        push_result(&mut out, &f.file, f.line, f.rule, &f.message, &f.suggestion, None);
        out.push_str(if emitted == total { "\n" } else { ",\n" });
    }
    for s in &report.suppressed {
        emitted += 1;
        let f = &s.finding;
        push_result(&mut out, &f.file, f.line, f.rule, &f.message, &f.suggestion, Some(&s.reason));
        out.push_str(if emitted == total { "\n" } else { ",\n" });
    }
    out.push_str("      ],\n");
    let props = match &report.cache {
        Some(stats) => format!(
            ", \"properties\": {{\"cacheHits\": {}, \"cacheMisses\": {}}}",
            stats.hits, stats.misses
        ),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "      \"invocations\": [{{\"executionSuccessful\": {}{props}}}]",
        report.is_clean()
    );
    out.push_str("    }\n  ]\n}\n");
    out
}

/// Appends one SARIF result object (without the trailing separator).
fn push_result(
    out: &mut String,
    file: &str,
    line: usize,
    rule: Rule,
    message: &str,
    suggestion: &str,
    suppressed_reason: Option<&str>,
) {
    let level = if suppressed_reason.is_some() { "note" } else { "error" };
    let _ = write!(
        out,
        "        {{\"ruleId\": {}, \"level\": \"{level}\", \"message\": {{\"text\": {}}}, \
         \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
         \"region\": {{\"startLine\": {line}}}}}}}]",
        json_str(rule.id()),
        json_str(&format!("{message} — {suggestion}")),
        json_str(file),
    );
    if let Some(reason) = suppressed_reason {
        let _ = write!(
            out,
            ", \"suppressions\": [{{\"kind\": \"inSource\", \"justification\": {}}}]",
            json_str(reason)
        );
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Suppressed};

    #[test]
    fn sarif_shape_is_stable_and_carries_suppressions() {
        let finding = Finding {
            file: "crates/sim/src/x.rs".into(),
            line: 7,
            rule: Rule::D1,
            message: "m".into(),
            suggestion: "s".into(),
        };
        let report = Report {
            findings: vec![finding.clone()],
            suppressed: vec![Suppressed { finding, reason: "bounded cache".into() }],
            files_scanned: 1,
            cache: None,
        };
        let sarif = report.render_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"exegpt-xlint\""));
        assert!(sarif.contains("\"ruleId\": \"D1\""));
        assert!(sarif.contains("\"startLine\": 7"));
        assert!(sarif.contains("\"justification\": \"bounded cache\""));
        assert!(sarif.contains("\"executionSuccessful\": false"));
        assert_eq!(report.render_sarif(), sarif, "rendering is deterministic");
    }

    #[test]
    fn cache_stats_surface_as_invocation_properties() {
        let mut report = Report::default();
        assert!(!report.render_sarif().contains("cacheHits"), "absent when uncached");
        report.cache = Some(crate::cache::CacheStats { hits: 120, misses: 7 });
        let sarif = report.render_sarif();
        assert!(sarif.contains("\"cacheHits\": 120"));
        assert!(sarif.contains("\"cacheMisses\": 7"));
    }

    #[test]
    fn empty_report_is_a_successful_run() {
        let sarif = Report::default().render_sarif();
        assert!(sarif.contains("\"results\": [\n      ]"));
        assert!(sarif.contains("\"executionSuccessful\": true"));
        // Every declared rule is listed in the driver metadata.
        for rule in Rule::ALL {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", rule.id())));
        }
    }
}
