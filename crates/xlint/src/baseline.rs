//! The per-crate suppression-budget ratchet.
//!
//! `xlint-baseline.toml` at the workspace root commits the number of
//! `xlint::allow` pragma suppressions each crate is allowed. The CI gate
//! (`xlint --workspace --baseline xlint-baseline.toml`) fails — rule
//! **X1** — whenever any crate's live suppression count *exceeds* its
//! budget: suppressions can be removed freely (ratchet the file down with
//! `--write-baseline`), but never silently added. A crate absent from the
//! baseline has budget 0, so a pragma in a previously-clean crate is an
//! increase too.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{Finding, Rule};
use crate::Report;

/// Parsed baseline: suppression budget per workspace unit
/// (`crates/<name>`, or `src` for the root package).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Budgeted suppression count per unit.
    pub budgets: BTreeMap<String, usize>,
}

/// Parses the minimal TOML dialect the baseline uses: comments, a
/// `[budget]` table, and `"unit" = count` entries.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut budgets = BTreeMap::new();
    let mut in_budget = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            in_budget = line == "[budget]";
            continue;
        }
        if !in_budget {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `\"unit\" = count`", lineno + 1));
        };
        let key = key.trim().trim_matches('"').to_string();
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("line {}: `{}` is not a count", lineno + 1, value.trim()))?;
        if budgets.insert(key.clone(), value).is_some() {
            return Err(format!("line {}: duplicate entry for `{key}`", lineno + 1));
        }
    }
    Ok(Baseline { budgets })
}

/// The workspace unit a reported file path belongs to.
pub fn unit_for(file: &str) -> String {
    let mut parts = file.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        _ => "src".to_string(),
    }
}

/// Live suppression counts per unit, from a report's suppressed list.
pub fn suppression_counts(report: &Report) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for s in &report.suppressed {
        *counts.entry(unit_for(&s.finding.file)).or_insert(0) += 1;
    }
    counts
}

/// The ratchet check: one X1 finding per unit whose live count exceeds
/// its budget. Units under budget produce nothing (lower the committed
/// file with `--write-baseline` to lock the improvement in).
pub fn check_budget(
    baseline_file: &str,
    counts: &BTreeMap<String, usize>,
    baseline: &Baseline,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (unit, &count) in counts {
        let budget = baseline.budgets.get(unit).copied().unwrap_or(0);
        if count > budget {
            findings.push(Finding {
                file: baseline_file.to_string(),
                line: 1,
                rule: Rule::X1,
                message: format!(
                    "`{unit}` has {count} pragma suppression{} but a budget of {budget}",
                    if count == 1 { "" } else { "s" },
                ),
                suggestion: "fix the new violation instead of pragma-ing it away; a \
                             genuinely justified new pragma must raise the budget in \
                             xlint-baseline.toml explicitly, in the same change"
                    .to_string(),
            });
        }
    }
    findings
}

/// Units whose live count is *below* budget — candidates for ratcheting
/// the committed file down.
pub fn ratchet_candidates(
    counts: &BTreeMap<String, usize>,
    baseline: &Baseline,
) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for (unit, &budget) in &baseline.budgets {
        let live = counts.get(unit).copied().unwrap_or(0);
        if live < budget {
            out.push((unit.clone(), live, budget));
        }
    }
    out
}

/// Renders a baseline file from live counts (the `--write-baseline` body).
pub fn render_baseline(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# xlint suppression budget: committed per-crate `xlint::allow` pragma counts.\n\
         # The CI gate (`xlint --workspace --baseline xlint-baseline.toml`) fails when\n\
         # any crate exceeds its budget, so suppressions can only be ratcheted down.\n\
         # Regenerate with `xlint --workspace --write-baseline xlint-baseline.toml`.\n\n\
         [budget]\n",
    );
    for (unit, count) in counts {
        let _ = writeln!(out, "\"{unit}\" = {count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let c = counts(&[("crates/sim", 6), ("crates/cluster", 12)]);
        let parsed = parse_baseline(&render_baseline(&c)).expect("rendered baseline parses");
        assert_eq!(parsed.budgets, c);
    }

    #[test]
    fn over_budget_units_fail_and_under_budget_units_pass() {
        let baseline = Baseline { budgets: counts(&[("crates/sim", 2), ("crates/model", 3)]) };
        let live = counts(&[("crates/sim", 3), ("crates/model", 1)]);
        let f = check_budget("xlint-baseline.toml", &live, &baseline);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::X1);
        assert!(f[0].message.contains("crates/sim"));
        let down = ratchet_candidates(&live, &baseline);
        assert_eq!(down, vec![("crates/model".to_string(), 1, 3)]);
    }

    #[test]
    fn units_missing_from_the_baseline_have_budget_zero() {
        let f = check_budget(
            "xlint-baseline.toml",
            &counts(&[("crates/fresh", 1)]),
            &Baseline::default(),
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("budget of 0"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_baseline("[budget]\n\"crates/sim\" = lots\n").is_err());
        assert!(parse_baseline("[budget]\nnope\n").is_err());
        assert!(parse_baseline("[budget]\n\"a\" = 1\n\"a\" = 2\n").is_err());
        // Non-budget tables are ignored.
        let b = parse_baseline("[meta]\nx = 1\n[budget]\n\"crates/sim\" = 4\n").expect("parses");
        assert_eq!(b.budgets.len(), 1);
    }

    #[test]
    fn unit_grouping_covers_crates_and_the_root_package() {
        assert_eq!(unit_for("crates/sim/src/cache.rs"), "crates/sim");
        assert_eq!(unit_for("src/lib.rs"), "src");
        assert_eq!(unit_for("lone.rs"), "src");
    }
}
