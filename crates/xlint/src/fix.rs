//! `--fix`: mechanical repairs for the two diagnostics that have one.
//!
//! * **X0** — a malformed / unknown / reasonless / stale
//!   `// xlint::allow` pragma is deleted (the pragma text only; code
//!   sharing the line survives). Deleting a reasonless pragma may
//!   surface the finding it hid — that is the point: the finding then
//!   demands a real reason or a real fix.
//! * **P2** (`let _ =` form only) — `let _ = fallible();` becomes
//!   `fallible()?;` when the innermost enclosing `fn` itself returns
//!   `Result`. The lexer cannot prove the error types unify, so this is
//!   offered only where `?` at least type-checks structurally; `cargo
//!   build` remains the backstop. `#[must_use]` discards and bare-call
//!   discards are not auto-fixed (no mechanically safe rewrite exists).
//!
//! `plan` is pure (reads sources, writes nothing); `apply` writes the
//! edited files. The CLI prints unified-style diffs in dry-run mode.

use std::path::{Path, PathBuf};

use crate::lexer;
use crate::parser::{self, ItemKind};
use crate::rules::Rule;
use crate::{Report, XlintError};

/// One planned line edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// 1-based line the edit replaces.
    pub line: usize,
    /// The current line text (context for the diff).
    pub old: String,
    /// Replacement text; `None` deletes the line.
    pub new: Option<String>,
}

/// All planned edits for one file.
#[derive(Debug, Clone)]
pub struct FilePlan {
    /// Workspace-relative label (as reported).
    pub label: String,
    /// Absolute path to write.
    pub path: PathBuf,
    /// Edits, ascending by line, at most one per line.
    pub edits: Vec<Edit>,
}

/// Plans fixes for every fixable finding in `report`. Labels are
/// resolved relative to `root`; unreadable files are skipped (they
/// cannot be mechanically fixed anyway).
pub fn plan(root: &Path, report: &Report) -> Vec<FilePlan> {
    let mut by_file: Vec<(&str, Vec<&crate::Finding>)> = Vec::new();
    for f in &report.findings {
        if f.rule != Rule::X0 && !(f.rule == Rule::P2 && f.message.starts_with("`let _ =`")) {
            continue;
        }
        match by_file.iter_mut().find(|(label, _)| *label == f.file) {
            Some((_, v)) => v.push(f),
            None => by_file.push((&f.file, vec![f])),
        }
    }
    let mut plans = Vec::new();
    for (label, findings) in by_file {
        let path = root.join(label);
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        let lines: Vec<&str> = src.lines().collect();
        let result_fns = result_fn_spans(&src);
        let mut edits: Vec<Edit> = Vec::new();
        for f in findings {
            let Some(old) = lines.get(f.line.wrapping_sub(1)) else { continue };
            if edits.iter().any(|e| e.line == f.line) {
                continue;
            }
            let edit = match f.rule {
                Rule::X0 => strip_pragma(f.line, old),
                Rule::P2 => rewrite_discard(f.line, old, &result_fns),
                _ => None,
            };
            if let Some(e) = edit {
                edits.push(e);
            }
        }
        if !edits.is_empty() {
            edits.sort_by_key(|e| e.line);
            plans.push(FilePlan { label: label.to_string(), path, edits });
        }
    }
    plans.sort_by(|a, b| a.label.cmp(&b.label));
    plans
}

/// Line spans (1-based, inclusive) of every `fn` in `src` that returns
/// `Result` — the only places a `?` rewrite can type-check.
fn result_fn_spans(src: &str) -> Vec<(usize, usize)> {
    let lexed = lexer::lex(src);
    let mut spans = Vec::new();
    for it in parser::parse_items(&lexed.toks) {
        if let ItemKind::Fn(sig) = &it.kind {
            if sig.returns_result {
                spans.push((it.line, it.end_line));
            }
        }
    }
    spans
}

/// Deletes the `// xlint::allow(...)` pragma from a line: the whole line
/// when nothing else is on it, otherwise just the trailing comment.
fn strip_pragma(line: usize, old: &str) -> Option<Edit> {
    let at = old.find("// xlint::allow(")?;
    let prefix = old[..at].trim_end();
    let new = if prefix.is_empty() { None } else { Some(prefix.to_string()) };
    Some(Edit { line, old: old.to_string(), new })
}

/// Rewrites a single-line `let _ = <expr>;` into `<expr>?;` when the
/// innermost enclosing fn (by line containment) returns `Result`.
fn rewrite_discard(line: usize, old: &str, result_fns: &[(usize, usize)]) -> Option<Edit> {
    let enclosing =
        result_fns.iter().filter(|(lo, hi)| *lo <= line && line <= *hi).max_by_key(|(lo, _)| *lo);
    enclosing?;
    let trimmed = old.trim_start();
    let indent = &old[..old.len() - trimmed.len()];
    let rest = trimmed.strip_prefix("let _")?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let expr = rest.strip_suffix(';')?.trim_end();
    if expr.is_empty() || expr.contains("//") {
        return None;
    }
    Some(Edit { line, old: old.to_string(), new: Some(format!("{indent}{expr}?;")) })
}

/// Renders one file's plan as a minimal unified-style diff.
pub fn render_diff(plan: &FilePlan) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "--- {}", plan.label);
    let _ = writeln!(out, "+++ {} (fixed)", plan.label);
    for e in &plan.edits {
        let _ = writeln!(out, "@@ line {} @@", e.line);
        let _ = writeln!(out, "-{}", e.old);
        if let Some(new) = &e.new {
            let _ = writeln!(out, "+{new}");
        }
    }
    out
}

/// Applies every plan, bottom-up within each file so line numbers stay
/// valid. Returns the number of files written.
pub fn apply(plans: &[FilePlan]) -> Result<usize, XlintError> {
    let mut written = 0usize;
    for plan in plans {
        let src = std::fs::read_to_string(&plan.path)
            .map_err(|source| XlintError::Io { path: plan.path.clone(), source })?;
        let had_trailing_newline = src.ends_with('\n');
        let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
        for e in plan.edits.iter().rev() {
            let idx = e.line.wrapping_sub(1);
            if lines.get(idx).map(String::as_str) != Some(e.old.as_str()) {
                continue; // the file moved under us: skip, never corrupt
            }
            match &e.new {
                Some(new) => lines[idx] = new.clone(),
                None => {
                    lines.remove(idx);
                }
            }
        }
        let mut out = lines.join("\n");
        if had_trailing_newline {
            out.push('\n');
        }
        std::fs::write(&plan.path, out)
            .map_err(|source| XlintError::Io { path: plan.path.clone(), source })?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_stripping_keeps_leading_code() {
        let whole = strip_pragma(3, "    // xlint::allow(D2)").unwrap();
        assert_eq!(whole.new, None, "pragma-only line is deleted");
        let tail = strip_pragma(4, "let x = 1; // xlint::allow(P1, old reason)").unwrap();
        assert_eq!(tail.new.as_deref(), Some("let x = 1;"));
    }

    #[test]
    fn discard_rewrite_requires_an_enclosing_result_fn() {
        let spans = vec![(10usize, 20usize)];
        let hit = rewrite_discard(12, "    let _ = push_all(&mut q);", &spans).unwrap();
        assert_eq!(hit.new.as_deref(), Some("    push_all(&mut q)?;"));
        assert!(rewrite_discard(25, "    let _ = push_all(&mut q);", &spans).is_none());
        assert!(rewrite_discard(12, "    let _x = keepable();", &spans).is_none());
    }

    #[test]
    fn result_fn_spans_come_from_the_parser() {
        let src = "fn plain() {}\nfn fallible() -> Result<(), E> {\n  let _ = 1;\n}\n";
        let spans = result_fn_spans(src);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].0 <= 2 && spans[0].1 >= 3, "{spans:?}");
    }

    #[test]
    fn apply_round_trips_on_disk() {
        let dir = std::env::temp_dir().join("xlint-fix-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rs");
        std::fs::write(&path, "keep\n// xlint::allow(D2)\nalso keep\n").unwrap();
        let plan = FilePlan {
            label: "t.rs".into(),
            path: path.clone(),
            edits: vec![Edit { line: 2, old: "// xlint::allow(D2)".into(), new: None }],
        };
        assert_eq!(apply(&[plan]).unwrap(), 1);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "keep\nalso keep\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
