//! The incremental lint cache.
//!
//! Flow rules run a fixpoint per `fn`, so a workspace pass is no longer
//! lexer-cheap. Per-file results (findings + suppressed) are therefore
//! persisted under `target/xlint-cache/`, keyed by a 64-bit FNV-1a hash
//! folding:
//!
//! * the **rule-set version** ([`RULESET_VERSION`], bumped whenever any
//!   rule's behavior changes),
//! * the **workspace fingerprint** (the declared crate DAG, audited
//!   concurrency modules and N1/U1 crate lists — everything that feeds
//!   [`crate::context_for`], which is otherwise a pure function of the
//!   file label),
//! * the file **label** and full **content**.
//!
//! A hit replays the stored findings byte-identically; any mismatch —
//! stale key, unparseable record, unknown rule id — is a miss and the
//! file is re-linted. Writes are best-effort: a read-only `target/` just
//! means every run is cold.

use std::path::{Path, PathBuf};

use crate::rules::{Finding, Rule, Suppressed};
use crate::workspace;

/// Version of the rule set baked into cache keys. Bump on any change to
/// rule behavior, finding messages, or the cache record format.
pub const RULESET_VERSION: &str = "3";

/// Cache effectiveness counters for one workspace pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Files whose findings were replayed from the cache.
    pub hits: usize,
    /// Files that were (re-)linted and stored.
    pub misses: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit over `bytes`, continuing from `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The workspace fingerprint folded into every key: a stable rendering
/// of the config that `context_for` derives rule scoping from.
fn workspace_fingerprint() -> u64 {
    let mut h = fnv1a(FNV_OFFSET, RULESET_VERSION.as_bytes());
    for c in workspace::CRATES {
        h = fnv1a(h, c.dir.as_bytes());
        h = fnv1a(h, c.ident.as_bytes());
        h = fnv1a(h, &[c.layer]);
    }
    for m in crate::AUDITED_CONCURRENCY_MODULES {
        h = fnv1a(h, m.as_bytes());
    }
    for c in crate::N1_CRATES {
        h = fnv1a(h, c.as_bytes());
    }
    for c in crate::U1_CRATES {
        h = fnv1a(h, c.as_bytes());
    }
    h
}

/// The cache key for one file: fingerprint ⊕ label ⊕ content.
pub fn file_key(label: &str, src: &str) -> u64 {
    let mut h = workspace_fingerprint();
    h = fnv1a(h, label.as_bytes());
    h = fnv1a(h, &[0]);
    fnv1a(h, src.as_bytes())
}

/// Where the cache lives for a workspace root.
pub fn cache_dir(root: &Path) -> PathBuf {
    root.join("target").join("xlint-cache")
}

/// The cache file for a label (content-independent: one slot per file,
/// overwritten as the file changes).
fn entry_path(dir: &Path, label: &str) -> PathBuf {
    dir.join(format!("{:016x}.txt", fnv1a(FNV_OFFSET, label.as_bytes())))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Loads the cached findings for `label` if the stored key matches.
pub fn load(dir: &Path, label: &str, key: u64) -> Option<(Vec<Finding>, Vec<Suppressed>)> {
    let text = std::fs::read_to_string(entry_path(dir, label)).ok()?;
    let mut lines = text.lines();
    if lines.next()? != "xlint-cache v1" {
        return None;
    }
    let stored = lines.next()?.strip_prefix("key ")?;
    if u64::from_str_radix(stored, 16).ok()? != key {
        return None;
    }
    if lines.next()?.strip_prefix("label ")? != escape(label) {
        return None;
    }
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for line in lines {
        let mut parts = line.split('\t');
        let tag = parts.next()?;
        let file = unescape(parts.next()?);
        let lineno: usize = parts.next()?.parse().ok()?;
        let rule = Rule::parse(parts.next()?)?;
        let message = unescape(parts.next()?);
        let suggestion = unescape(parts.next()?);
        let finding = Finding { file, line: lineno, rule, message, suggestion };
        match tag {
            "F" => {
                if parts.next().is_some() {
                    return None;
                }
                findings.push(finding);
            }
            "S" => {
                let reason = unescape(parts.next()?);
                if parts.next().is_some() {
                    return None;
                }
                suppressed.push(Suppressed { finding, reason });
            }
            _ => return None,
        }
    }
    Some((findings, suppressed))
}

/// Stores one file's results. Failures are ignored: caching is an
/// optimization, never a correctness dependency.
pub fn store(dir: &Path, label: &str, key: u64, findings: &[Finding], suppressed: &[Suppressed]) {
    use std::fmt::Write as _;
    let mut out = String::from("xlint-cache v1\n");
    let _ = writeln!(out, "key {key:016x}");
    let _ = writeln!(out, "label {}", escape(label));
    for f in findings {
        let _ = writeln!(
            out,
            "F\t{}\t{}\t{}\t{}\t{}",
            escape(&f.file),
            f.line,
            f.rule.id(),
            escape(&f.message),
            escape(&f.suggestion),
        );
    }
    for s in suppressed {
        let _ = writeln!(
            out,
            "S\t{}\t{}\t{}\t{}\t{}\t{}",
            escape(&s.finding.file),
            s.finding.line,
            s.finding.rule.id(),
            escape(&s.finding.message),
            escape(&s.finding.suggestion),
            escape(&s.reason),
        );
    }
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(entry_path(dir, label), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<Finding>, Vec<Suppressed>) {
        let f = Finding {
            file: "crates/sim/src/x.rs".into(),
            line: 7,
            rule: Rule::D1,
            message: "tabs\tand\nnewlines".into(),
            suggestion: "back\\slash".into(),
        };
        let s = Suppressed { finding: f.clone(), reason: "audited: why".into() };
        (vec![f], vec![s])
    }

    #[test]
    fn round_trips_bytes_exactly() {
        let dir = std::env::temp_dir().join("xlint-cache-test-rt");
        let _ = std::fs::remove_dir_all(&dir);
        let (f, s) = sample();
        let key = file_key("crates/sim/src/x.rs", "let a = 1;");
        store(&dir, "crates/sim/src/x.rs", key, &f, &s);
        let (lf, ls) = load(&dir, "crates/sim/src/x.rs", key).expect("hit");
        assert_eq!(lf, f);
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].finding, s[0].finding);
        assert_eq!(ls[0].reason, s[0].reason);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_and_absence_are_misses() {
        let dir = std::env::temp_dir().join("xlint-cache-test-miss");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load(&dir, "nope.rs", 1).is_none(), "absent dir is a miss");
        let (f, s) = sample();
        store(&dir, "a.rs", 42, &f, &s);
        assert!(load(&dir, "a.rs", 43).is_none(), "stale content is a miss");
        assert!(load(&dir, "a.rs", 42).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_depend_on_label_and_content() {
        let a = file_key("a.rs", "x");
        assert_ne!(a, file_key("a.rs", "y"));
        assert_ne!(a, file_key("b.rs", "x"));
        assert_eq!(a, file_key("a.rs", "x"), "pure function");
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["plain", "a\tb", "n\nl", "back\\slash\\t", "", "mix\t\\\n\r"] {
            assert_eq!(unescape(&escape(s)), s);
            assert!(!escape(s).contains('\n'), "records stay one line");
            assert!(!escape(s).contains('\t') || s.is_empty() || !s.contains('\\'));
        }
        assert!(!escape("a\tb").contains('\t'));
    }
}
