//! `exegpt-xlint`: the workspace determinism & numeric-safety linter.
//!
//! ExeGPT's headline properties — a branch-and-bound scheduler that trusts
//! monotone latency estimates, and a serving loop whose JSONL event logs
//! are byte-identical across runs — only hold if the whole workspace obeys
//! a small set of coding rules. This crate enforces them offline, with a
//! hand-rolled lexer and item-level parser (no `syn`, no dependencies):
//! comments and string literals are stripped, the token stream is matched
//! against the rules (with per-file item extraction feeding the
//! syntax-aware ones), and `// xlint::allow(RULE, reason)` pragmas are
//! honored, counted, *and budgeted* — the committed `xlint-baseline.toml`
//! caps each crate's suppression count so the gate only ratchets down.
//!
//! The rules (see DESIGN.md §6 for rationale):
//!
//! | id | rule |
//! |----|------|
//! | D1 | no `HashMap`/`HashSet` (nondeterministic iteration order) |
//! | D2 | no `Instant::now`/`SystemTime`/`thread_rng`/`from_entropy` outside `bench` |
//! | N1 | no bare `as` numeric casts in the cost-model/scheduler crates |
//! | F1 | no float `==`/`!=` |
//! | P1 | no `unwrap`/`expect`/`panic!` in non-test library code |
//! | U1 | no raw `f64`/`f32` in `pub fn` signatures of the unit-carrying crates |
//! | U2 | no unit-suffix conflict between a `let` binding and its initializer call |
//! | L1 | no upward/undeclared cross-crate imports (declared layering DAG) |
//! | P2 | no discarded `Result`/`#[must_use]` value from a locally-defined fn |
//! | D3 | no concurrency primitives outside the audited pool modules |
//! | D4 | no clock/entropy/env-derived value may flow into events/metrics/plans |
//! | U3 | no unit-stripped float may re-enter a different unit's constructor |
//! | P3 | no bound `Result` may go unconsumed on every path |
//! | X0 | malformed, unknown or stale `xlint::allow` pragma |
//! | X1 | a crate's pragma count exceeds its committed suppression budget |
//!
//! D4/U3/P3 are *flow rules*: each `fn` body is lowered to a statement
//! CFG ([`cfg`](mod@crate::cfg)) and a forward taint fixpoint ([`taint`]) tracks
//! nondeterminism and unit-stripping through locals. Because that is no
//! longer lexer-cheap, workspace passes persist per-file results in an
//! incremental cache ([`cache`]) under `target/xlint-cache/`.
//!
//! Reports render as text, `--json`, or `--sarif` (SARIF 2.1.0 for CI
//! dashboards; suppressed findings carry `inSource` suppressions).
//!
//! # Example
//!
//! ```
//! use exegpt_xlint::{lint_source, FileContext, Rule};
//!
//! let report = lint_source("demo.rs", "let m = HashMap::new();", FileContext::default());
//! assert_eq!(report.findings[0].rule, Rule::D1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod cache;
pub mod cfg;
mod dataflow;
pub mod fix;
mod lexer;
pub mod parser;
mod rules;
mod sarif;
pub mod taint;
pub mod workspace;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub use rules::{FileContext, FileReport, Finding, Rule, Suppressed};

/// Lints a single source string. See [`FileContext`] for rule scoping.
pub fn lint_source(file: &str, src: &str, ctx: FileContext) -> FileReport {
    rules::lint_source(file, src, ctx)
}

/// The crates whose arithmetic is covered by N1: the hardware model
/// (`cluster`), the scheduler (`core`) and the cost model (`sim`).
/// Everything else may still use `as` — its numbers never feed the
/// branch-and-bound's monotonicity assumptions.
pub const N1_CRATES: [&str; 3] = ["cluster", "core", "sim"];

/// The crates whose public signatures are covered by U1: the hardware
/// model (`cluster`) and the cost model (`sim`), where every quantity is
/// dimensioned and must travel through the `exegpt_units` newtypes.
pub const U1_CRATES: [&str; 2] = ["cluster", "sim"];

/// Errors from walking a workspace.
#[derive(Debug)]
pub enum XlintError {
    /// No enclosing workspace `Cargo.toml` was found.
    NoWorkspaceRoot,
    /// An I/O failure while reading sources.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for XlintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XlintError::NoWorkspaceRoot => {
                write!(f, "no workspace Cargo.toml found above the current directory")
            }
            XlintError::Io { path, source } => write!(f, "reading {}: {source}", path.display()),
        }
    }
}

impl std::error::Error for XlintError {}

/// Aggregated result of linting a workspace (or an explicit file list).
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    /// All pragma-suppressed violations, same order.
    pub suppressed: Vec<Suppressed>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Incremental-cache counters, when the pass went through the cache.
    pub cache: Option<cache::CacheStats>,
}

impl Report {
    /// Whether the lint gate passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Count of findings for one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Human-readable report (diagnostics plus a one-line summary).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}: {} {} — {}",
                f.file,
                f.line,
                f.rule.id(),
                f.message,
                f.suggestion
            );
        }
        let per_rule: Vec<String> = Rule::ALL
            .into_iter()
            .map(|r| (r, self.count(r)))
            .filter(|(_, n)| *n > 0)
            .map(|(r, n)| format!("{}: {n}", r.id()))
            .collect();
        let breakdown =
            if per_rule.is_empty() { String::new() } else { format!(" ({})", per_rule.join(", ")) };
        let _ = writeln!(
            out,
            "xlint: {} finding{}{breakdown}, {} suppressed by pragma, {} files scanned",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed.len(),
            self.files_scanned,
        );
        out
    }

    /// Machine-readable report: a single JSON object with `findings`,
    /// `suppressed` and `files_scanned`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \
                 \"suggestion\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&f.file),
                f.line,
                json_str(f.rule.id()),
                json_str(&f.message),
                json_str(&f.suggestion),
            );
        }
        let _ = write!(out, "\n  ],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&s.finding.file),
                s.finding.line,
                json_str(s.finding.rule.id()),
                json_str(&s.reason),
            );
        }
        let _ = write!(out, "\n  ],\n  \"files_scanned\": {},", self.files_scanned);
        if let Some(stats) = &self.cache {
            let _ = write!(
                out,
                "\n  \"cache\": {{\"hits\": {}, \"misses\": {}}},",
                stats.hits, stats.misses
            );
        }
        let _ = write!(out, "\n  \"clean\": {}\n}}\n", self.is_clean());
        out
    }

    /// SARIF 2.1.0 report for CI dashboards: findings map to
    /// `error`-level results, pragma-suppressed findings to `note`-level
    /// results carrying an `inSource` suppression with the pragma's
    /// reason. Byte-stable for a given report (no timestamps, no GUIDs).
    pub fn render_sarif(&self) -> String {
        sarif::render_sarif(self)
    }
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, XlintError> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    Err(XlintError::NoWorkspaceRoot)
}

/// Lints every first-party crate under `root` (`crates/*/src` plus the
/// root package's `src/`). `third_party/`, `tests/`, `benches/` and
/// `examples/` are out of scope: vendored shims and test code do not feed
/// the deterministic pipeline.
///
/// Equivalent to [`lint_workspace_cached`] with the cache disabled.
pub fn lint_workspace(root: &Path) -> Result<Report, XlintError> {
    lint_workspace_cached(root, false)
}

/// [`lint_workspace`] with an optional incremental cache: when
/// `use_cache` is set, per-file results are replayed from
/// `target/xlint-cache/` on a key hit and stored on a miss, and
/// [`Report::cache`] carries the hit/miss counters. Cached and uncached
/// passes produce byte-identical findings — the cache key folds the
/// rule-set version, the workspace fingerprint, and the file content, so
/// any change invalidates the entry. The manifest (L1) pass always runs
/// live: it is lexer-cheap and spans files.
pub fn lint_workspace_cached(root: &Path, use_cache: bool) -> Result<Report, XlintError> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = read_dir_sorted(&crates_dir)?;
        crate_dirs.retain(|p| p.is_dir());
        for c in crate_dirs {
            collect_rs(&c.join("src"), &mut files)?;
        }
    }
    let dir = cache::cache_dir(root);
    let mut stats = cache::CacheStats::default();
    let mut report = Report::default();
    for path in files {
        let src = std::fs::read_to_string(&path)
            .map_err(|source| XlintError::Io { path: path.clone(), source })?;
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let label = rel.to_string_lossy().replace('\\', "/");
        let key = cache::file_key(&label, &src);
        let (findings, suppressed) = match use_cache.then(|| cache::load(&dir, &label, key)) {
            Some(Some(hit)) => {
                stats.hits += 1;
                hit
            }
            miss => {
                if miss.is_some() {
                    stats.misses += 1;
                }
                let file_report = lint_source(&label, &src, context_for(&label));
                if use_cache {
                    cache::store(&dir, &label, key, &file_report.findings, &file_report.suppressed);
                }
                (file_report.findings, file_report.suppressed)
            }
        };
        report.findings.extend(findings);
        report.suppressed.extend(suppressed);
        report.files_scanned += 1;
    }
    // The manifest pass: every `crates/*/Cargo.toml` dependency edge is
    // checked against the declared layering DAG (rule L1).
    report.findings.extend(workspace::lint_manifests(root)?);
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    if use_cache {
        report.cache = Some(stats);
    }
    Ok(report)
}

/// Lints an explicit list of files with per-file contexts derived from
/// their paths (used by the CLI's non-workspace mode and the fixtures).
pub fn lint_files(paths: &[PathBuf]) -> Result<Report, XlintError> {
    let mut report = Report::default();
    for path in paths {
        let src = std::fs::read_to_string(path)
            .map_err(|source| XlintError::Io { path: path.clone(), source })?;
        let label = path.to_string_lossy().replace('\\', "/");
        let file_report = lint_source(&label, &src, context_for(&label));
        report.findings.extend(file_report.findings);
        report.suppressed.extend(file_report.suppressed);
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Derives the rule scoping for a workspace-relative file path.
pub fn context_for(label: &str) -> FileContext {
    let crate_name =
        label.strip_prefix("crates/").and_then(|rest| rest.split('/').next()).unwrap_or("");
    let bin = label.contains("/bin/") || label.ends_with("main.rs");
    FileContext {
        allow_wall_clock: crate_name == "bench",
        // Bin targets format results for humans; their numbers never feed
        // the search, so N1 (like P1) is scoped to library code.
        numeric_core: N1_CRATES.contains(&crate_name) && !bin,
        allow_panics: crate_name == "bench" || bin,
        units_core: U1_CRATES.contains(&crate_name) && !bin,
        crate_idx: workspace::crate_index_for_dir(crate_name),
        audited_concurrency: AUDITED_CONCURRENCY_MODULES.contains(&label),
    }
}

/// The only modules allowed to hold concurrency primitives (rule D3):
/// the scheduler's deterministic-join worker pool and the sim's sharded
/// profile cache. Everything else must stay sequential.
pub const AUDITED_CONCURRENCY_MODULES: [&str; 2] =
    ["crates/core/src/scheduler.rs", "crates/sim/src/cache.rs"];

/// Recursively collects `.rs` files under `dir` in sorted order.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), XlintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// `read_dir` with deterministic (sorted) order.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, XlintError> {
    let rd = std::fs::read_dir(dir)
        .map_err(|source| XlintError::Io { path: dir.to_path_buf(), source })?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for e in rd {
        let e = e.map_err(|source| XlintError::Io { path: dir.to_path_buf(), source })?;
        entries.push(e.path());
    }
    entries.sort();
    Ok(entries)
}

/// Minimal JSON string escaping.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_scoping_matches_layout() {
        assert!(context_for("crates/sim/src/rra.rs").numeric_core);
        assert!(context_for("crates/core/src/bnb.rs").numeric_core);
        assert!(context_for("crates/cluster/src/gpu.rs").numeric_core);
        assert!(!context_for("crates/runner/src/kv.rs").numeric_core);
        assert!(context_for("crates/cluster/src/cost.rs").units_core);
        assert!(context_for("crates/sim/src/estimate.rs").units_core);
        assert!(!context_for("crates/core/src/scheduler.rs").units_core);
        assert!(!context_for("crates/sim/src/bin/tool.rs").units_core);
        assert!(context_for("crates/bench/src/bin/figures.rs").allow_wall_clock);
        assert!(context_for("crates/core/src/bin/exegpt-cli.rs").allow_panics);
        assert!(context_for("crates/bench/src/fig7.rs").allow_panics);
        assert!(!context_for("crates/serve/src/server.rs").allow_panics);
        assert!(context_for("crates/core/src/scheduler.rs").audited_concurrency);
        assert!(context_for("crates/sim/src/cache.rs").audited_concurrency);
        assert!(!context_for("crates/sim/src/estimate.rs").audited_concurrency);
        assert_eq!(
            context_for("crates/fleet/src/lib.rs").crate_idx,
            workspace::crate_index_for_dir("fleet"),
        );
        assert_eq!(context_for("src/lib.rs").crate_idx, None);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn render_text_has_summary_line() {
        let report = Report {
            findings: vec![Finding {
                file: "x.rs".into(),
                line: 3,
                rule: Rule::D1,
                message: "m".into(),
                suggestion: "s".into(),
            }],
            suppressed: vec![],
            files_scanned: 1,
            cache: None,
        };
        let text = report.render_text();
        assert!(text.contains("x.rs:3: D1"));
        assert!(text.contains("1 finding (D1: 1), 0 suppressed by pragma, 1 files scanned"));
    }

    #[test]
    fn render_json_is_parseable_shape() {
        let report = Report::default();
        let json = report.render_json();
        assert!(json.contains("\"findings\": []") || json.contains("\"findings\": ["));
        assert!(json.contains("\"clean\": true"));
        assert!(!json.contains("\"cache\""), "no cache object on uncached passes");
    }

    #[test]
    fn render_json_carries_cache_stats_when_present() {
        let report =
            Report { cache: Some(cache::CacheStats { hits: 9, misses: 2 }), ..Report::default() };
        let json = report.render_json();
        assert!(json.contains("\"cache\": {\"hits\": 9, \"misses\": 2}"));
        assert!(json.contains("\"clean\": true"));
    }
}
